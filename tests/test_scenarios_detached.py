"""Tests for the detached (multi-machine) campaign fabric tier.

The load-bearing guarantee, extended to the machine-fault matrix: a
campaign driven by detached ``work_loop`` workers over one shared
directory — under crashes, hangs, partitions, zombie writers with stale
epochs, skewed clocks, and a coordinator kill + restart — produces a
``chunks.jsonl`` byte-identical to an uninterrupted single-writer run.

Workers run as real forked processes where a fault must kill them
(crash-pre/crash-post call ``os._exit``); protocol primitives (claims,
takeovers, guarded release, heartbeat fencing) are tested single-process
for determinism.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios.detached import (
    DetachedProgress,
    FabricAdvert,
    _claim_backoff,
    _claim_lease,
    _Heartbeat,
    _lease_lost,
    _observed_chunks,
    _release_lease,
    _take_over_lease,
    _work_one_chunk,
    default_owner,
    merge_worker_snapshots,
    run_detached_campaign,
    work_loop,
)
from repro.scenarios.fabric import (
    FaultPolicy,
    Lease,
    heal_campaign,
    lease_directory,
    read_fences,
    record_fence,
    worker_directory,
)
from repro.scenarios.runner import evaluate_range, run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.scenarios.store import CampaignState, CampaignStore


def small_spec(name="detached-small", count=6, sizes=(40, 120)):
    return named_space("fig12").derive(name=name, count=count, matrix_sizes=sizes)


def fast_policy(**overrides):
    defaults = dict(
        max_attempts=3,
        backoff_base=0.01,
        backoff_cap=0.05,
        timeout=1.5,
        poll_interval=0.05,
        skew_slack=0.4,
    )
    defaults.update(overrides)
    return FaultPolicy(**defaults)


def store_bytes(root, spec):
    return (root / spec_hash(spec) / "chunks.jsonl").read_bytes()


def spawn_worker(campaign_dir, owner, faults=None, max_chunks=None, wait=30.0):
    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=work_loop,
        args=(str(campaign_dir),),
        kwargs=dict(owner=owner, faults=faults, poll=0.05, wait=wait, max_chunks=max_chunks),
        daemon=True,
    )
    process.start()
    return process


def reap(*processes, timeout=60.0):
    for process in processes:
        process.join(timeout=timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)


@pytest.fixture()
def reference(tmp_path):
    spec = small_spec()
    run_campaign(spec, tmp_path / "ref", chunk_size=2)
    return spec, store_bytes(tmp_path / "ref", spec)


def bootstrap_campaign(tmp_path, spec, ttl=1.5, skew_slack=0.4, max_attempts=3):
    """A campaign directory with spec + advert, as a coordinator leaves it."""
    store = CampaignStore(tmp_path / "shared")
    state = store.campaign(spec)
    lease_directory(state).mkdir(parents=True, exist_ok=True)
    FabricAdvert(
        chunk_size=2, total_chunks=3, ttl=ttl,
        skew_slack=skew_slack, max_attempts=max_attempts,
    ).write(state.directory)
    return store, state


class TestAdvert:
    def test_round_trip(self, tmp_path):
        advert = FabricAdvert(chunk_size=5, total_chunks=7, ttl=2.5,
                              skew_slack=1.0, max_attempts=4)
        advert.write(tmp_path)
        assert FabricAdvert.read(tmp_path) == advert

    def test_absent_or_garbled_reads_as_none(self, tmp_path):
        assert FabricAdvert.read(tmp_path) is None
        (tmp_path / "fabric.json").write_text("{torn", encoding="utf-8")
        assert FabricAdvert.read(tmp_path) is None


class TestClaimProtocol:
    def make_lease(self, owner, epoch=0, deadline_offset=10.0):
        now = time.time()
        return Lease(chunk=0, start=0, stop=2, owner=owner, epoch=epoch,
                     granted_at=now, heartbeat_at=now,
                     deadline=now + deadline_offset, ttl=10.0)

    def test_exactly_one_claimant_wins_a_race(self, tmp_path):
        results = {}
        barrier = threading.Barrier(8)

        def claim(owner):
            barrier.wait()
            results[owner] = _claim_lease(tmp_path, self.make_lease(owner))

        threads = [threading.Thread(target=claim, args=(f"w{i}",)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(results.values()) == 1
        winner = next(owner for owner, won in results.items() if won)
        on_disk = Lease.read(tmp_path / "chunk-000000.json")
        assert on_disk.owner == winner
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["chunk-000000.json"]

    def test_exactly_one_takeover_wins_a_race(self, tmp_path):
        stale = self.make_lease("old", deadline_offset=-60.0)
        stale.write(tmp_path)
        results = {}
        barrier = threading.Barrier(6)

        def take(owner):
            barrier.wait()
            results[owner] = _take_over_lease(tmp_path, stale)

        threads = [threading.Thread(target=take, args=(f"w{i}",)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(results.values()) == 1
        assert not (tmp_path / "chunk-000000.json").exists()

    def test_guarded_release_never_deletes_a_takeover(self, tmp_path):
        mine = self.make_lease("zombie", epoch=0, deadline_offset=-60.0)
        mine.write(tmp_path)
        assert _take_over_lease(tmp_path, mine)
        taken = mine.reissued("taker", now=time.time(), ttl=10.0)
        taken.write(tmp_path)
        # The zombie tries to release the lease it believes it still holds.
        assert not _release_lease(tmp_path, mine)
        assert Lease.read(tmp_path / "chunk-000000.json").owner == "taker"
        assert _lease_lost(tmp_path, mine)
        # The rightful owner's release succeeds.
        assert _release_lease(tmp_path, taken)
        assert not (tmp_path / "chunk-000000.json").exists()

    def test_claim_backoff_is_jittered_and_deterministic(self):
        delays = {_claim_backoff(f"w{i}", 3, 1.0) for i in range(16)}
        assert len(delays) > 8  # different owners spread out
        assert all(0.5 <= delay < 1.5 for delay in delays)
        assert _claim_backoff("w0", 3, 1.0) == _claim_backoff("w0", 3, 1.0)


class TestHeartbeat:
    def test_heartbeat_renews_the_lease(self, tmp_path):
        now = time.time()
        lease = Lease(chunk=0, start=0, stop=2, owner="w0", epoch=0,
                      granted_at=now, heartbeat_at=now, deadline=now + 0.5, ttl=0.5)
        lease.write(tmp_path)
        beat = _Heartbeat(tmp_path, lease, interval=0.05, now=time.time).start()
        time.sleep(0.4)
        beat.stop()
        renewed = Lease.read(tmp_path / "chunk-000000.json")
        assert renewed.deadline > lease.deadline
        assert not beat.fenced.is_set()

    def test_heartbeat_detects_takeover_and_fences(self, tmp_path):
        now = time.time()
        lease = Lease(chunk=0, start=0, stop=2, owner="slow", epoch=0,
                      granted_at=now, heartbeat_at=now, deadline=now + 10, ttl=10.0)
        lease.write(tmp_path)
        beat = _Heartbeat(tmp_path, lease, interval=0.05, now=time.time).start()
        lease.reissued("taker", now=time.time(), ttl=10.0).write(tmp_path)
        assert beat.fenced.wait(timeout=2.0)
        beat.stop()
        # The displaced heartbeat never overwrote the taker's lease.
        assert Lease.read(tmp_path / "chunk-000000.json").owner == "taker"


class TestObservedChunks:
    def test_fenced_worker_chunks_do_not_count_as_done(self, tmp_path):
        spec = small_spec()
        state = CampaignStore(tmp_path).campaign(spec)
        zombie = CampaignState(worker_directory(state, "zombie"), spec)
        zombie.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2), epoch=0)
        honest = CampaignState(worker_directory(state, "honest"), spec)
        honest.append_chunk(1, 2, 4, evaluate_range(spec, 2, 4), epoch=0)
        record_fence(state, 0, 1)
        done = _observed_chunks(state, read_fences(state))
        assert done == {1}


class TestWorkLoopSingleWorker:
    def test_one_worker_completes_the_plan(self, tmp_path, reference):
        spec, expected = reference
        store, state = bootstrap_campaign(tmp_path, spec)
        report = work_loop(state.directory, owner="solo", poll=0.05, wait=5.0)
        assert sorted(report.completed) == [0, 1, 2]
        assert not report.abandoned
        merge_worker_snapshots(state)
        assert state.chunks_path.read_bytes() == expected

    def test_worker_exits_promptly_on_preset_stop(self, tmp_path, reference):
        spec, _ = reference
        store, state = bootstrap_campaign(tmp_path, spec)
        stop = threading.Event()
        stop.set()
        report = work_loop(state.directory, owner="stopped", poll=0.05,
                           wait=5.0, stop=stop)
        assert report.drained
        assert report.completed == []

    def test_worker_drains_on_sigterm(self, tmp_path, reference):
        """SIGTERM mid-run: the in-flight lease is finished and released,
        never torn — the worker exits 0 with nothing left behind."""
        import os
        import signal

        spec, _ = reference
        store, state = bootstrap_campaign(tmp_path, spec)
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=work_loop,
            args=(str(state.directory),),
            kwargs=dict(owner="drainer", poll=0.05, wait=5.0,
                        install_signal_handlers=True),
            daemon=True,
        )
        process.start()
        worker_store = state.directory / "workers" / "drainer"
        deadline = time.monotonic() + 15.0
        # The worker store appears only after the signal handler is in
        # place, so the SIGTERM below always hits the drain path.
        while time.monotonic() < deadline and not worker_store.exists():
            time.sleep(0.02)
        os.kill(process.pid, signal.SIGTERM)
        process.join(timeout=60.0)
        assert process.exitcode == 0
        # Everything it claimed was finished and released: no lease of its
        # own remains, and its store opens with no torn tail.
        leftovers = [
            lease for lease in lease_directory(state).glob("chunk-*.json")
            if json.loads(lease.read_text())["owner"] == "drainer"
        ]
        assert leftovers == []
        if worker_store.exists():
            snapshot = CampaignState(worker_store, spec, read_only=True)
            assert snapshot.recovered_tail is None

    def test_worker_gives_up_without_an_advert(self, tmp_path):
        report = work_loop(tmp_path, owner="early", wait=0.2, poll=0.05)
        assert report.completed == []

    def test_zombie_append_is_fenced_out_of_the_merge(self, tmp_path, reference):
        """The satellite scenario, deterministically sequenced: a worker's
        lease is re-issued while it sleeps; its stale-epoch append merges
        as fenced, the re-issued copy is canonical, bytes are identical."""
        spec, expected = reference
        store, state = bootstrap_campaign(tmp_path, spec)
        leases_dir = lease_directory(state)
        now = time.time()
        stale = Lease(chunk=0, start=0, stop=2, owner="zombie", epoch=0,
                      granted_at=now - 60, heartbeat_at=now - 60,
                      deadline=now - 30, ttl=1.5)
        stale.write(leases_dir)
        # A healthy worker takes the expired lease over (epoch 1, fenced).
        report = work_loop(state.directory, owner="taker", poll=0.05, wait=5.0)
        assert sorted(report.completed) == [0, 1, 2]
        assert read_fences(state)[0] == 1
        # The zombie wakes and appends under its superseded epoch anyway.
        zombie_store = CampaignState(worker_directory(state, "zombie"), spec)
        zombie_store.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2), epoch=0)
        merged = merge_worker_snapshots(state)
        assert 0 in merged.fenced
        assert state.chunks_path.read_bytes() == expected

    def test_zombie_that_outlives_the_campaign_abandons(self, tmp_path):
        """If the campaign completes and the coordinator tears the worker
        scaffolding down while a zombie sleeps, its stale append has
        nowhere to land — the zombie abandons instead of crashing."""
        import shutil

        from repro.scenarios.detached import WorkerReport
        from repro.scenarios.fabric import FaultInjector

        spec = small_spec()
        store, state = bootstrap_campaign(tmp_path, spec)
        worker_state = CampaignState(worker_directory(state, "zombie"), spec)
        shutil.rmtree(state.directory / "workers")
        now = time.time()
        lease = Lease(chunk=0, start=0, stop=2, owner="zombie", epoch=0,
                      granted_at=now - 60, heartbeat_at=now - 60,
                      deadline=now - 30, ttl=1.5)
        advert = FabricAdvert.read(state.directory)
        report = WorkerReport(owner="zombie")
        _work_one_chunk(
            lease_directory(state), worker_state, lease, advert,
            FaultInjector.from_spec("zombie@0"), time.time, 0.05, report,
        )
        assert report.abandoned == [0]
        assert not (state.directory / "workers").exists()


class TestDetachedCampaign:
    def test_two_workers_clean_run_is_byte_identical(self, tmp_path, reference):
        spec, expected = reference
        store = CampaignStore(tmp_path / "shared")
        campaign_dir = tmp_path / "shared" / spec_hash(spec)
        workers = [spawn_worker(campaign_dir, f"w{i}") for i in range(2)]
        progress = run_detached_campaign(
            spec, store, chunk_size=2, policy=fast_policy(), wait_timeout=90.0
        )
        reap(*workers)
        assert progress.finished
        assert store_bytes(tmp_path / "shared", spec) == expected
        # Completed campaigns are cleaned of fabric scaffolding, but the
        # journal (the flight record) survives.
        assert not (campaign_dir / "workers").exists()
        assert not (campaign_dir / "fabric.json").exists()
        assert (campaign_dir / "coordinator.jsonl").exists()

    @pytest.mark.parametrize(
        "faults0,faults1",
        [
            ("crash-post@1", None),
            ("partition@1", None),
            ("zombie@2", None),
            ("partition@0,skew:0.3", "crash-post@2"),
            ("zombie@1,skew:-0.3", "poison@0"),
        ],
        ids=["crash-post", "partition", "zombie", "partition+skew+crash", "zombie+skew+poison"],
    )
    def test_chaos_matrix_converges_byte_identically(
        self, tmp_path, reference, faults0, faults1
    ):
        spec, expected = reference
        store = CampaignStore(tmp_path / "shared")
        campaign_dir = tmp_path / "shared" / spec_hash(spec)
        workers = [
            spawn_worker(campaign_dir, "w0", faults=faults0),
            spawn_worker(campaign_dir, "w1", faults=faults1),
        ]
        progress = run_detached_campaign(
            spec, store, chunk_size=2, policy=fast_policy(), wait_timeout=120.0
        )
        reap(*workers)
        assert progress.finished
        assert store_bytes(tmp_path / "shared", spec) == expected

    def test_poisoned_chunk_degrades_in_the_coordinator(self, tmp_path, reference):
        spec, expected = reference
        store = CampaignStore(tmp_path / "shared")
        campaign_dir = tmp_path / "shared" / spec_hash(spec)
        worker = spawn_worker(campaign_dir, "w0", faults="poison@1")
        progress = run_detached_campaign(
            spec, store, chunk_size=2,
            policy=fast_policy(max_attempts=2), wait_timeout=120.0,
        )
        reap(worker)
        assert progress.finished
        assert 1 in progress.degraded_chunks
        assert store_bytes(tmp_path / "shared", spec) == expected

    def test_coordinator_kill_and_restart_replays_journal(self, tmp_path, reference):
        spec, expected = reference
        store = CampaignStore(tmp_path / "shared")
        campaign_dir = tmp_path / "shared" / spec_hash(spec)
        # First incarnation: no workers show up, so it times out — exactly
        # like a coordinator killed mid-campaign, journal and advert left
        # behind.
        with pytest.raises(ExperimentError, match="did not complete"):
            run_detached_campaign(
                spec, store, chunk_size=2, policy=fast_policy(), wait_timeout=0.5
            )
        assert (campaign_dir / "coordinator.jsonl").exists()
        workers = [spawn_worker(campaign_dir, f"w{i}") for i in range(2)]
        progress = run_detached_campaign(
            spec, store, chunk_size=2, policy=fast_policy(), wait_timeout=120.0
        )
        reap(*workers)
        assert progress.resumed_from_journal
        assert progress.finished
        assert store_bytes(tmp_path / "shared", spec) == expected

    def test_skewed_worker_within_slack_causes_no_takeover(self, tmp_path, reference):
        spec, expected = reference
        store = CampaignStore(tmp_path / "shared")
        campaign_dir = tmp_path / "shared" / spec_hash(spec)
        # The worker's clock runs 0.5 s slow; slack comfortably covers it.
        worker = spawn_worker(campaign_dir, "slow-clock", faults="skew:-0.5")
        progress = run_detached_campaign(
            spec, store, chunk_size=2,
            policy=fast_policy(timeout=2.5, skew_slack=2.0), wait_timeout=120.0,
        )
        reap(worker)
        assert progress.finished
        assert progress.expired_leases == 0
        assert store_bytes(tmp_path / "shared", spec) == expected

    def test_heal_finishes_what_detached_workers_left(self, tmp_path, reference):
        """Worker crashes mid-campaign with no coordinator: heal salvages
        the durable chunks and the leased leftovers; never-leased chunks
        are reported missing and completed by resume — bytes converge."""
        spec, expected = reference
        store, state = bootstrap_campaign(tmp_path, spec)
        # crash-post on chunk 1: chunks 0 and 1 are durable in the worker
        # store, the chunk-1 lease is left behind, chunk 2 is never leased.
        worker = spawn_worker(state.directory, "w0", faults="crash-post@1")
        reap(worker)
        report = heal_campaign(spec, store, chunk_size=2)
        assert {0, 1} <= report.state.completed_chunks
        assert report.cleared_leases  # the crashed worker's lease is gone
        if not report.complete:
            run_campaign(spec, store, chunk_size=2)
        assert report.state.chunks_path.read_bytes() == expected


class TestDefaultOwner:
    def test_is_filesystem_safe(self):
        owner = default_owner()
        assert owner
        assert "/" not in owner and " " not in owner

    def test_progress_aggregate_matches_store(self, tmp_path, reference):
        spec, _ = reference
        store = CampaignStore(tmp_path / "shared")
        campaign_dir = tmp_path / "shared" / spec_hash(spec)
        worker = spawn_worker(campaign_dir, "w0")
        progress = run_detached_campaign(
            spec, store, chunk_size=2, policy=fast_policy(), wait_timeout=90.0
        )
        reap(worker)
        assert isinstance(progress, DetachedProgress)
        assert progress.aggregate() == progress.state.aggregate()
