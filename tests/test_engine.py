"""Tests for the discrete-event engine (:mod:`repro.simulation.engine`)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.engine import Resource, Simulator


class TestEventsAndTimeouts:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(5.0)
        assert sim.run() == pytest.approx(5.0)

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_event_value_delivery(self):
        sim = Simulator()
        event = sim.event()
        received = []

        def process():
            value = yield event
            received.append(value)

        sim.process(process())
        event.succeed("payload")
        sim.run()
        assert received == ["payload"]

    def test_event_cannot_trigger_twice(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_callback_after_trigger_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        sim.run()
        values = []
        event.add_callback(lambda e: values.append(e.value))
        assert values == ["x"]

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_run_until_stops_early(self):
        sim = Simulator()
        sim.timeout(10.0)
        assert sim.run(until=4.0) == pytest.approx(4.0)
        assert sim.now == pytest.approx(4.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(0.0)

        sim.process(forever())
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestProcesses:
    def test_process_return_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(2.0)
            return "done"

        process = sim.process(worker())
        sim.run()
        assert process.triggered
        assert process.value == "done"

    def test_processes_can_wait_on_each_other(self):
        sim = Simulator()
        order = []

        def first():
            yield sim.timeout(1.0)
            order.append("first")
            return 41

        def second(dependency):
            value = yield dependency
            order.append("second")
            return value + 1

        p1 = sim.process(first())
        p2 = sim.process(second(p1))
        sim.run()
        assert order == ["first", "second"]
        assert p2.value == 42

    def test_yielding_non_event_is_an_error(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_exception_is_wrapped(self):
        sim = Simulator()

        def crash():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        sim.process(crash(), name="crasher")
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        assert "crasher" in str(excinfo.value)

    def test_all_of_gathers_values(self):
        sim = Simulator()
        timeouts = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        gate = sim.all_of(timeouts)
        sim.run()
        assert gate.triggered
        assert gate.value == [3.0, 1.0, 2.0]
        assert sim.now == pytest.approx(3.0)

    def test_all_of_empty(self):
        sim = Simulator()
        gate = sim.all_of([])
        sim.run()
        assert gate.triggered


class TestResources:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_mutual_exclusion_serialises_holders(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        intervals = []

        def holder(duration):
            yield resource.request()
            start = sim.now
            yield sim.timeout(duration)
            resource.release()
            intervals.append((start, sim.now))

        for duration in (2.0, 3.0, 1.0):
            sim.process(holder(duration))
        sim.run()
        intervals.sort()
        for (start_a, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert start_b >= end_a - 1e-12
        assert sim.now == pytest.approx(6.0)

    def test_capacity_two_allows_parallelism(self):
        sim = Simulator()
        resource = sim.resource(capacity=2)

        def holder():
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()

        for _ in range(4):
            sim.process(holder())
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_release_without_acquire_raises(self):
        resource = Resource(Simulator())
        with pytest.raises(SimulationError):
            resource.release()

    def test_queue_length_and_in_use(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        resource.request()
        resource.request()
        assert resource.in_use == 1
        assert resource.queue_length == 1


class TestStore:
    def test_fifo_delivery(self):
        sim = Simulator()
        store = sim.store()
        store.put("a")
        store.put("b")
        received = []

        def consumer():
            first = yield store.get()
            second = yield store.get()
            received.extend([first, second])

        sim.process(consumer())
        sim.run()
        assert received == ["a", "b"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = sim.store()
        received = []

        def consumer():
            item = yield store.get()
            received.append((item, sim.now))

        def producer():
            yield sim.timeout(5.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert received == [("late", 5.0)]

    def test_len(self):
        sim = Simulator()
        store = sim.store()
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1
