"""Tests for the cluster simulator, noise models, traces and executor."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from conftest import platforms
from repro.core.fifo import optimal_fifo_schedule
from repro.core.heuristics import inc_c, lifo
from repro.core.lifo import optimal_lifo_schedule
from repro.core.platform import StarPlatform, Worker
from repro.core.schedule import fifo_schedule
from repro.exceptions import SimulationError
from repro.simulation.cluster import ClusterSimulation
from repro.simulation.executor import execute_schedule, measure_heuristic
from repro.simulation.network import MasterPorts
from repro.simulation.noise import (
    AffineOverhead,
    ComposedNoise,
    GaussianJitter,
    NoJitter,
    UniformJitter,
)
from repro.simulation.engine import Simulator
from repro.simulation.trace import Trace, TraceEvent, ascii_gantt


class TestNoiseModels:
    def test_no_jitter_is_identity(self):
        assert NoJitter().perturb(2.0, "send", "P1") == pytest.approx(2.0)

    def test_uniform_jitter_only_slows_down(self):
        jitter = UniformJitter(amplitude=0.5, seed=1)
        for _ in range(100):
            assert jitter.perturb(1.0, "compute", "P1") >= 1.0

    def test_uniform_jitter_separate_comm_amplitude(self):
        jitter = UniformJitter(amplitude=0.0, comm_amplitude=0.5, seed=1)
        assert jitter.perturb(1.0, "compute", "P1") == pytest.approx(1.0)
        assert jitter.perturb(1.0, "send", "P1") >= 1.0

    def test_uniform_jitter_is_deterministic_per_seed(self):
        a = UniformJitter(amplitude=0.3, seed=7)
        b = UniformJitter(amplitude=0.3, seed=7)
        assert [a.perturb(1.0, "send", "P1") for _ in range(5)] == [
            b.perturb(1.0, "send", "P1") for _ in range(5)
        ]

    def test_gaussian_jitter_floor(self):
        jitter = GaussianJitter(sigma=10.0, floor=0.9, seed=3)
        assert all(jitter.perturb(1.0, "compute", "P1") >= 0.9 for _ in range(50))

    def test_affine_overhead(self):
        noise = AffineOverhead(comm_latency=0.5, compute_latency=0.1)
        assert noise.perturb(1.0, "send", "P1") == pytest.approx(1.5)
        assert noise.perturb(1.0, "return", "P1") == pytest.approx(1.5)
        assert noise.perturb(1.0, "compute", "P1") == pytest.approx(1.1)

    def test_composed_noise_applies_in_sequence(self):
        noise = ComposedNoise(AffineOverhead(comm_latency=1.0), AffineOverhead(comm_latency=2.0))
        assert noise.perturb(1.0, "send", "P1") == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            UniformJitter(amplitude=-0.1)
        with pytest.raises(SimulationError):
            GaussianJitter(sigma=-1.0)
        with pytest.raises(SimulationError):
            AffineOverhead(comm_latency=-1.0)
        with pytest.raises(SimulationError):
            NoJitter().perturb(-1.0, "send", "P1")
        with pytest.raises(SimulationError):
            NoJitter().perturb(1.0, "teleport", "P1")


class TestTrace:
    def test_event_validation(self):
        with pytest.raises(SimulationError):
            TraceEvent("P1", "unknown-kind", 0.0, 1.0)
        with pytest.raises(SimulationError):
            TraceEvent("P1", "send", 2.0, 1.0)

    def test_record_and_query(self):
        trace = Trace()
        trace.record("master", "send", 0.0, 1.0, load=2.0, note="P1")
        trace.record("P1", "compute", 1.0, 3.0, load=2.0)
        trace.record("master", "return", 3.0, 4.0, load=2.0)
        assert len(trace) == 3
        assert trace.makespan == pytest.approx(4.0)
        assert trace.resources[0] == "master"
        assert trace.busy_time("master") == pytest.approx(2.0)
        assert [e.kind for e in trace.for_resource("master")] == ["send", "return"]

    def test_overlapping_pairs(self):
        trace = Trace()
        trace.record("master", "send", 0.0, 2.0)
        trace.record("master", "return", 1.0, 3.0)
        assert len(trace.overlapping_pairs("master")) == 1
        trace2 = Trace()
        trace2.record("master", "send", 0.0, 1.0)
        trace2.record("master", "return", 1.0, 2.0)
        assert trace2.overlapping_pairs("master") == []

    def test_json_round_trip(self):
        trace = Trace()
        trace.record("P1", "send", 0.0, 1.0, load=3.0, note="hello")
        restored = Trace.from_json(trace.to_json())
        assert len(restored) == 1
        assert restored.events[0].note == "hello"

    def test_ascii_gantt_renders_all_resources(self):
        trace = Trace()
        trace.record("master", "send", 0.0, 1.0)
        trace.record("P1", "compute", 1.0, 2.0)
        chart = ascii_gantt(trace, width=40)
        assert "master" in chart and "P1" in chart
        assert "#" in chart and "=" in chart

    def test_ascii_gantt_empty_trace(self):
        chart = ascii_gantt(Trace(), width=20)
        assert "t=0" in chart

    def test_ascii_gantt_rejects_bad_width(self):
        with pytest.raises(SimulationError):
            ascii_gantt(Trace(), width=0)


class TestMasterPorts:
    def test_one_port_shares_resource(self):
        ports = MasterPorts(Simulator(), one_port=True)
        assert ports.send_port is ports.receive_port

    def test_two_port_has_independent_resources(self):
        ports = MasterPorts(Simulator(), one_port=False)
        assert ports.send_port is not ports.receive_port
        assert not ports.busy


class TestClusterSimulation:
    def test_ideal_run_matches_schedule_makespan(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        run = ClusterSimulation(three_workers).run(solution.schedule)
        assert run.makespan == pytest.approx(solution.schedule.makespan(), rel=1e-9)
        assert run.total_load == pytest.approx(solution.schedule.total_load)

    def test_one_port_master_never_overlaps(self, four_workers):
        solution = optimal_fifo_schedule(four_workers)
        run = ClusterSimulation(four_workers).run(solution.schedule)
        assert run.trace.overlapping_pairs("master") == []

    def test_two_port_can_overlap_send_and_return(self):
        # Heavy loads on two workers with long returns: under two-port the
        # second send overlaps the first return, finishing strictly earlier.
        platform = StarPlatform(
            [Worker("P1", c=1.0, w=0.1, d=1.0), Worker("P2", c=1.0, w=0.1, d=1.0)]
        )
        loads = {"P1": 1.0, "P2": 1.0}
        schedule = fifo_schedule(platform, loads, ["P1", "P2"], deadline=10.0)
        one_port = ClusterSimulation(platform, one_port=True).run(schedule)
        two_port = ClusterSimulation(platform, one_port=False).run(schedule)
        assert two_port.makespan < one_port.makespan - 1e-9

    def test_lifo_execution_order(self, three_workers):
        solution = optimal_lifo_schedule(three_workers)
        run = ClusterSimulation(three_workers).run(solution.schedule)
        # In a LIFO run the first-served worker's return finishes last.
        first_served = solution.order[0]
        assert run.records[first_served].return_end == pytest.approx(run.makespan)

    def test_zero_load_workers_are_skipped(self, three_workers):
        schedule = fifo_schedule(three_workers, {"P1": 0.1}, ["P1", "P2", "P3"])
        run = ClusterSimulation(three_workers).run(schedule)
        assert set(run.records) == {"P1"}

    def test_mismatched_platform_rejected(self, three_workers, four_workers):
        solution = optimal_fifo_schedule(three_workers)
        with pytest.raises(SimulationError):
            ClusterSimulation(four_workers).run(solution.schedule)

    def test_mismatched_permutations_rejected(self, three_workers):
        simulation = ClusterSimulation(three_workers)
        with pytest.raises(SimulationError):
            simulation.run_assignment({"P1": 0.1, "P2": 0.1}, ["P1", "P2"], ["P1"])

    def test_noise_increases_makespan(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        ideal = ClusterSimulation(three_workers).run(solution.schedule)
        noisy = ClusterSimulation(
            three_workers, noise=UniformJitter(amplitude=0.2, seed=5)
        ).run(solution.schedule)
        assert noisy.makespan >= ideal.makespan

    def test_records_are_consistent(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        run = ClusterSimulation(three_workers).run(solution.schedule)
        for record in run.records.values():
            assert record.send_start <= record.send_end <= record.compute_start
            assert record.compute_start <= record.compute_end <= record.return_start
            assert record.return_start <= record.return_end
            assert record.idle >= -1e-12
            assert record.as_dict()["worker"] == record.worker
        assert run.master_communication_time() <= run.makespan + 1e-9


class TestExecutor:
    def test_execute_schedule_no_noise_matches_prediction(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        report = execute_schedule(solution.schedule)
        assert report.measured_makespan == pytest.approx(report.predicted_makespan, rel=1e-9)
        assert report.relative_gap == pytest.approx(0.0, abs=1e-9)
        assert set(report.participants) == set(solution.participants)

    def test_measure_heuristic_rounding_gap_is_small(self, three_workers):
        report = measure_heuristic(inc_c(three_workers), 1000)
        # without noise the only gap is the integer rounding imbalance
        assert abs(report.relative_gap) < 0.05
        assert report.total_load == pytest.approx(1000)

    def test_measure_heuristic_without_rounding_is_exact(self, three_workers):
        report = measure_heuristic(inc_c(three_workers), 1000, round_to_integers=False)
        assert report.measured_makespan == pytest.approx(report.predicted_makespan, rel=1e-9)

    def test_measure_heuristic_with_noise_is_slower(self, three_workers):
        noisy = measure_heuristic(
            lifo(three_workers), 500, noise=UniformJitter(amplitude=0.3, seed=9)
        )
        ideal = measure_heuristic(lifo(three_workers), 500)
        assert noisy.measured_makespan >= ideal.measured_makespan

    def test_measure_heuristic_requires_positive_load(self, three_workers):
        with pytest.raises(SimulationError):
            measure_heuristic(inc_c(three_workers), 0)


class TestSimulationProperties:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(platforms(min_size=1, max_size=4, z=0.5))
    def test_simulated_makespan_equals_analytic_makespan(self, platform):
        """The DES and the analytic eager timeline agree on every platform."""
        solution = optimal_fifo_schedule(platform)
        if solution.schedule.total_load <= 0:
            return
        run = ClusterSimulation(platform).run(solution.schedule)
        assert run.makespan == pytest.approx(solution.schedule.makespan(), rel=1e-9)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(platforms(min_size=1, max_size=4, z=0.5))
    def test_one_port_trace_never_overlaps(self, platform):
        solution = optimal_lifo_schedule(platform)
        run = ClusterSimulation(platform).run(solution.schedule)
        assert run.trace.overlapping_pairs("master") == []
