"""Tests for the rounding policy and the makespan view."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fifo import optimal_fifo_schedule
from repro.core.makespan import makespan_for_load, predicted_makespan, schedule_for_total_load
from repro.core.platform import StarPlatform, Worker
from repro.core.rounding import integer_load_schedule, round_loads
from repro.core.schedule import fifo_schedule
from repro.exceptions import ScheduleError


class TestRoundLoads:
    def test_paper_example(self):
        """The worked example of Section 5: M=1000, K=2 extra tasks to P1, P2."""
        loads = {"P1": 200.4, "P2": 300.2, "P3": 139.8, "P4": 359.6}
        sigma1 = ["P1", "P2", "P3", "P4"]
        rounded = round_loads(loads, sigma1, 1000)
        assert rounded == {"P1": 201, "P2": 301, "P3": 139, "P4": 359}
        assert sum(rounded.values()) == 1000

    def test_exact_integers_are_unchanged(self):
        loads = {"A": 3.0, "B": 7.0}
        assert round_loads(loads, ["A", "B"], 10) == {"A": 3, "B": 7}

    def test_rescales_when_total_differs(self):
        loads = {"A": 1.0, "B": 1.0}
        rounded = round_loads(loads, ["A", "B"], 7)
        assert sum(rounded.values()) == 7
        assert abs(rounded["A"] - rounded["B"]) <= 1

    def test_zero_total(self):
        assert round_loads({"A": 1.0}, ["A"], 0) == {"A": 0}

    def test_extra_units_follow_sigma1_order(self):
        loads = {"A": 0.5, "B": 0.5, "C": 2.0}
        rounded = round_loads(loads, ["C", "B", "A"], 3)
        # floor gives C=2, B=0, A=0; the single leftover goes to C (first in sigma1)
        assert rounded == {"C": 3, "B": 0, "A": 0}

    def test_validation(self):
        with pytest.raises(ScheduleError):
            round_loads({"A": 1.0}, [], 1)
        with pytest.raises(ScheduleError):
            round_loads({"A": 1.0}, ["B"], 1)
        with pytest.raises(ScheduleError):
            round_loads({"A": -1.0}, ["A"], 1)
        with pytest.raises(ScheduleError):
            round_loads({"A": 1.0}, ["A"], -1)
        with pytest.raises(ScheduleError):
            round_loads({"A": 0.0}, ["A"], 5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=2000),
    )
    def test_rounded_totals_are_exact(self, values, total):
        names = [f"P{i}" for i in range(len(values))]
        loads = dict(zip(names, values))
        if sum(values) <= 0:
            loads[names[0]] = 1.0
        rounded = round_loads(loads, names, total)
        assert sum(rounded.values()) == total
        assert all(value >= 0 for value in rounded.values())

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=2000),
    )
    def test_rounding_moves_each_load_by_less_than_one_unit_after_scaling(self, values, total):
        names = [f"P{i}" for i in range(len(values))]
        loads = dict(zip(names, values))
        rounded = round_loads(loads, names, total)
        scale = total / sum(values)
        for name in names:
            assert abs(rounded[name] - loads[name] * scale) <= 1.0 + 1e-6


class TestIntegerLoadSchedule:
    def test_round_trip_preserves_orders(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        rounded = integer_load_schedule(solution.schedule.scaled_to_total_load(100), 100)
        assert rounded.sigma1 == solution.schedule.sigma1
        assert rounded.sigma2 == solution.schedule.sigma2
        assert rounded.total_load == pytest.approx(100)
        assert all(float(v).is_integer() for v in rounded.loads.values())

    def test_deadline_equals_eager_makespan(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        rounded = integer_load_schedule(solution.schedule, 50)
        assert rounded.deadline == pytest.approx(rounded.makespan())

    def test_rejects_non_positive_total(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        with pytest.raises(ScheduleError):
            integer_load_schedule(solution.schedule, 0)


class TestMakespanView:
    def test_makespan_for_load(self):
        assert makespan_for_load(2.0, 10.0) == pytest.approx(5.0)
        with pytest.raises(ScheduleError):
            makespan_for_load(0.0, 10.0)
        with pytest.raises(ScheduleError):
            makespan_for_load(1.0, -1.0)

    def test_predicted_makespan_matches_throughput(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        predicted = predicted_makespan(solution.schedule, 500.0)
        assert predicted == pytest.approx(500.0 / solution.throughput)

    def test_predicted_makespan_requires_load(self, three_workers):
        empty = fifo_schedule(three_workers, {}, three_workers.worker_names)
        with pytest.raises(ScheduleError):
            predicted_makespan(empty, 10.0)

    def test_schedule_for_total_load(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        scaled = schedule_for_total_load(solution.schedule, 250.0)
        assert scaled.total_load == pytest.approx(250.0)
        assert scaled.deadline == pytest.approx(predicted_makespan(solution.schedule, 250.0))
        scaled.verify()

    def test_makespan_consistency_with_simulation(self):
        """Predicted makespan equals the eager makespan for a tight schedule."""
        platform = StarPlatform(
            [Worker("P1", c=1.0, w=2.0, d=0.5), Worker("P2", c=0.5, w=3.0, d=0.25)]
        )
        solution = optimal_fifo_schedule(platform)
        scaled = schedule_for_total_load(solution.schedule, 20.0)
        assert scaled.makespan() == pytest.approx(scaled.deadline, rel=1e-7)
