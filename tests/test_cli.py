"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig08"])
        assert args.experiment == "fig08"
        assert args.preset == "paper"
        assert args.csv is None

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "fig14", "--preset", "quick", "--csv", "out.csv", "--markdown", "out.md"]
        )
        assert args.preset == "quick"
        assert args.csv == "out.csv"
        assert args.markdown == "out.md"

    def test_invalid_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig08", "--preset", "gigantic"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro-experiments" in capsys.readouterr().out


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert identifier in out

    def test_run_single_experiment_quick(self, capsys):
        assert main(["run", "fig08", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out
        assert "worker 1" in out

    def test_run_writes_csv_and_markdown(self, tmp_path, capsys):
        csv_path = tmp_path / "series.csv"
        md_path = tmp_path / "report.md"
        code = main(
            [
                "run",
                "fig14",
                "--preset",
                "quick",
                "--csv",
                str(csv_path),
                "--markdown",
                str(md_path),
            ]
        )
        assert code == 0
        assert csv_path.exists() and md_path.exists()
        assert "figure,series,x,y" in csv_path.read_text()
        assert "fig14" in md_path.read_text()

    def test_run_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99", "--preset", "quick"])

    def test_run_threads_seed_to_every_experiment(self, capsys):
        """`run all --seed` is accepted uniformly (figs 08-14 + crossover)."""
        assert main(["run", "fig14", "--preset", "quick", "--seed", "5"]) == 0
        assert "fig14" in capsys.readouterr().out

    def test_seed_changes_random_campaigns(self, capsys):
        assert main(["run", "fig12", "--preset", "quick", "--seed", "12"]) == 0
        baseline = capsys.readouterr().out
        assert main(["run", "fig12", "--preset", "quick", "--seed", "99"]) == 0
        reseeded = capsys.readouterr().out
        assert baseline != reseeded


class TestScenariosCommands:
    @pytest.fixture()
    def tiny_space(self, tmp_path):
        from repro.scenarios.spec import named_space

        spec = named_space("fig12").derive(
            name="cli-tiny", count=4, matrix_sizes=(40, 120)
        )
        path = tmp_path / "space.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        return spec, path, tmp_path / "store"

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig10", "fig12", "bimodal", "power-law", "mega-uniform"):
            assert name in out

    def test_scenarios_run_and_show(self, capsys, tiny_space):
        spec, path, store = tiny_space
        code = main(
            ["scenarios", "run", str(path), "--store", str(store), "--chunk-size", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chunks: 2/2 complete" in out
        assert "INC_C lp" in out

        assert main(["scenarios", "show", str(path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert '"name": "cli-tiny"' in out
        assert "persisted scenarios: 8 of 8" in out

    def test_scenarios_run_is_idempotent(self, capsys, tiny_space):
        spec, path, store = tiny_space
        assert main(["scenarios", "run", str(path), "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["scenarios", "run", str(path), "--store", str(store)]) == 0
        assert "(0 new)" in capsys.readouterr().out

    def test_scenarios_interrupt_then_resume(self, capsys, tiny_space):
        spec, path, store = tiny_space
        code = main(
            [
                "scenarios", "run", str(path),
                "--store", str(store), "--chunk-size", "1", "--max-chunks", "2",
            ]
        )
        assert code == 0
        assert "campaign incomplete" in capsys.readouterr().out
        code = main(
            ["scenarios", "resume", str(path), "--store", str(store), "--chunk-size", "1"]
        )
        assert code == 0
        assert "chunks: 4/4 complete" in capsys.readouterr().out

    def test_scenarios_resume_requires_prior_results(self, tiny_space):
        spec, path, store = tiny_space
        with pytest.raises(SystemExit):
            main(["scenarios", "resume", str(path), "--store", str(store)])

    def test_scenarios_run_named_space_with_overrides(self, capsys, tmp_path):
        code = main(
            [
                "scenarios", "run", "fig10",
                "--store", str(tmp_path), "--count", "3", "--seed", "10",
            ]
        )
        assert code == 0
        assert "chunks: 1/1 complete" in capsys.readouterr().out

    def test_scenarios_show_without_results(self, capsys, tiny_space):
        spec, path, store = tiny_space
        assert main(["scenarios", "show", str(path), "--store", str(store)]) == 0
        assert "no stored results" in capsys.readouterr().out

    def test_incomplete_hint_reproduces_flags(self, capsys, tmp_path):
        """The printed resume command must carry every flag that shapes the
        campaign (spec derivations and the chunk plan)."""
        code = main(
            [
                "scenarios", "run", "fig10",
                "--store", str(tmp_path), "--count", "4", "--seed", "10",
                "--chunk-size", "1", "--max-chunks", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "--chunk-size 1" in out
        assert "--count 4" in out
        assert "--seed 10" in out

    def test_missing_spec_file_reports_cleanly(self, tmp_path):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="cannot read scenario spec"):
            main(["scenarios", "show", str(tmp_path / "nope.json")])

    def test_invalid_spec_file_reports_cleanly(self, tmp_path):
        from repro.exceptions import ExperimentError

        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ExperimentError, match="invalid scenario spec"):
            main(["scenarios", "show", str(path)])

    def test_scenarios_show_on_partial_store(self, capsys, tiny_space):
        """`show` must render a partially persisted campaign: honest chunk
        and row counts plus the aggregate of what exists so far."""
        spec, path, store = tiny_space
        code = main(
            [
                "scenarios", "run", str(path),
                "--store", str(store), "--chunk-size", "1", "--max-chunks", "3",
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["scenarios", "show", str(path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "completed chunks: 3" in out
        assert "persisted scenarios: 6 of 8" in out
        assert "INC_C lp" in out

    def test_scenarios_show_on_empty_partial_directory(self, capsys, tiny_space):
        """A store directory created but holding zero completed chunks
        (killed before the first append) still shows cleanly."""
        from repro.scenarios.store import CampaignStore

        spec, path, store = tiny_space
        CampaignStore(store).campaign(spec)  # creates spec.json, no chunks
        assert main(["scenarios", "show", str(path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "completed chunks: 0" in out
        assert "persisted scenarios: 0 of 8" in out

    def test_scenarios_export_npz(self, capsys, tiny_space, tmp_path):
        spec, path, store = tiny_space
        assert main(["scenarios", "run", str(path), "--store", str(store)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "columns.npz"
        code = main(
            ["scenarios", "export", str(path), "--store", str(store),
             "--npz", str(out_path)]
        )
        assert code == 0
        assert "8 rows" in capsys.readouterr().out
        import numpy as np

        with np.load(out_path) as archive:
            assert archive["platform"].shape == (8,)
            assert "INC_C lp" in archive

    def test_scenarios_export_requires_results(self, tiny_space, tmp_path):
        spec, path, store = tiny_space
        with pytest.raises(SystemExit):
            main(
                ["scenarios", "export", str(path), "--store", str(store),
                 "--npz", str(tmp_path / "x.npz")]
            )

    def test_scenarios_export_rejects_partial_store(self, capsys, tiny_space, tmp_path):
        spec, path, store = tiny_space
        assert main(
            ["scenarios", "run", str(path), "--store", str(store),
             "--chunk-size", "1", "--max-chunks", "2"]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(
                ["scenarios", "export", str(path), "--store", str(store),
                 "--npz", str(tmp_path / "x.npz")]
            )
        assert "incomplete" in capsys.readouterr().err

    def test_scenarios_list_includes_two_port_spaces(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig12-twoport" in out
        assert "mega-uniform-twoport" in out

    def test_scenarios_list_names_the_workload_kind(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("bus-theorem2", "bus-hetero", "fig08-probe", "fig09-trace"):
            assert name in out
        assert "bus" in out and "probe" in out and "matrix" in out

    def test_scenarios_bus_space_interrupt_resume_export(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(
            ["scenarios", "run", "bus-hetero", "--count", "4", "--store", store,
             "--chunk-size", "2", "--max-chunks", "1"]
        ) == 0
        assert "campaign incomplete" in capsys.readouterr().out
        assert main(
            ["scenarios", "resume", "bus-hetero", "--count", "4", "--store", store,
             "--chunk-size", "2"]
        ) == 0
        assert "chunks: 2/2 complete" in capsys.readouterr().out
        npz = tmp_path / "bus.npz"
        assert main(
            ["scenarios", "export", "bus-hetero", "--count", "4", "--store", store,
             "--npz", str(npz)]
        ) == 0
        import numpy as np

        with np.load(npz) as archive:
            assert "bus closed-form" in archive
            assert archive["size"].dtype == np.float64

    def test_scenarios_probe_space_runs_and_shows(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["scenarios", "run", "fig08-probe", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "chunks: 1/1 complete" in out
        assert "worker 1 transfer" in out
        assert main(["scenarios", "show", "fig08-probe", "--store", store]) == 0
        assert "persisted scenarios: 10 of 10" in capsys.readouterr().out

    def test_spec_file_with_bad_distribution_reports_cleanly(self, tmp_path):
        """The spec error path surfaces through the CLI with the kind named."""
        import json

        from repro.exceptions import ExperimentError
        from repro.scenarios.spec import named_space

        payload = named_space("fig12").as_dict()
        payload["family"]["comm"] = {"kind": "zipf", "params": {"s": 2.0}}
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ExperimentError, match="unknown distribution kind"):
            main(["scenarios", "show", str(path)])

    def test_local_file_cannot_shadow_named_space(self, tmp_path, monkeypatch, capsys):
        """A stray file named like a built-in space must not hijack it."""
        (tmp_path / "fig10").write_text("not a spec", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["scenarios", "show", "fig10", "--store", str(tmp_path / "s")]) == 0
        assert '"name": "fig10"' in capsys.readouterr().out


class TestFabricCommands:
    """The fault-tolerant fabric through the CLI: --workers/--faults on
    run/resume, the heal and merge verbs, and the show diagnostics."""

    @pytest.fixture()
    def tiny_space(self, tmp_path):
        from repro.scenarios.spec import named_space

        spec = named_space("fig12").derive(
            name="cli-fabric", count=6, matrix_sizes=(40, 120), noise=None
        )
        path = tmp_path / "space.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        return spec, path, tmp_path / "store"

    def test_run_with_workers_matches_single_writer_bytes(self, capsys, tiny_space, tmp_path):
        from repro.scenarios.spec import spec_hash

        spec, path, store = tiny_space
        single = tmp_path / "single"
        code = main(
            ["scenarios", "run", str(path), "--store", str(single), "--chunk-size", "2"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "scenarios", "run", str(path),
                "--store", str(store), "--chunk-size", "2", "--workers", "2",
            ]
        )
        assert code == 0
        assert "chunks: 3/3 complete" in capsys.readouterr().out
        reference = (single / spec_hash(spec) / "chunks.jsonl").read_bytes()
        assert (store / spec_hash(spec) / "chunks.jsonl").read_bytes() == reference

    def test_faults_requires_workers(self, tiny_space):
        spec, path, store = tiny_space
        with pytest.raises(SystemExit):
            main(
                ["scenarios", "run", str(path), "--store", str(store),
                 "--faults", "crash-pre@0"]
            )

    def test_workers_must_be_positive(self, tiny_space):
        spec, path, store = tiny_space
        with pytest.raises(SystemExit):
            main(
                ["scenarios", "run", str(path), "--store", str(store), "--workers", "0"]
            )

    def test_chaos_run_then_heal_completes_campaign(self, capsys, tiny_space):
        spec, path, store = tiny_space
        code = main(
            [
                "scenarios", "run", str(path),
                "--store", str(store), "--chunk-size", "2", "--workers", "2",
                "--faults", "crash-pre@0,abandon@2", "--chunk-timeout", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chunks: 2/3 complete" in out
        assert "fabric: " in out  # the crash-pre retry is reported
        assert "abandoned lease(s) on chunk(s) [2]" in out
        assert "scenarios heal" in out

        # show surfaces the outstanding lease before healing.
        assert main(["scenarios", "show", str(path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "outstanding leases: 2" in out
        assert "recover with 'scenarios heal'" in out

        code = main(
            ["scenarios", "heal", str(path), "--store", str(store), "--chunk-size", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "healed 1 abandoned chunk(s)" in out
        assert "still incomplete" not in out

        assert main(["scenarios", "show", str(path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "persisted scenarios: 12 of 12" in out
        assert "outstanding leases" not in out

    def test_merge_verb_on_clean_campaign_is_a_no_op(self, capsys, tiny_space):
        spec, path, store = tiny_space
        assert main(["scenarios", "run", str(path), "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["scenarios", "merge", str(path), "--store", str(store)]) == 0
        assert "merged 0 new chunk(s)" in capsys.readouterr().out

    def test_heal_requires_prior_campaign(self, tiny_space):
        spec, path, store = tiny_space
        with pytest.raises(SystemExit):
            main(["scenarios", "heal", str(path), "--store", str(store)])

    def test_show_reports_torn_tail_recovery(self, capsys, tiny_space):
        from repro.scenarios.spec import spec_hash

        spec, path, store = tiny_space
        assert main(
            ["scenarios", "run", str(path), "--store", str(store), "--chunk-size", "2"]
        ) == 0
        capsys.readouterr()
        chunks_path = store / spec_hash(spec) / "chunks.jsonl"
        with open(chunks_path, "a", encoding="utf-8") as handle:
            handle.write('{"chunk": 3, "start": 6, "rows": [{"pla')
        assert main(["scenarios", "show", str(path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "recovered on open: dropped torn tail of chunk 3" in out


class TestDetachedCommands:
    """The multi-machine tier through the CLI: the 'work' verb and the
    '--detached-workers' coordinator mode over one shared store."""

    @pytest.fixture()
    def tiny_space(self, tmp_path):
        from repro.scenarios.spec import named_space

        spec = named_space("fig12").derive(
            name="cli-detached", count=6, matrix_sizes=(40, 120), noise=None
        )
        path = tmp_path / "space.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        return spec, path, tmp_path / "store"

    @pytest.fixture(autouse=True)
    def restore_signal_handlers(self):
        import signal

        term = signal.getsignal(signal.SIGTERM)
        intr = signal.getsignal(signal.SIGINT)
        yield
        signal.signal(signal.SIGTERM, term)
        signal.signal(signal.SIGINT, intr)

    def test_work_gives_up_without_a_coordinator(self, capsys, tmp_path):
        code = main(
            ["scenarios", "work", str(tmp_path / "empty"), "--owner", "w0",
             "--wait", "0.1"]
        )
        assert code == 0
        assert "worker w0: 0 chunk(s) completed" in capsys.readouterr().out

    def test_work_and_detached_coordinator_converge(self, capsys, tiny_space, tmp_path):
        import multiprocessing

        from repro.scenarios.spec import spec_hash

        spec, path, store = tiny_space
        single = tmp_path / "single"
        assert main(
            ["scenarios", "run", str(path), "--store", str(single), "--chunk-size", "2"]
        ) == 0
        capsys.readouterr()

        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(
                target=main,
                args=(
                    ["scenarios", "work", str(store), "--space", str(path),
                     "--owner", f"cli-w{index}", "--poll", "0.05", "--wait", "20"],
                ),
            )
            for index in range(2)
        ]
        for process in workers:
            process.start()
        try:
            code = main(
                [
                    "scenarios", "run", str(path), "--store", str(store),
                    "--chunk-size", "2", "--detached-workers",
                    "--chunk-timeout", "5", "--wait-timeout", "60",
                ]
            )
        finally:
            for process in workers:
                process.join(timeout=30)
                if process.is_alive():
                    process.kill()
                    process.join()
        assert code == 0
        assert "chunks: 3/3 complete" in capsys.readouterr().out
        reference = (single / spec_hash(spec) / "chunks.jsonl").read_bytes()
        assert (store / spec_hash(spec) / "chunks.jsonl").read_bytes() == reference

    def test_detached_workers_rejects_spawning_flags(self, tiny_space):
        spec, path, store = tiny_space
        for extra in (
            ["--workers", "2"],
            ["--faults", "crash-pre@0"],
            ["--max-chunks", "1"],
        ):
            with pytest.raises(SystemExit):
                main(
                    ["scenarios", "run", str(path), "--store", str(store),
                     "--detached-workers", *extra]
                )

    def test_skew_slack_requires_detached_workers(self, tiny_space):
        spec, path, store = tiny_space
        with pytest.raises(SystemExit):
            main(
                ["scenarios", "run", str(path), "--store", str(store),
                 "--skew-slack", "5"]
            )
        with pytest.raises(SystemExit):
            main(
                ["scenarios", "run", str(path), "--store", str(store),
                 "--wait-timeout", "5"]
            )


class TestServeCommand:
    """``scenarios serve`` wiring: parser surface, validation, dispatch."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["scenarios", "serve"])
        assert args.scenarios_command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.cache_size == 1024
        assert args.cache_dir is None
        assert args.window == 0.002
        assert args.max_batch == 64
        assert args.telemetry == "off"

    def test_parser_options(self, tmp_path):
        args = build_parser().parse_args(
            ["scenarios", "serve", "--host", "0.0.0.0", "--port", "0",
             "--cache-size", "9", "--cache-dir", str(tmp_path),
             "--window", "0", "--max-batch", "1", "--telemetry", "on"]
        )
        assert args.port == 0
        assert args.cache_size == 9
        assert args.window == 0.0
        assert args.max_batch == 1

    @pytest.mark.parametrize(
        "flags",
        [
            ["--window", "-0.1"],
            ["--max-batch", "0"],
            ["--cache-size", "0"],
            ["--telemetry", "on"],  # needs --cache-dir for the sidecar
        ],
    )
    def test_validation_rejects(self, flags):
        with pytest.raises(SystemExit):
            main(["scenarios", "serve", *flags])

    def test_dispatches_to_run_server(self, monkeypatch, tmp_path):
        calls = {}

        def fake_run_server(host, port, *, service=None, stop=None):
            calls["host"], calls["port"] = host, port
            calls["service"] = service
            return 0

        import repro.api.server

        monkeypatch.setattr(repro.api.server, "run_server", fake_run_server)
        code = main(
            ["scenarios", "serve", "--port", "0", "--cache-dir", str(tmp_path),
             "--cache-size", "7", "--window", "0.01", "--max-batch", "3"]
        )
        assert code == 0
        assert calls["host"] == "127.0.0.1" and calls["port"] == 0
        service = calls["service"]
        assert service.cache.max_entries == 7
        assert service.cache.directory == tmp_path
        assert service.funnel.window == 0.01
        assert service.funnel.max_batch == 3


class TestBrokenPipeGuard:
    """Satellite 3: every verb exits quietly when the consumer hangs up."""

    def test_main_routes_broken_pipe_to_the_shared_helper(self, monkeypatch):
        from repro import cli

        def boom(argv=None):
            raise BrokenPipeError

        # Stub the helper: its dup2 onto fd 1 would clobber pytest's own
        # capture; the real fd surgery is covered by the subprocess tests.
        monkeypatch.setattr(cli, "_main", boom)
        monkeypatch.setattr(cli, "exit_quietly_on_broken_pipe", lambda: 0)
        assert cli.main(["list"]) == 0

    def test_helper_tolerates_fd_less_stdout(self):
        """A stream with no real file descriptor (embedded use) must not
        trip the helper — exercised in a subprocess so the fd surgery
        cannot disturb pytest's own capture."""
        import os
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        result = subprocess.run(
            [sys.executable, "-c",
             "import io, sys\n"
             "from repro.cli import exit_quietly_on_broken_pipe\n"
             "sys.stdout = io.StringIO()\n"
             "assert exit_quietly_on_broken_pipe() == 0\n"
             "assert exit_quietly_on_broken_pipe() == 0\n"],
            capture_output=True,
            env=dict(os.environ, PYTHONPATH=src),
        )
        assert result.returncode == 0, result.stderr

    def test_list_piped_to_early_exit_consumer(self):
        """End-to-end: `repro-experiments scenarios list | head -0` exits 0."""
        import os
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        script = (
            "import sys; from repro.cli import main; "
            "sys.exit(main(['scenarios', 'list']))"
        )
        consumer = subprocess.run(
            f"{sys.executable} -c \"{script}\" | head -c 8",
            shell=True,
            capture_output=True,
            env=dict(os.environ, PYTHONPATH=src),
        )
        assert consumer.returncode == 0
