"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig08"])
        assert args.experiment == "fig08"
        assert args.preset == "paper"
        assert args.csv is None

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "fig14", "--preset", "quick", "--csv", "out.csv", "--markdown", "out.md"]
        )
        assert args.preset == "quick"
        assert args.csv == "out.csv"
        assert args.markdown == "out.md"

    def test_invalid_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig08", "--preset", "gigantic"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro-experiments" in capsys.readouterr().out


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert identifier in out

    def test_run_single_experiment_quick(self, capsys):
        assert main(["run", "fig08", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out
        assert "worker 1" in out

    def test_run_writes_csv_and_markdown(self, tmp_path, capsys):
        csv_path = tmp_path / "series.csv"
        md_path = tmp_path / "report.md"
        code = main(
            [
                "run",
                "fig14",
                "--preset",
                "quick",
                "--csv",
                str(csv_path),
                "--markdown",
                str(md_path),
            ]
        )
        assert code == 0
        assert csv_path.exists() and md_path.exists()
        assert "figure,series,x,y" in csv_path.read_text()
        assert "fig14" in md_path.read_text()

    def test_run_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99", "--preset", "quick"])
