"""Tests for the schedule model (:mod:`repro.core.schedule`)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from conftest import platforms
from repro.core.platform import StarPlatform, Worker
from repro.core.schedule import Schedule, fifo_schedule, lifo_schedule
from repro.exceptions import InfeasibleScheduleError, ScheduleError


@pytest.fixture
def tight_two_worker_platform() -> StarPlatform:
    """Hand-solvable platform used for exact timeline assertions."""
    return StarPlatform(
        [Worker("P1", c=1.0, w=2.0, d=0.5), Worker("P2", c=2.0, w=1.0, d=1.0)]
    )


class TestConstruction:
    def test_rejects_non_positive_deadline(self, three_workers):
        with pytest.raises(ScheduleError):
            Schedule(three_workers, {"P1": 0.1}, sigma1=["P1"], deadline=0.0)

    def test_rejects_duplicate_sigma1(self, three_workers):
        with pytest.raises(ScheduleError):
            Schedule(three_workers, {"P1": 0.1}, sigma1=["P1", "P1"])

    def test_rejects_mismatched_permutations(self, three_workers):
        with pytest.raises(ScheduleError):
            Schedule(three_workers, {}, sigma1=["P1", "P2"], sigma2=["P1", "P3"])

    def test_rejects_unknown_workers(self, three_workers):
        with pytest.raises(ScheduleError):
            Schedule(three_workers, {}, sigma1=["P1", "nope"])

    def test_rejects_loads_outside_sigma1(self, three_workers):
        with pytest.raises(ScheduleError):
            Schedule(three_workers, {"P3": 0.5}, sigma1=["P1", "P2"])

    def test_rejects_negative_loads(self, three_workers):
        with pytest.raises(ScheduleError):
            Schedule(three_workers, {"P1": -0.1}, sigma1=["P1"])

    def test_defaults_to_fifo(self, three_workers):
        schedule = Schedule(three_workers, {"P1": 0.1}, sigma1=["P1", "P2", "P3"])
        assert schedule.sigma2 == schedule.sigma1
        assert schedule.is_fifo

    def test_missing_loads_default_to_zero(self, three_workers):
        schedule = Schedule(three_workers, {"P1": 0.2}, sigma1=["P1", "P2"])
        assert schedule.load("P2") == 0.0
        assert schedule.load("P1") == pytest.approx(0.2)


class TestBasicProperties:
    def test_total_load_and_throughput(self, three_workers):
        schedule = Schedule(
            three_workers, {"P1": 0.2, "P2": 0.1}, sigma1=["P1", "P2"], deadline=2.0
        )
        assert schedule.total_load == pytest.approx(0.3)
        assert schedule.throughput == pytest.approx(0.15)

    def test_participants_follow_sigma1_order(self, three_workers):
        schedule = Schedule(
            three_workers, {"P3": 0.1, "P1": 0.2}, sigma1=["P3", "P2", "P1"]
        )
        assert schedule.participants == ["P3", "P1"]

    def test_fifo_and_lifo_flags(self, three_workers):
        fifo = fifo_schedule(three_workers, {"P1": 0.1, "P2": 0.1}, ["P1", "P2"])
        lifo = lifo_schedule(three_workers, {"P1": 0.1, "P2": 0.1}, ["P1", "P2"])
        assert fifo.is_fifo and not lifo.is_fifo
        assert lifo.is_lifo and not fifo.is_lifo

    def test_single_worker_is_both_fifo_and_lifo(self, three_workers):
        schedule = Schedule(three_workers, {"P1": 0.1}, sigma1=["P1"])
        assert schedule.is_fifo and schedule.is_lifo

    def test_flags_ignore_zero_load_workers(self, three_workers):
        # Return order differs only on a worker that gets no load.
        schedule = Schedule(
            three_workers,
            {"P1": 0.1, "P2": 0.1},
            sigma1=["P1", "P2", "P3"],
            sigma2=["P3", "P1", "P2"],
        )
        assert schedule.is_fifo


class TestTimelines:
    def test_two_worker_fifo_timeline(self, tight_two_worker_platform):
        # alpha1 = 0.2, alpha2 = 0.1, T = 1:
        #   P1: send [0, 0.2], compute [0.2, 0.6], return slot [0.8, 0.9]
        #   P2: send [0.2, 0.4], compute [0.4, 0.5], return slot [0.9, 1.0]
        schedule = fifo_schedule(
            tight_two_worker_platform, {"P1": 0.2, "P2": 0.1}, ["P1", "P2"]
        )
        timelines = schedule.timelines()
        p1, p2 = timelines["P1"], timelines["P2"]
        assert p1.send_start == pytest.approx(0.0)
        assert p1.send_end == pytest.approx(0.2)
        assert p1.compute_end == pytest.approx(0.6)
        assert p1.return_start == pytest.approx(0.8)
        assert p1.return_end == pytest.approx(0.9)
        assert p1.idle == pytest.approx(0.2)
        assert p2.send_start == pytest.approx(0.2)
        assert p2.compute_end == pytest.approx(0.5)
        assert p2.return_start == pytest.approx(0.9)
        assert p2.return_end == pytest.approx(1.0)
        assert schedule.is_feasible()

    def test_lifo_reverses_return_slots(self, tight_two_worker_platform):
        schedule = lifo_schedule(
            tight_two_worker_platform, {"P1": 0.2, "P2": 0.1}, ["P1", "P2"]
        )
        timelines = schedule.timelines()
        # In LIFO, P2 returns first, P1 returns last (ends at the deadline).
        assert timelines["P1"].return_end == pytest.approx(1.0)
        assert timelines["P2"].return_end == pytest.approx(timelines["P1"].return_start)

    def test_idle_times_match_timelines(self, tight_two_worker_platform):
        schedule = fifo_schedule(
            tight_two_worker_platform, {"P1": 0.2, "P2": 0.1}, ["P1", "P2"]
        )
        idles = schedule.idle_times()
        timelines = schedule.timelines()
        for name, idle in idles.items():
            assert idle == pytest.approx(timelines[name].idle)

    def test_makespan_eager_execution(self, tight_two_worker_platform):
        schedule = fifo_schedule(
            tight_two_worker_platform, {"P1": 0.2, "P2": 0.1}, ["P1", "P2"]
        )
        # Eager: sends end at 0.4; P1 computed by 0.6 -> return [0.6, 0.7];
        # P2 computed by 0.5 -> return [0.7, 0.8].
        assert schedule.makespan() == pytest.approx(0.8)

    def test_busy_time(self, tight_two_worker_platform):
        schedule = fifo_schedule(tight_two_worker_platform, {"P1": 0.2}, ["P1"])
        tl = schedule.timelines()["P1"]
        assert tl.busy_time == pytest.approx(0.2 * (1.0 + 2.0 + 0.5))

    def test_as_dict_round_trip(self, tight_two_worker_platform):
        schedule = fifo_schedule(tight_two_worker_platform, {"P1": 0.2}, ["P1"])
        data = schedule.as_dict()
        assert data["participants"] == ["P1"]
        assert data["timelines"]["P1"]["load"] == pytest.approx(0.2)


class TestFeasibility:
    def test_overloaded_schedule_is_infeasible(self, tight_two_worker_platform):
        schedule = fifo_schedule(
            tight_two_worker_platform, {"P1": 0.5, "P2": 0.5}, ["P1", "P2"]
        )
        assert not schedule.is_feasible()
        with pytest.raises(InfeasibleScheduleError):
            schedule.verify()

    def test_one_port_violation_detected(self):
        # Large loads whose send+return phases must overlap within T=1.
        platform = StarPlatform(
            [Worker("P1", c=1.0, w=0.01, d=1.0), Worker("P2", c=1.0, w=0.01, d=1.0)]
        )
        schedule = fifo_schedule(platform, {"P1": 0.3, "P2": 0.3}, ["P1", "P2"])
        violations = schedule.violations(one_port=True)
        assert any("one-port" in violation for violation in violations)
        # The same schedule is fine under the two-port model.
        assert schedule.is_feasible(one_port=False)

    def test_zero_load_workers_do_not_trigger_violations(self, three_workers):
        schedule = fifo_schedule(
            three_workers, {"P1": 0.05}, ["P1", "P2", "P3"]
        )
        assert schedule.is_feasible()

    def test_verify_accepts_feasible_schedule(self, tight_two_worker_platform):
        schedule = fifo_schedule(
            tight_two_worker_platform, {"P1": 0.2, "P2": 0.1}, ["P1", "P2"]
        )
        schedule.verify()  # must not raise


class TestTransformations:
    def test_scaled_to_total_load(self, tight_two_worker_platform):
        schedule = fifo_schedule(
            tight_two_worker_platform, {"P1": 0.2, "P2": 0.1}, ["P1", "P2"]
        )
        scaled = schedule.scaled_to_total_load(30.0)
        assert scaled.total_load == pytest.approx(30.0)
        assert scaled.deadline == pytest.approx(100.0)
        assert scaled.throughput == pytest.approx(schedule.throughput)
        # proportions preserved
        assert scaled.load("P1") / scaled.load("P2") == pytest.approx(2.0)

    def test_scaled_to_total_load_requires_positive_current_load(self, three_workers):
        schedule = Schedule(three_workers, {}, sigma1=["P1"])
        with pytest.raises(ScheduleError):
            schedule.scaled_to_total_load(10.0)

    def test_restricted_to_participants(self, three_workers):
        schedule = fifo_schedule(
            three_workers, {"P1": 0.1, "P3": 0.0, "P2": 0.05}, ["P1", "P3", "P2"]
        )
        restricted = schedule.restricted_to_participants()
        assert restricted.sigma1 == ("P1", "P2")
        assert restricted.total_load == pytest.approx(schedule.total_load)

    def test_restricted_requires_a_participant(self, three_workers):
        schedule = Schedule(three_workers, {}, sigma1=["P1", "P2"])
        with pytest.raises(ScheduleError):
            schedule.restricted_to_participants()

    def test_with_loads_keeps_orders(self, three_workers):
        schedule = lifo_schedule(three_workers, {"P1": 0.1}, ["P1", "P2", "P3"])
        updated = schedule.with_loads({"P2": 0.2})
        assert updated.sigma1 == schedule.sigma1
        assert updated.sigma2 == schedule.sigma2
        assert updated.load("P1") == 0.0
        assert updated.load("P2") == pytest.approx(0.2)


class TestScheduleProperties:
    @given(platforms(max_size=5), st.floats(min_value=0.01, max_value=0.2))
    def test_small_loads_are_always_feasible(self, platform, unit_load):
        """Tiny equal loads never violate the model (sanity of the checker)."""
        per_worker = unit_load / (10 * len(platform))
        loads = {name: per_worker for name in platform.worker_names}
        schedule = fifo_schedule(platform, loads, platform.worker_names)
        # makespan of an eager run of a tiny load is far below the deadline
        assert schedule.makespan() <= 1.0
        assert schedule.is_feasible()

    @given(platforms(max_size=5))
    def test_scaling_preserves_feasibility(self, platform):
        per_worker = 1.0 / (100 * len(platform) * max(w.round_trip + w.w for w in platform))
        loads = {name: per_worker for name in platform.worker_names}
        schedule = fifo_schedule(platform, loads, platform.worker_names)
        scaled = schedule.scaled_to_total_load(42.0)
        assert scaled.is_feasible()
        assert scaled.total_load == pytest.approx(42.0)
