"""Tests of the array-level scenario fast path and the fast timeline replay.

The fast kernel (:mod:`repro.core.fast_scenario`) is the default production
solver for scenario LPs, with the modelling layer + SciPy and the exact
rational simplex as references.  These tests pin:

* numerical agreement (objective, loads, participant set) between the three
  paths on fixed and randomised platforms — including ``z > 1`` mirrored
  orders and two-port (``one_port=False``) scenarios;
* the dispatch rules of :func:`~repro.core.linear_program.solve_scenario`;
* bit-identical behaviour of the analytic one-port timeline replay against
  the discrete-event engine, noise included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import platforms
from repro.core.fast_scenario import (
    scenario_arrays,
    solve_scenario_arrays,
    solve_scenario_arrays_linprog,
    solve_scenario_fast,
)
from repro.core.fifo import optimal_fifo_order
from repro.core.linear_program import build_scenario_program, solve_scenario
from repro.exceptions import ScheduleError, SolverError
from repro.simulation.cluster import ClusterSimulation
from repro.simulation.noise import GaussianJitter, NoJitter, UniformJitter


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_agrees(platform, sigma1, sigma2=None, one_port=True, tol=1e-9):
    """Fast path and exact simplex must agree.

    The objective must always match.  Vertex equality (participants and
    loads) is asserted too — except when the instance has *multiple*
    optimal vertices (possible on degenerate platforms with tied costs,
    e.g. ``z > 1`` mirrored orders with equal ``c`` values), where float
    pivoting may legitimately land on a different optimal vertex than the
    rational simplex; the fast solution must then still be a feasible
    point of the exact scenario program achieving the same objective.
    """
    fast = solve_scenario(platform, sigma1, sigma2, one_port=one_port, fast=True)
    exact = solve_scenario(platform, sigma1, sigma2, one_port=one_port, solver="exact")
    assert fast.throughput == pytest.approx(exact.throughput, abs=tol)
    same_vertex = fast.participants == exact.participants and all(
        abs(fast.loads[name] - exact.loads[name]) <= tol for name in sigma1
    )
    if not same_vertex:
        # alternative optima: verify optimality instead of vertex identity
        values = {f"alpha[{name}]": fast.loads[name] for name in sigma1}
        assert exact.program.is_feasible(values, tol=1e-7)


class TestScenarioArrays:
    def test_matches_modelling_layer_export(self, three_workers):
        """The array builder reproduces the LinearProgram dense export."""
        order = three_workers.ordered_by_c()
        sigma2 = list(reversed(order))
        a, b = scenario_arrays(three_workers, order, sigma2, deadline=2.0)
        program = build_scenario_program(three_workers, order, sigma2, deadline=2.0)
        _, a_ub, b_ub, _, _, _ = program.to_dense()
        np.testing.assert_allclose(a, a_ub, atol=0, rtol=0)
        np.testing.assert_allclose(b, b_ub, atol=0, rtol=0)

    def test_two_port_drops_coupling_row(self, three_workers):
        order = three_workers.ordered_by_c()
        a, b = scenario_arrays(three_workers, order, one_port=False)
        assert a.shape == (3, 3)
        a1, _ = scenario_arrays(three_workers, order, one_port=True)
        assert a1.shape == (4, 3)

    def test_validation_mirrors_modelling_layer(self, three_workers):
        with pytest.raises(ScheduleError):
            solve_scenario_fast(three_workers, [])
        with pytest.raises(ScheduleError):
            solve_scenario_fast(three_workers, ["P1", "P1"])
        with pytest.raises(ScheduleError):
            solve_scenario_fast(three_workers, ["P1"], ["P2"])
        with pytest.raises(ScheduleError):
            solve_scenario_fast(three_workers, ["nope"])
        with pytest.raises(ScheduleError):
            solve_scenario_fast(three_workers, ["P1"], deadline=0.0)


class TestKernelAgreement:
    def test_three_workers_fifo(self, three_workers):
        _assert_agrees(three_workers, three_workers.ordered_by_c())

    def test_four_workers_lifo_pair(self, four_workers):
        order = four_workers.ordered_by_c()
        _assert_agrees(four_workers, order, list(reversed(order)))

    def test_two_port(self, four_workers):
        order = four_workers.ordered_by_c()
        _assert_agrees(four_workers, order, one_port=False)

    def test_agrees_with_highs_on_arrays(self, four_workers):
        """Kernel and HiGHS agree on the same constraint arrays."""
        order = four_workers.ordered_by_c()
        a, b = scenario_arrays(four_workers, order)
        kernel = solve_scenario_arrays(a, b)
        highs = solve_scenario_arrays_linprog(a, b)
        assert kernel.objective == pytest.approx(highs.objective, abs=1e-9)
        np.testing.assert_allclose(kernel.loads, highs.loads, atol=1e-9)

    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=0.5), st.randoms(use_true_random=False))
    def test_random_platforms_fifo(self, platform, rnd):
        order = list(platform.worker_names)
        rnd.shuffle(order)
        _assert_agrees(platform, order)

    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=2.0))
    def test_mirrored_order_when_z_above_one(self, platform):
        """z > 1: Theorem 1's mirrored (non-increasing c) order."""
        order = optimal_fifo_order(platform)
        assert order == platform.ordered_by_c(descending=True)
        _assert_agrees(platform, order)
        _assert_agrees(platform, order, list(reversed(order)))

    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=None))
    def test_two_port_random_permutation_pairs(self, platform):
        order = platform.ordered_by_c()
        sigma2 = list(reversed(order))
        _assert_agrees(platform, order, sigma2, one_port=False)

    def test_degenerate_homogeneous_platform_matches_exact_vertex(self):
        """Alternative optima: the kernel picks the exact simplex's vertex."""
        from repro.core.platform import homogeneous_platform

        platform = homogeneous_platform(8, c=1.0, w=2.0, d=0.5)
        _assert_agrees(platform, platform.ordered_by_c())


class TestSolveScenarioDispatch:
    def test_fast_is_default_without_solver(self, three_workers):
        solution = solve_scenario(three_workers, three_workers.ordered_by_c())
        assert solution.lp_result.backend == "fast-kernel"

    def test_explicit_solver_uses_modelling_layer(self, three_workers):
        solution = solve_scenario(three_workers, three_workers.ordered_by_c(), solver="scipy")
        assert solution.lp_result.backend == "scipy-highs"

    def test_idle_variables_force_modelling_layer(self, three_workers):
        solution = solve_scenario(
            three_workers, three_workers.ordered_by_c(), include_idle_variables=True
        )
        assert solution.lp_result.backend != "fast-kernel"

    def test_contradictory_requests_are_rejected(self, three_workers):
        order = three_workers.ordered_by_c()
        with pytest.raises(SolverError):
            solve_scenario(three_workers, order, fast=True, solver="exact")
        with pytest.raises(SolverError):
            solve_scenario(three_workers, order, fast=True, include_idle_variables=True)

    def test_program_is_rebuilt_lazily_on_fast_path(self, three_workers):
        order = three_workers.ordered_by_c()
        solution = solve_scenario(three_workers, order, fast=True)
        program = solution.program  # built on demand
        assert program.num_variables == len(order)
        # the lazily built program accepts the fast path's solution
        values = {f"alpha[{name}]": solution.loads[name] for name in order}
        assert program.is_feasible(values, tol=1e-7)


class TestFastTimelineReplay:
    @_SETTINGS
    @given(
        platforms(min_size=1, max_size=5, z=None),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["none", "uniform", "gaussian"]),
    )
    def test_bit_identical_to_event_engine(self, platform, seed, noise_kind):
        """Same makespan, records and noise draws as the discrete-event run."""

        def noise():
            if noise_kind == "none":
                return NoJitter()
            if noise_kind == "uniform":
                return UniformJitter(amplitude=0.05, comm_amplitude=0.2, seed=seed)
            return GaussianJitter(sigma=0.1, seed=seed)

        rng = np.random.default_rng(seed)
        loads = {name: float(rng.uniform(0.0, 4.0)) for name in platform.worker_names}
        sigma1 = list(rng.permutation(platform.worker_names))
        sigma2 = list(rng.permutation(platform.worker_names))

        fast = ClusterSimulation(platform, noise=noise(), engine="fast").run_assignment(
            loads, sigma1, sigma2
        )
        event = ClusterSimulation(platform, noise=noise(), engine="event").run_assignment(
            loads, sigma1, sigma2
        )
        assert fast.makespan == event.makespan
        assert set(fast.records) == set(event.records)
        for name, expected in event.records.items():
            got = fast.records[name]
            assert got.as_dict() == expected.as_dict()
        # same Gantt bars (ordering within equal timestamps may differ)
        def key(e):
            return (e.resource, e.kind, e.start, e.end, e.load, e.note)

        assert sorted(map(key, fast.trace)) == sorted(map(key, event.trace))

    def test_two_port_auto_uses_fast_replay(self, three_workers):
        simulation = ClusterSimulation(three_workers, one_port=False, engine="auto")
        loads = {name: 1.0 for name in three_workers.worker_names}
        run = simulation.run_assignment(
            loads, three_workers.worker_names, three_workers.worker_names
        )
        assert run.makespan > 0
        assert not run.one_port
        reference = ClusterSimulation(
            three_workers, one_port=False, engine="event"
        ).run_assignment(loads, three_workers.worker_names, three_workers.worker_names)
        assert run.makespan == reference.makespan

    def test_collect_trace_false_skips_gantt_only(self, three_workers):
        loads = {name: 1.0 for name in three_workers.worker_names}
        names = three_workers.worker_names
        with_trace = ClusterSimulation(three_workers, engine="fast").run_assignment(
            loads, names, names
        )
        without = ClusterSimulation(
            three_workers, engine="fast", collect_trace=False
        ).run_assignment(loads, names, names)
        assert without.makespan == with_trace.makespan
        assert len(list(without.trace)) == 0
        assert len(list(with_trace.trace)) > 0
