"""Tests of the batched scenario kernel and its batch entry points.

The batched kernel is the campaign engine's production solver; these tests
pin it three ways:

* **bit-identity to the scalar kernel** on mixed chunks (FIFO, LIFO,
  two-port, mixed worker counts) — loads, objectives and pivot counts;
* **vertex agreement with the reference solvers** (``solver="exact"`` and
  ``solver="scipy"``) on 5/11/25-worker scenarios including degenerate
  homogeneous platforms — participant sets and per-worker loads, not just
  objectives;
* **batch entry points** (:func:`solve_scenarios`,
  :func:`compare_heuristics_batch`, :func:`strategy_comparison_batch`, the
  campaign engine's array-level evaluation) reproduce their scalar
  counterparts exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import strategy_comparison, strategy_comparison_batch
from repro.core.batch_scenario import (
    scenario_arrays_batch,
    solve_scenario_arrays_batch,
    solve_scenarios_fast,
)
from repro.core.fast_scenario import scenario_arrays, solve_scenario_fast
from repro.core.heuristics import (
    _FIFO_ORDERS,
    compare_heuristics,
    compare_heuristics_batch,
)
from repro.core.linear_program import solve_scenario, solve_scenarios
from repro.core.platform import homogeneous_platform
from repro.exceptions import ScheduleError, SolverError
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors


def _campaign_platform(workers: int, seed: int, size: int = 120):
    factors = campaign_factors("hetero-star", 1, size=workers, seed=seed)[0]
    return factors.platform(MatrixProductWorkload(size), name=f"q{workers}-s{seed}")


def _mixed_chunk():
    """FIFO + LIFO + INC_W scenarios over mixed worker counts."""
    scenarios = []
    for workers in (1, 3, 5, 11):
        for seed in range(3):
            platform = _campaign_platform(workers, seed, size=40 + 40 * seed)
            order = platform.ordered_by_c()
            scenarios.append((platform, order, None))
            scenarios.append((platform, order, list(reversed(order))))
            scenarios.append((platform, platform.ordered_by_w(), None))
    degenerate = homogeneous_platform(8, c=1.0, w=2.0, d=0.5)
    scenarios.append((degenerate, degenerate.ordered_by_c(), None))
    return scenarios


class TestArraysBatch:
    def test_matches_scalar_build(self):
        platform = _campaign_platform(5, seed=1)
        order = platform.ordered_by_c()
        c, w, d = (vector[None, :] for vector in platform.cost_vectors(order))
        for one_port in (True, False):
            stacked, rhs = scenario_arrays_batch(c, w, d, one_port=one_port)
            scalar, scalar_rhs = scenario_arrays(platform, order, one_port=one_port)
            assert np.array_equal(stacked[0], scalar)
            assert np.array_equal(rhs[0], scalar_rhs)

    def test_matches_scalar_build_with_permutation(self):
        platform = _campaign_platform(5, seed=2)
        order = platform.ordered_by_c()
        rank2 = np.arange(len(order))[::-1]
        c, w, d = (vector[None, :] for vector in platform.cost_vectors(order))
        stacked, _ = scenario_arrays_batch(c, w, d, rank2=rank2)
        scalar, _ = scenario_arrays(platform, order, list(reversed(order)))
        assert np.array_equal(stacked[0], scalar)

    def test_rejects_bad_shapes(self):
        with pytest.raises(SolverError):
            scenario_arrays_batch(np.ones(3), np.ones(3), np.ones(3))
        with pytest.raises(SolverError):
            scenario_arrays_batch(np.ones((2, 3)), np.ones((2, 4)), np.ones((2, 3)))
        with pytest.raises(SolverError):
            scenario_arrays_batch(
                np.ones((1, 3)), np.ones((1, 3)), np.ones((1, 3)), rank2=np.zeros((2, 2))
            )
        with pytest.raises(ScheduleError):
            scenario_arrays_batch(
                np.ones((1, 3)), np.ones((1, 3)), np.ones((1, 3)), deadline=0.0
            )

    def test_solver_rejects_bad_inputs(self):
        with pytest.raises(SolverError):
            solve_scenario_arrays_batch(np.ones((2, 2)), np.ones((2,)))
        with pytest.raises(SolverError):
            solve_scenario_arrays_batch(np.ones((1, 2, 2)), np.zeros((1, 2)))


class TestBitIdentityWithScalarKernel:
    @pytest.mark.parametrize("one_port", (True, False))
    def test_mixed_chunk(self, one_port):
        scenarios = _mixed_chunk()
        batched = solve_scenarios_fast(scenarios, one_port=one_port)
        for (platform, sigma1, sigma2), batch in zip(scenarios, batched):
            scalar = solve_scenario_fast(platform, sigma1, sigma2, one_port=one_port)
            assert batch.objective == scalar.objective
            assert batch.iterations == scalar.iterations
            assert np.array_equal(batch.loads, scalar.loads)

    def test_validation_matches_scalar(self):
        platform = _campaign_platform(3, seed=0)
        with pytest.raises(ScheduleError):
            solve_scenarios_fast([(platform, [], None)])
        with pytest.raises(ScheduleError):
            solve_scenarios_fast([(platform, ["P1", "P1"], None)])
        with pytest.raises(ScheduleError):
            solve_scenarios_fast([(platform, ["P1"], ["P2"])])
        with pytest.raises(ScheduleError):
            solve_scenarios_fast([(platform, ["nope"], None)])
        with pytest.raises(ScheduleError):
            solve_scenarios_fast([(platform, ["P1"], None)], deadline=0.0)


class TestVertexAgreementWithReferenceSolvers:
    """ISSUE acceptance: 5/11/25 workers, degenerate platforms included."""

    @pytest.mark.parametrize("workers", (5, 11, 25))
    def test_agrees_with_scipy_and_exact(self, workers):
        platform = _campaign_platform(workers, seed=workers)
        order = platform.ordered_by_c()
        scenarios = [
            (platform, order, None),
            (platform, order, list(reversed(order))),
        ]
        batched = solve_scenarios_fast(scenarios)
        solvers = ("scipy", "exact") if workers <= 11 else ("scipy",)
        for (p, sigma1, sigma2), batch in zip(scenarios, batched):
            for solver in solvers:
                reference = solve_scenario(p, sigma1, sigma2, solver=solver)
                assert batch.objective == pytest.approx(
                    reference.lp_result.objective, abs=1e-9
                )
                loads = dict(zip(sigma1, batch.loads))
                # vertex agreement: same participant set, same loads
                assert [n for n in sigma1 if loads[n] > 0] == reference.participants
                for name in sigma1:
                    assert loads[name] == pytest.approx(reference.loads[name], abs=1e-9)

    @pytest.mark.parametrize("workers", (5, 11))
    def test_degenerate_homogeneous_platform(self, workers):
        """Alternative optima: the batch picks the exact simplex's vertex.

        Homogeneous platforms have multiple optimal vertices; HiGHS may
        return any of them (so only the objective is compared against
        ``scipy``), while the kernels deterministically land on the exact
        rational simplex's vertex — participant set and loads included.
        """
        platform = homogeneous_platform(workers, c=1.0, w=2.0, d=0.5)
        order = platform.ordered_by_c()
        batch = solve_scenarios_fast([(platform, order, None)])[0]
        scipy_reference = solve_scenario(platform, order, solver="scipy")
        assert batch.objective == pytest.approx(
            scipy_reference.lp_result.objective, abs=1e-9
        )
        exact = solve_scenario(platform, order, solver="exact")
        assert batch.objective == pytest.approx(exact.lp_result.objective, abs=1e-9)
        loads = dict(zip(order, batch.loads))
        assert [n for n in order if loads[n] > 0] == exact.participants
        for name in order:
            assert loads[name] == pytest.approx(exact.loads[name], abs=1e-9)


class TestBatchEntryPoints:
    def test_solve_scenarios_matches_solve_scenario(self):
        scenarios = _mixed_chunk()[:6]
        solutions = solve_scenarios(scenarios)
        for (platform, sigma1, sigma2), solution in zip(scenarios, solutions):
            scalar = solve_scenario(platform, sigma1, sigma2)
            assert solution.throughput == scalar.throughput
            assert solution.loads == scalar.loads
            assert solution.schedule.sigma1 == scalar.schedule.sigma1
            assert solution.schedule.sigma2 == scalar.schedule.sigma2
            assert solution.lp_result.backend == "fast-kernel"

    def test_compare_heuristics_batch_matches_scalar(self):
        platforms = [_campaign_platform(5, seed) for seed in range(4)]
        platforms.append(homogeneous_platform(5, c=1.0, w=2.0, d=0.5))
        names = ("INC_C", "INC_W", "LIFO", "OPT_FIFO")
        for evaluated, platform in zip(compare_heuristics_batch(platforms, names), platforms):
            scalar = compare_heuristics(platform, names)
            assert list(evaluated) == list(scalar)
            for name in names:
                assert evaluated[name].throughput == scalar[name].throughput
                assert evaluated[name].loads == scalar[name].loads

    def test_compare_heuristics_batch_rejects_unknown(self):
        with pytest.raises(ScheduleError):
            compare_heuristics_batch([_campaign_platform(3, 0)], ("NOPE",))

    def test_strategy_comparison_batch_matches_scalar(self):
        platforms = [_campaign_platform(6, seed, size=200) for seed in range(4)]
        for batch, platform in zip(strategy_comparison_batch(platforms), platforms):
            assert batch == strategy_comparison(platform)


class TestCampaignOrderRules:
    """The campaign engine's array-level order rules mirror the heuristics."""

    @pytest.mark.parametrize("name", sorted(_FIFO_ORDERS))
    def test_order_rules_match(self, name):
        from repro.core.order_rules import ORDER_RULES as _ORDER_RULES

        for seed in range(3):
            platform = _campaign_platform(7, seed)
            names = tuple(platform.worker_names)
            c, w, d = (vector.tolist() for vector in platform.cost_vectors(names))
            table_order = [names[i] for i in _ORDER_RULES[name](names, c, w, d)]
            assert table_order == list(_FIFO_ORDERS[name](platform))

    def test_order_rules_match_on_degenerate_platform(self):
        """All-ties sorting must fall back to the same name ordering."""
        from repro.core.order_rules import ORDER_RULES as _ORDER_RULES

        platform = MatrixProductWorkload(100).platform((1.0,) * 11, (1.0,) * 11)
        names = tuple(platform.worker_names)
        c, w, d = (vector.tolist() for vector in platform.cost_vectors(names))
        for name in _FIFO_ORDERS:
            table_order = [names[i] for i in _ORDER_RULES[name](names, c, w, d)]
            assert table_order == list(_FIFO_ORDERS[name](platform))

    def test_lifo_chain_matches_closed_form(self):
        from repro.core.lifo import lifo_closed_form_loads, optimal_lifo_order
        from repro.core.order_rules import (
            lifo_chain_values as _lifo_chain_values,
            sorted_indices as _sorted_indices,
        )

        for seed in range(3):
            platform = _campaign_platform(7, seed)
            names = tuple(platform.worker_names)
            c, w, d = (vector.tolist() for vector in platform.cost_vectors(names))
            order = _sorted_indices(names, c)
            assert [names[i] for i in order] == optimal_lifo_order(platform)
            reference = lifo_closed_form_loads(platform, optimal_lifo_order(platform))
            assert _lifo_chain_values(c, w, d, order) == list(reference.values())
