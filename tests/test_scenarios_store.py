"""Store-level tests for the fabric-era ``CampaignState`` features.

Covers the multi-writer merge primitive (idempotence, duplicate
tolerance, spec-hash checks, overlap/chunk-size-drift rejection, the
canonical sorted byte layout), the torn-tail recovery *diagnostics*
(``recovered_tail`` reporting what was dropped and where), and the
streaming ``export_npz`` path (chunk-at-a-time fill of preallocated
columns: NaN backfill for late-appearing series, empty stores,
compressed and uncompressed archives).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.scenarios.runner import evaluate_range, run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.scenarios.store import CampaignState, CampaignStore


def small_spec(name="store-small", count=6, sizes=(40, 120)):
    return named_space("fig12").derive(
        name=name, count=count, matrix_sizes=sizes, noise=None
    )


def make_state(directory, spec, chunks):
    """Build a store holding the given ``(index, start, stop)`` chunks."""
    state = CampaignState(directory, spec)
    for index, start, stop in chunks:
        state.append_chunk(index, start, stop, evaluate_range(spec, start, stop))
    return state


class TestMerge:
    def test_merge_reassembles_single_writer_bytes(self, tmp_path):
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "ref", chunk_size=2)
        canonical = make_state(tmp_path / "canonical", spec, [(1, 2, 4)])
        worker_a = make_state(tmp_path / "a", spec, [(2, 4, 6)])
        worker_b = make_state(tmp_path / "b", spec, [(0, 0, 2)])

        report = canonical.merge(worker_a, worker_b)
        assert sorted(report.added) == [0, 2]
        assert report.rewritten
        assert report.total_chunks == 3
        expected = (tmp_path / "ref" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        assert canonical.chunks_path.read_bytes() == expected
        assert canonical.rows() == reference.rows()

    def test_merge_accepts_path_sources(self, tmp_path):
        spec = small_spec()
        canonical = make_state(tmp_path / "canonical", spec, [(0, 0, 2)])
        make_state(tmp_path / "worker", spec, [(1, 2, 4)])
        report = canonical.merge(str(tmp_path / "worker"))
        assert report.added == [1]

    def test_identical_duplicates_are_idempotent(self, tmp_path):
        """The normal retry outcome: the same chunk lands in two worker
        stores with byte-identical records — accepted once, reported."""
        spec = small_spec()
        canonical = make_state(tmp_path / "canonical", spec, [(0, 0, 2)])
        worker_a = make_state(tmp_path / "a", spec, [(0, 0, 2), (1, 2, 4)])
        worker_b = make_state(tmp_path / "b", spec, [(1, 2, 4)])

        report = canonical.merge(worker_a, worker_b)
        assert report.added == [1]
        assert sorted(report.duplicates) == [0, 1]
        assert canonical.completed_chunks == {0, 1}

    def test_remerge_is_a_no_op(self, tmp_path):
        spec = small_spec()
        canonical = make_state(tmp_path / "canonical", spec, [(0, 0, 2)])
        worker = make_state(tmp_path / "w", spec, [(1, 2, 4)])
        canonical.merge(worker)
        before = canonical.chunks_path.read_bytes()

        report = canonical.merge(worker)
        assert report.added == []
        assert report.duplicates == [1]
        assert not report.rewritten
        assert canonical.chunks_path.read_bytes() == before

    def test_divergent_duplicates_are_rejected_loudly(self, tmp_path):
        spec = small_spec()
        canonical = make_state(tmp_path / "canonical", spec, [(0, 0, 2)])
        impostor = CampaignState(tmp_path / "impostor", spec)
        rows = evaluate_range(spec, 0, 2)
        rows[0]["values"] = dict(rows[0]["values"], forged=1.0)
        impostor.append_chunk(0, 0, 2, rows)

        with pytest.raises(ExperimentError, match="divergent duplicate chunk 0"):
            canonical.merge(impostor)

    def test_mismatched_spec_hashes_are_rejected_loudly(self, tmp_path):
        spec = small_spec()
        other = small_spec(name="store-other", count=8)
        canonical = make_state(tmp_path / "canonical", spec, [(0, 0, 2)])
        stranger = make_state(tmp_path / "stranger", other, [(1, 2, 4)])

        with pytest.raises(ExperimentError, match="cannot merge"):
            canonical.merge(stranger)
        # Nothing was mixed in.
        assert canonical.completed_chunks == {0}

    def test_overlapping_ranges_chunk_size_drift_rejected(self, tmp_path):
        """Distinct chunk indices with overlapping platform ranges mean
        the stores were written with different chunk sizes."""
        spec = small_spec()
        canonical = make_state(tmp_path / "canonical", spec, [(0, 0, 2)])
        drifted = CampaignState(tmp_path / "drifted", spec)
        drifted.append_chunk(1, 1, 4, evaluate_range(spec, 1, 4))

        with pytest.raises(ExperimentError, match="chunk-size drift"):
            canonical.merge(drifted)

    def test_same_index_different_range_is_divergent(self, tmp_path):
        spec = small_spec()
        canonical = make_state(tmp_path / "canonical", spec, [(0, 0, 2)])
        drifted = make_state(tmp_path / "drifted", spec, [(0, 0, 3)])

        with pytest.raises(ExperimentError, match="divergent duplicate chunk 0"):
            canonical.merge(drifted)

    def test_merge_into_empty_store(self, tmp_path):
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "ref", chunk_size=2)
        canonical = CampaignStore(tmp_path / "empty").campaign(spec)
        workers = [
            make_state(tmp_path / f"w{i}", spec, [(i, 2 * i, 2 * i + 2)])
            for i in range(3)
        ]
        report = canonical.merge(*workers)
        assert report.added == [0, 1, 2]
        expected = (tmp_path / "ref" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        assert canonical.chunks_path.read_bytes() == expected
        assert canonical.rows() == reference.rows()


class TestTornTailDiagnostics:
    def test_clean_store_reports_no_recovery(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        reopened = CampaignState(progress.state.directory, spec)
        assert reopened.recovered_tail is None

    def test_torn_tail_reports_offset_bytes_and_chunk(self, tmp_path, caplog):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2, max_chunks=2)
        directory = tmp_path / spec_hash(spec)
        clean_size = (directory / "chunks.jsonl").stat().st_size
        torn = '{"chunk": 2, "start": 4, "rows": [{"platform"'
        with open(directory / "chunks.jsonl", "a", encoding="utf-8") as handle:
            handle.write(torn)

        with caplog.at_level("WARNING", logger="repro.scenarios.store"):
            reopened = CampaignState(directory, spec)
        recovery = reopened.recovered_tail
        assert recovery is not None
        assert recovery.kind == "torn-tail"
        assert recovery.byte_offset == clean_size
        assert recovery.dropped_bytes == len(torn.encode())
        assert recovery.chunk_index == 2
        assert "chunk 2" in recovery.describe()
        assert str(clean_size) in recovery.describe()
        assert any("torn tail" in record.message for record in caplog.records)
        # The tail was actually truncated away.
        assert (directory / "chunks.jsonl").stat().st_size == clean_size

    def test_torn_tail_without_chunk_header_reports_unknown_chunk(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2, max_chunks=1)
        directory = tmp_path / spec_hash(spec)
        with open(directory / "chunks.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"chu')

        reopened = CampaignState(directory, spec)
        assert reopened.recovered_tail is not None
        assert reopened.recovered_tail.chunk_index is None
        assert "torn tail:" in reopened.recovered_tail.describe()

    def test_missing_newline_repair_is_reported(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2, max_chunks=1)
        directory = tmp_path / spec_hash(spec)
        raw = (directory / "chunks.jsonl").read_bytes()
        (directory / "chunks.jsonl").write_bytes(raw[:-1])

        reopened = CampaignState(directory, spec)
        recovery = reopened.recovered_tail
        assert recovery is not None
        assert recovery.kind == "missing-newline"
        assert recovery.byte_offset == len(raw) - 1
        assert "missing final newline" in recovery.describe()
        # Unlike the torn tail, the record itself survived.
        assert reopened.completed_chunks == {0}


class TestStreamingExport:
    def test_export_streams_without_full_column_lists(self, tmp_path, monkeypatch):
        """The export must never materialise whole-store Python lists —
        only per-chunk reads plus preallocated on-disk arrays."""
        spec = small_spec()
        progress = run_campaign(spec, tmp_path / "store", chunk_size=2)
        state = progress.state
        calls = []
        original = CampaignState.chunk_rows

        def spying(self, index):
            calls.append(index)
            return original(self, index)

        monkeypatch.setattr(CampaignState, "chunk_rows", spying)
        monkeypatch.setattr(
            CampaignState, "rows", lambda self: pytest.fail("rows() materialises")
        )
        state.export_npz(tmp_path / "out.npz")
        assert calls == [0, 1, 2]

    def test_late_appearing_series_backfilled_with_nan(self, tmp_path):
        """A series first seen in chunk 1 gets NaN for chunk 0's rows."""
        spec = small_spec()
        state = CampaignState(tmp_path / "store", spec)
        state.append_chunk(
            0, 0, 1, [{"platform": 0, "size": 40, "values": {"lp": 1.0}}]
        )
        state.append_chunk(
            1, 1, 2, [{"platform": 1, "size": 40, "values": {"lp": 2.0, "late": 3.0}}]
        )
        state.export_npz(tmp_path / "out.npz")
        with np.load(tmp_path / "out.npz") as archive:
            assert archive["lp"].tolist() == [1.0, 2.0]
            late = archive["late"]
            assert np.isnan(late[0]) and late[1] == 3.0

    def test_integer_sizes_export_as_integers(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path / "store", chunk_size=2)
        progress.state.export_npz(tmp_path / "out.npz")
        with np.load(tmp_path / "out.npz") as archive:
            assert archive["size"].dtype == np.int64
            assert archive["platform"].dtype == np.int64

    def test_empty_store_exports_empty_archive(self, tmp_path):
        spec = small_spec()
        state = CampaignStore(tmp_path / "store").campaign(spec)
        summary = state.export_npz(tmp_path / "out.npz")
        assert summary["rows"] == 0
        with np.load(tmp_path / "out.npz") as archive:
            assert archive["platform"].size == 0

    def test_uncompressed_export_round_trips(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path / "store", chunk_size=2)
        progress.state.export_npz(tmp_path / "out.npz", compress=False)
        rows = progress.rows()
        with np.load(tmp_path / "out.npz") as archive:
            assert archive["platform"].tolist() == [row["platform"] for row in rows]

    def test_export_rejects_hostile_series_names(self, tmp_path):
        """Series names become zip member names; path separators must not
        escape the archive root."""
        spec = small_spec()
        state = CampaignState(tmp_path / "store", spec)
        state.append_chunk(
            0, 0, 1, [{"platform": 0, "size": 40, "values": {"../evil": 1.0}}]
        )
        with pytest.raises(ExperimentError, match="series name"):
            state.export_npz(tmp_path / "out.npz")

    def test_raw_chunk_line_round_trips_json(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path, chunk_size=2, max_chunks=1)
        line = progress.state.raw_chunk_line(0)
        assert line.endswith(b"\n")
        record = json.loads(line)
        assert record["chunk"] == 0
        assert record["rows"] == progress.state.chunk_rows(0)
