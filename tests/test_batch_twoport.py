"""Tests of the batched two-port scenario kernel.

:mod:`repro.core.batch_twoport` must be **bit-identical** to the scalar
reference paths on the paper's campaign factor sets:

* the stacked uncoupled build + masked simplex against
  :func:`repro.core.fast_scenario.solve_scenario_fast` with
  ``one_port=False``, scenario by scenario, for every heuristic order
  (FIFO rules and the reversed-return LIFO);
* the batched optimal two-port FIFO/LIFO evaluation against the scalar
  :mod:`repro.core.twoport` functions (same orders, loads, throughputs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_twoport import (
    optimal_two_port_fifo_batch,
    optimal_two_port_lifo_batch,
    solve_two_port_batch,
    solve_two_port_scenarios,
    two_port_arrays_batch,
)
from repro.core.fast_scenario import scenario_arrays, solve_scenario_fast
from repro.core.order_rules import (
    TWO_PORT_ORDER_RULES,
    TWO_PORT_REVERSED_RETURN,
    worker_names,
)
from repro.core.twoport import (
    optimal_two_port_fifo_schedule,
    optimal_two_port_lifo_schedule,
)
from repro.scenarios.spec import named_space
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.sampling import family_cost_tables, sample_factors
from repro.workloads.platforms import PlatformFactors

#: The paper's campaign spaces, truncated (the sampled factor prefix is
#: identical to the full fig10-13 factor sets).
SPACES = ("fig10", "fig11", "fig12", "fig13a", "fig13b")

SIZES = (40, 200)

COUNT = 4


def _platforms(space: str, size: int):
    """The space's first platforms at one matrix size, plus cost tables."""
    family = named_space(space).derive(count=COUNT).family
    table = sample_factors(family)
    c, w, d = family_cost_tables(table, size)
    workload = MatrixProductWorkload(size)
    platforms = [
        PlatformFactors(
            comm=tuple(table.comm[i].tolist()), comp=tuple(table.comp[i].tolist())
        ).platform(workload)
        for i in range(COUNT)
    ]
    return platforms, (c, w, d)


class TestKernelBitIdentity:
    @pytest.mark.parametrize("space", SPACES)
    @pytest.mark.parametrize("size", SIZES)
    def test_batch_matches_scalar_kernel_per_heuristic(self, space, size):
        """Stacked two-port solve == scalar fast kernel, every heuristic."""
        platforms, (c, w, d) = _platforms(space, size)
        names = worker_names(c.shape[1])
        q = len(names)
        for heuristic, rule in TWO_PORT_ORDER_RULES.items():
            reversed_return = heuristic in TWO_PORT_REVERSED_RETURN
            c_matrix = np.empty((COUNT, q))
            w_matrix = np.empty((COUNT, q))
            d_matrix = np.empty((COUNT, q))
            orders = []
            for row in range(COUNT):
                order = rule(names, c[row].tolist(), w[row].tolist(), d[row].tolist())
                orders.append(order)
                c_matrix[row] = c[row][order]
                w_matrix[row] = w[row][order]
                d_matrix[row] = d[row][order]
            rank2 = np.arange(q)[::-1] if reversed_return else None
            solved = solve_two_port_batch(c_matrix, w_matrix, d_matrix, rank2=rank2)
            assert not solved.fallbacks.any()
            for row, (platform, order) in enumerate(zip(platforms, orders)):
                sigma1 = [names[i] for i in order]
                sigma2 = list(reversed(sigma1)) if reversed_return else sigma1
                scalar = solve_scenario_fast(platform, sigma1, sigma2, one_port=False)
                assert (solved.loads[row] == scalar.loads).all()
                assert solved.objectives[row] == scalar.objective
                assert solved.iterations[row] == scalar.iterations

    def test_arrays_match_scalar_build(self):
        """The stacked uncoupled arrays equal the scalar build bit for bit."""
        platforms, (c, w, d) = _platforms("fig12", 120)
        names = worker_names(c.shape[1])
        q = len(names)
        a, b = two_port_arrays_batch(c, w, d, rank2=np.arange(q)[::-1])
        assert a.shape == (COUNT, q, q)  # no coupling row
        for row, platform in enumerate(platforms):
            sigma1 = list(names)
            scalar_a, scalar_b = scenario_arrays(
                platform, sigma1, list(reversed(sigma1)), one_port=False
            )
            assert (a[row] == scalar_a).all()
            assert (b[row] == scalar_b).all()

    def test_mixed_front_end_matches_scalar(self):
        """solve_two_port_scenarios groups mixed worker counts correctly."""
        small, _ = _platforms("fig12", 40)
        scenarios = []
        for platform in small:
            scenarios.append((platform, platform.ordered_by_c(), None))
            order = platform.ordered_by_c()
            scenarios.append((platform, order, list(reversed(order))))
        # A platform of a different size interleaved in the same chunk.
        tiny = PlatformFactors(comm=(2.0, 5.0), comp=(1.0, 4.0)).platform(
            MatrixProductWorkload(40)
        )
        scenarios.insert(1, (tiny, tiny.ordered_by_c(), None))
        results = solve_two_port_scenarios(scenarios)
        for (platform, sigma1, sigma2), result in zip(scenarios, results):
            scalar = solve_scenario_fast(platform, sigma1, sigma2, one_port=False)
            assert (result.loads == scalar.loads).all()
            assert result.objective == scalar.objective


class TestHeuristicBatches:
    @pytest.mark.parametrize("space", SPACES)
    def test_fifo_batch_matches_reference(self, space):
        platforms, _ = _platforms(space, 120)
        batched = optimal_two_port_fifo_batch(platforms)
        for platform, solution in zip(platforms, batched):
            reference = optimal_two_port_fifo_schedule(platform)
            assert solution.order == reference.order
            assert solution.throughput == reference.throughput
            assert solution.loads == reference.loads
            assert solution.participants == reference.participants

    @pytest.mark.parametrize("space", SPACES)
    def test_lifo_batch_matches_reference(self, space):
        platforms, _ = _platforms(space, 120)
        batched = optimal_two_port_lifo_batch(platforms)
        for platform, solution in zip(platforms, batched):
            reference = optimal_two_port_lifo_schedule(platform)
            assert solution.order == reference.order
            assert solution.throughput == reference.throughput
            assert solution.loads == reference.loads
            assert solution.schedule.sigma2 == reference.schedule.sigma2

    def test_two_port_dominates_one_port(self):
        """Dropping the coupling row can only increase the optimum."""
        platforms, _ = _platforms("fig12", 120)
        for platform in platforms:
            order = platform.ordered_by_c()
            one_port = solve_scenario_fast(platform, order, one_port=True)
            two_port = solve_scenario_fast(platform, order, one_port=False)
            assert two_port.objective >= one_port.objective - 1e-12
