"""Tests for the platform model (:mod:`repro.core.platform`)."""

from __future__ import annotations

import pytest
from hypothesis import given

from conftest import platforms
from repro.core.platform import StarPlatform, Worker, bus_platform, homogeneous_platform
from repro.exceptions import PlatformError


class TestWorker:
    def test_basic_construction(self):
        worker = Worker("P1", c=1.0, w=5.0, d=0.5)
        assert worker.name == "P1"
        assert worker.z == pytest.approx(0.5)
        assert worker.round_trip == pytest.approx(1.5)

    def test_rejects_non_positive_costs(self):
        with pytest.raises(PlatformError):
            Worker("P1", c=0.0, w=1.0, d=1.0)
        with pytest.raises(PlatformError):
            Worker("P1", c=1.0, w=-1.0, d=1.0)
        with pytest.raises(PlatformError):
            Worker("P1", c=1.0, w=1.0, d=0.0)

    def test_rejects_non_finite_costs(self):
        with pytest.raises(PlatformError):
            Worker("P1", c=float("inf"), w=1.0, d=1.0)
        with pytest.raises(PlatformError):
            Worker("P1", c=1.0, w=float("nan"), d=1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(PlatformError):
            Worker("", c=1.0, w=1.0, d=1.0)

    def test_scaled_divides_costs(self):
        worker = Worker("P1", c=2.0, w=8.0, d=1.0)
        faster = worker.scaled(comm=2.0, comp=4.0)
        assert faster.c == pytest.approx(1.0)
        assert faster.d == pytest.approx(0.5)
        assert faster.w == pytest.approx(2.0)
        # the original worker is unchanged (frozen dataclass semantics)
        assert worker.c == pytest.approx(2.0)

    def test_scaled_rejects_non_positive_factors(self):
        worker = Worker("P1", c=2.0, w=8.0, d=1.0)
        with pytest.raises(PlatformError):
            worker.scaled(comm=0.0)
        with pytest.raises(PlatformError):
            worker.scaled(comp=-1.0)

    def test_with_ratio(self):
        worker = Worker("P1", c=2.0, w=8.0, d=1.0).with_ratio(2.0)
        assert worker.d == pytest.approx(4.0)
        with pytest.raises(PlatformError):
            worker.with_ratio(0.0)


class TestStarPlatform:
    def test_requires_at_least_one_worker(self):
        with pytest.raises(PlatformError):
            StarPlatform([])

    def test_rejects_duplicate_names(self):
        workers = [Worker("P1", c=1, w=1, d=1), Worker("P1", c=2, w=2, d=2)]
        with pytest.raises(PlatformError) as excinfo:
            StarPlatform(workers)
        assert "P1" in str(excinfo.value)

    def test_indexing_by_name_and_position(self, three_workers):
        assert three_workers["P2"].c == pytest.approx(2.0)
        assert three_workers[0].name == "P1"
        assert "P3" in three_workers
        assert "P9" not in three_workers
        with pytest.raises(PlatformError):
            three_workers["nope"]

    def test_len_iter_and_names(self, three_workers):
        assert len(three_workers) == 3
        assert [w.name for w in three_workers] == ["P1", "P2", "P3"]
        assert three_workers.worker_names == ["P1", "P2", "P3"]
        assert three_workers.size == 3

    def test_equality_and_hash(self, three_workers):
        clone = StarPlatform(list(three_workers.workers), name="other-name")
        assert clone == three_workers
        assert hash(clone) == hash(three_workers)
        assert three_workers != "not a platform"

    def test_z_constant_ratio(self, three_workers):
        assert three_workers.z == pytest.approx(0.5)

    def test_z_none_when_ratio_varies(self):
        platform = StarPlatform(
            [Worker("P1", c=1, w=1, d=0.5), Worker("P2", c=1, w=1, d=0.9)]
        )
        assert platform.z is None

    def test_is_bus_and_bus_costs(self, bus_three, three_workers):
        assert bus_three.is_bus
        assert bus_three.bus_costs == pytest.approx((1.0, 0.5))
        assert not three_workers.is_bus
        with pytest.raises(PlatformError):
            three_workers.bus_costs

    def test_ordered_by_c(self, three_workers):
        assert three_workers.ordered_by_c() == ["P1", "P3", "P2"]
        assert three_workers.ordered_by_c(descending=True) == ["P2", "P3", "P1"]

    def test_ordered_by_w(self, three_workers):
        assert three_workers.ordered_by_w() == ["P2", "P3", "P1"]

    def test_ordered_by_c_breaks_ties_by_name(self):
        platform = StarPlatform(
            [Worker("B", c=1, w=1, d=0.5), Worker("A", c=1, w=2, d=0.5)]
        )
        assert platform.ordered_by_c() == ["A", "B"]

    def test_subplatform(self, three_workers):
        sub = three_workers.subplatform(["P3", "P1"])
        assert sub.worker_names == ["P3", "P1"]
        assert sub["P3"].w == pytest.approx(4.0)

    def test_mirrored_swaps_c_and_d(self, three_workers):
        mirrored = three_workers.mirrored()
        for worker in three_workers:
            assert mirrored[worker.name].c == pytest.approx(worker.d)
            assert mirrored[worker.name].d == pytest.approx(worker.c)
            assert mirrored[worker.name].w == pytest.approx(worker.w)
        assert mirrored.z == pytest.approx(2.0)

    def test_scaled_platform(self, three_workers):
        faster = three_workers.scaled(comm=2.0, comp=5.0)
        assert faster["P1"].c == pytest.approx(0.5)
        assert faster["P1"].w == pytest.approx(1.0)

    def test_reordered_requires_full_permutation(self, three_workers):
        reordered = three_workers.reordered(["P2", "P1", "P3"])
        assert reordered.worker_names == ["P2", "P1", "P3"]
        with pytest.raises(PlatformError):
            three_workers.reordered(["P1", "P2"])

    def test_describe_and_as_dict(self, three_workers):
        text = three_workers.describe()
        assert "P1" in text and "c=1" in text
        data = three_workers.as_dict()
        assert data["P2"] == {"c": 2.0, "w": 3.0, "d": 1.0}


class TestFactories:
    def test_bus_platform_builds_identical_links(self):
        platform = bus_platform([1.0, 2.0, 3.0], c=0.7, d=0.2)
        assert platform.is_bus
        assert platform.worker_names == ["P1", "P2", "P3"]
        assert [w.w for w in platform] == pytest.approx([1.0, 2.0, 3.0])

    def test_bus_platform_custom_names(self):
        platform = bus_platform([1.0, 2.0], c=1, d=1, names=["X", "Y"])
        assert platform.worker_names == ["X", "Y"]
        with pytest.raises(PlatformError):
            bus_platform([1.0, 2.0], c=1, d=1, names=["X"])

    def test_homogeneous_platform(self):
        platform = homogeneous_platform(4, c=1.0, w=2.0, d=0.5)
        assert len(platform) == 4
        assert platform.is_bus
        assert platform.z == pytest.approx(0.5)
        with pytest.raises(PlatformError):
            homogeneous_platform(0, c=1, w=1, d=1)


class TestPlatformProperties:
    @given(platforms(max_size=6))
    def test_generated_platforms_have_constant_z(self, platform):
        assert platform.z == pytest.approx(0.5)

    @given(platforms(max_size=6))
    def test_ordered_by_c_is_sorted(self, platform):
        order = platform.ordered_by_c()
        costs = [platform[name].c for name in order]
        assert costs == sorted(costs)
        assert sorted(order) == sorted(platform.worker_names)

    @given(platforms(max_size=6))
    def test_mirror_is_involutive(self, platform):
        assert platform.mirrored().mirrored() == platform
