"""Workload-generalised scenario campaigns (bus sweeps, probe grids).

The load-bearing guarantee of the workload axis: the named non-matrix
spaces are the legacy hand-coded experiment paths, *re-expressed* — their
rows are pinned bit-identical to the closed forms of :mod:`repro.core.bus`
plus the scenario LP (bus spaces) and to the Figure 8/9 drivers (probe and
trace spaces) — and they inherit the streaming store's resume guarantee
unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bus import optimal_bus_throughput, two_port_bus_throughput
from repro.core.fifo import fifo_schedule_for_order, optimal_fifo_schedule
from repro.core.platform import bus_platform
from repro.exceptions import ExperimentError
from repro.scenarios.runner import aggregate_figure, run_campaign
from repro.scenarios.spec import Workload, named_space, spec_hash
from repro.workloads.sampling import sample_factors, workload_base_costs


class TestWorkloadBaseCosts:
    def test_bus_costs_match_the_theorem2_sweep_arithmetic(self):
        workload = Workload.of("bus", ratios=(8.0,), c=2.0, z=0.5)
        assert workload_base_costs(workload, 8.0) == (2.0, 8.0 * 2.0, 0.5 * 2.0)

    def test_matrix_costs_delegate_to_the_cached_base_costs(self):
        from repro.workloads.sampling import base_costs

        assert workload_base_costs(Workload.of("matrix"), 120) == base_costs(120)

    def test_probe_workloads_have_no_cost_tables(self):
        probe = Workload.of("probe", message_sizes_mb=(1.0,))
        with pytest.raises(ExperimentError, match="no cost tables"):
            workload_base_costs(probe, 1.0)


class TestBusParity:
    def test_theorem2_rows_bit_identical(self, tmp_path):
        """Every ``bus-theorem2`` row reproduces the legacy Theorem 2 sweep
        bit for bit: the reference time comes from the same LP value as
        ``fifo_schedule_for_order`` and the closed-form series are the
        :mod:`repro.core.bus` values on the same platform."""
        spec = named_space("bus-theorem2")
        progress = run_campaign(spec, tmp_path, chunk_size=1)
        assert progress.finished
        rows = progress.rows()
        assert len(rows) == spec.scenario_count
        c0 = spec.workload.param("c")
        z = spec.workload.param("z")
        for row in rows:
            ratio = row["size"]
            platform = bus_platform(
                [ratio * c0] * spec.family.workers, c=c0, d=z * c0
            )
            values = row["values"]
            lp = fifo_schedule_for_order(platform, platform.worker_names)
            assert values["INC_C time"] == spec.total_tasks / lp.throughput
            assert values["bus closed-form"] == optimal_bus_throughput(platform)
            assert values["bus two-port"] == two_port_bus_throughput(platform)
            assert values["bus port bound"] == 1.0 / (c0 + z * c0)
            # The Figure 7 construction inserts a gap exactly when the
            # two-port optimum exceeds the port bound.
            saturated = values["bus two-port"] > values["bus port bound"]
            assert values["bus saturated"] == (1.0 if saturated else 0.0)
            assert (values["bus gap"] > 0.0) == saturated

    def test_hetero_bus_rows_use_the_family_factors(self, tmp_path):
        """A heterogeneous bus campaign divides the per-unit computation
        cost by the drawn factors — same platforms as building
        ``bus_platform`` by hand from the sampled table."""
        spec = named_space("bus-hetero").derive(name="small", count=3)
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        table = sample_factors(spec.family)
        c0 = spec.workload.param("c")
        z = spec.workload.param("z")
        for row in progress.rows():
            ratio = row["size"]
            compute_costs = (ratio * c0) / table.comp[row["platform"]]
            platform = bus_platform(compute_costs.tolist(), c=c0, d=z * c0)
            lp = fifo_schedule_for_order(platform, platform.worker_names)
            assert row["values"]["INC_C time"] == spec.total_tasks / lp.throughput
            assert row["values"]["bus closed-form"] == optimal_bus_throughput(platform)
            assert "INC_C real" in row["values"]  # measured series present

    def test_two_port_bus_space_runs_without_closed_form_series(self, tmp_path):
        spec = named_space("bus-theorem2").derive(name="tp", one_port=False)
        progress = run_campaign(spec, tmp_path, chunk_size=1)
        for row in progress.rows():
            assert "INC_C lp" in row["values"]
            assert "bus closed-form" not in row["values"]


class TestProbeParity:
    def test_fig08_probe_rows_match_the_legacy_driver_bit_for_bit(self, tmp_path):
        from repro.experiments import fig08_linearity

        spec = named_space("fig08-probe")
        progress = run_campaign(spec, tmp_path, chunk_size=1)
        rows = progress.rows()
        assert len(rows) == spec.scenario_count
        legacy = fig08_linearity.run()
        for row in rows:
            megabytes = row["size"]
            for index, factor in enumerate(fig08_linearity.DEFAULT_COMM_FACTORS, start=1):
                assert row["values"][f"worker {index} transfer"] == legacy.value(
                    f"worker {index} (x{factor:g})", megabytes
                )

    def test_fig09_trace_space_matches_the_optimal_fifo_solve(self, tmp_path):
        from repro.experiments import fig09_trace
        from repro.workloads.matrices import MatrixProductWorkload
        from repro.workloads.platforms import PlatformFactors

        spec = named_space("fig09-trace")
        progress = run_campaign(spec, tmp_path, chunk_size=1)
        (row,) = progress.rows()
        factors = PlatformFactors(
            fig09_trace.DEFAULT_COMM_FACTORS, fig09_trace.DEFAULT_COMP_FACTORS
        )
        platform = factors.platform(MatrixProductWorkload(row["size"]))
        solution = optimal_fifo_schedule(platform)
        assert row["values"]["OPT_FIFO lp"] == 1.0
        assert row["values"]["OPT_FIFO time"] == (
            spec.total_tasks / solution.schedule.total_load
        )
        assert row["values"]["OPT_FIFO workers"] == len(solution.participants)

    def test_probe_family_factors_are_the_fig08_ramp(self):
        table = sample_factors(named_space("fig08-probe").family)
        assert table.comm.tolist() == [[1.0, 2.0, 3.0, 4.0, 5.0]]


class TestWorkloadResume:
    @pytest.mark.parametrize(
        "space, count, chunk_size",
        [("bus-hetero", 6, 2), ("fig08-probe", 4, 1)],
    )
    def test_interrupted_campaign_resumes_byte_identically(
        self, tmp_path, space, count, chunk_size
    ):
        spec = named_space(space).derive(name=f"{space}-small", count=count)
        full = run_campaign(spec, tmp_path / "full", chunk_size=chunk_size)
        assert full.finished

        partial = run_campaign(
            spec, tmp_path / "resumed", chunk_size=chunk_size, max_chunks=2
        )
        assert not partial.finished
        resumed = run_campaign(spec, tmp_path / "resumed", chunk_size=chunk_size)
        assert resumed.finished
        full_bytes = (tmp_path / "full" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        resumed_bytes = (
            tmp_path / "resumed" / spec_hash(spec) / "chunks.jsonl"
        ).read_bytes()
        assert full_bytes == resumed_bytes

    def test_jobs_do_not_change_bus_rows(self, tmp_path):
        spec = named_space("bus-hetero").derive(name="jobs-small", count=4)
        serial = run_campaign(spec, tmp_path / "serial", chunk_size=2, jobs=1)
        parallel = run_campaign(spec, tmp_path / "parallel", chunk_size=2, jobs=2)
        assert serial.rows() == parallel.rows()

    def test_float_grid_round_trips_through_npz_export(self, tmp_path):
        spec = named_space("fig08-probe")
        progress = run_campaign(spec, tmp_path / "store", chunk_size=1)
        summary = progress.state.export_npz(tmp_path / "probe.npz")
        rows = progress.rows()
        with np.load(tmp_path / "probe.npz") as archive:
            assert archive["size"].dtype == np.float64
            assert archive["size"].tolist() == [row["size"] for row in rows]
            assert archive["worker 1 transfer"].tolist() == [
                row["values"]["worker 1 transfer"] for row in rows
            ]
        assert summary["rows"] == len(rows)

    def test_aggregate_figure_renders_workload_series(self, tmp_path):
        spec = named_space("bus-theorem2")
        progress = run_campaign(spec, tmp_path, chunk_size=5)
        figure = aggregate_figure(spec, progress.aggregate())
        table = figure.format_table()
        assert "w/c ratio" in table
        assert "bus closed-form" in table
        probe = named_space("fig08-probe")
        probe_progress = run_campaign(probe, tmp_path / "probe", chunk_size=1)
        probe_table = aggregate_figure(probe, probe_progress.aggregate()).format_table()
        assert "megabytes" in probe_table
        assert "worker 1 transfer" in probe_table
