"""Import-hierarchy tests: the layering below ``repro.scenarios`` is strict.

The workload generators and the campaign engine consume the vectorised
sampler and the order-rule mirrors from their new homes
(:mod:`repro.workloads.sampling`, :mod:`repro.core.order_rules`); nothing
below the scenario subsystem may import from ``repro.scenarios``.  The
check runs in a subprocess so this test cannot be fooled by modules some
earlier test already imported.
"""

from __future__ import annotations

import subprocess
import sys


def test_lower_layers_do_not_import_scenarios():
    """core + workloads + experiments import (and run) without scenarios."""
    probe = (
        "import sys\n"
        "import repro.core.order_rules\n"
        "import repro.core.batch_twoport\n"
        "import repro.obs\n"
        "import repro.workloads.sampling\n"
        "import repro.experiments.campaign_engine\n"
        "from repro.workloads.platforms import campaign_factors\n"
        "factors = campaign_factors('hetero-star', 2, size=3, seed=0)\n"
        "assert len(factors) == 2\n"
        "polluted = sorted(m for m in sys.modules if m.startswith('repro.scenarios'))\n"
        "assert not polluted, f'lower layers pulled in {polluted}'\n"
    )
    subprocess.run([sys.executable, "-c", probe], check=True)


def test_sampler_facade_re_exports_every_primitive():
    """The historical ``repro.scenarios.sampler`` names keep working and
    are the same objects as their new homes."""
    from repro.core import order_rules
    from repro.scenarios import sampler
    from repro.workloads import sampling

    for name in ("ORDER_RULES", "TWO_PORT_ORDER_RULES", "TWO_PORT_REVERSED_RETURN",
                 "lifo_chain_values", "sorted_indices", "worker_names"):
        assert getattr(sampler, name) is getattr(order_rules, name)
    for name in ("FactorTable", "sample_factors", "base_costs", "cost_table",
                 "family_cost_tables", "Distribution", "PlatformFamily",
                 "UNIT", "PAPER_UNIFORM", "Workload", "MATRIX_WORKLOAD",
                 "workload_base_costs"):
        assert getattr(sampler, name) is getattr(sampling, name)

    from repro.scenarios import spec as scenario_spec

    assert scenario_spec.Distribution is sampling.Distribution
    assert scenario_spec.PlatformFamily is sampling.PlatformFamily
    assert scenario_spec.Workload is sampling.Workload
