"""Tests for the optimal FIFO algorithm (:mod:`repro.core.fifo`, Theorem 1)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.bruteforce import best_fifo_by_enumeration
from repro.core.fifo import fifo_schedule_for_order, optimal_fifo_order, optimal_fifo_schedule
from repro.core.platform import StarPlatform, Worker


class TestOptimalOrder:
    def test_order_is_non_decreasing_c_when_z_below_one(self, three_workers):
        assert optimal_fifo_order(three_workers) == ["P1", "P3", "P2"]

    def test_order_is_non_increasing_c_when_z_above_one(self, z_greater_one):
        assert optimal_fifo_order(z_greater_one) == ["P2", "P3", "P1"]

    def test_order_falls_back_when_z_not_constant(self):
        platform = StarPlatform(
            [Worker("A", c=2.0, w=1.0, d=0.2), Worker("B", c=1.0, w=1.0, d=0.9)]
        )
        assert platform.z is None
        assert optimal_fifo_order(platform) == ["B", "A"]

    def test_order_when_z_equals_one(self):
        platform = StarPlatform(
            [Worker("A", c=2.0, w=1.0, d=2.0), Worker("B", c=1.0, w=1.0, d=1.0)]
        )
        assert optimal_fifo_order(platform) == ["B", "A"]


class TestOptimalSchedule:
    def test_matches_brute_force_small_platform(self, three_workers):
        optimal = optimal_fifo_schedule(three_workers)
        brute = best_fifo_by_enumeration(three_workers)
        assert optimal.throughput == pytest.approx(brute.throughput, rel=1e-7)

    def test_matches_brute_force_four_workers(self, four_workers):
        optimal = optimal_fifo_schedule(four_workers)
        brute = best_fifo_by_enumeration(four_workers)
        assert optimal.throughput == pytest.approx(brute.throughput, rel=1e-7)

    def test_matches_brute_force_z_above_one(self, z_greater_one):
        optimal = optimal_fifo_schedule(z_greater_one)
        brute = best_fifo_by_enumeration(z_greater_one)
        assert optimal.throughput == pytest.approx(brute.throughput, rel=1e-7)

    def test_schedule_is_fifo_and_feasible(self, four_workers):
        solution = optimal_fifo_schedule(four_workers)
        assert solution.schedule.is_fifo
        solution.schedule.verify()

    def test_beats_or_matches_every_other_fifo_order(self, four_workers):
        best = optimal_fifo_schedule(four_workers).throughput
        for order in itertools.permutations(four_workers.worker_names):
            other = fifo_schedule_for_order(four_workers, order).throughput
            assert best >= other - 1e-9

    def test_resource_selection_can_drop_workers(self):
        """A worker with terrible communication is left out of the optimum."""
        platform = StarPlatform(
            [
                Worker("fast1", c=0.2, w=1.0, d=0.1),
                Worker("fast2", c=0.25, w=1.0, d=0.125),
                Worker("slow", c=50.0, w=0.5, d=25.0),
            ]
        )
        solution = optimal_fifo_schedule(platform)
        assert "slow" not in solution.participants
        assert len(solution.participants) >= 1
        # the candidate set still lists every worker
        assert set(solution.loads) == {"fast1", "fast2", "slow"}
        assert solution.loads["slow"] == pytest.approx(0.0, abs=1e-9)

    def test_all_workers_enrolled_when_communication_is_cheap(self):
        platform = StarPlatform(
            [
                Worker("A", c=0.01, w=5.0, d=0.005),
                Worker("B", c=0.02, w=4.0, d=0.01),
                Worker("C", c=0.03, w=6.0, d=0.015),
            ]
        )
        solution = optimal_fifo_schedule(platform)
        assert solution.participants == ["A", "B", "C"]

    def test_deadline_scales_loads_linearly(self, three_workers):
        unit = optimal_fifo_schedule(three_workers, deadline=1.0)
        scaled = optimal_fifo_schedule(three_workers, deadline=3.0)
        assert scaled.throughput == pytest.approx(unit.throughput, rel=1e-7)
        assert scaled.schedule.total_load == pytest.approx(3.0 * unit.schedule.total_load, rel=1e-7)

    def test_exact_solver_backend(self, three_workers):
        scipy_solution = optimal_fifo_schedule(three_workers, solver="scipy")
        exact_solution = optimal_fifo_schedule(three_workers, solver="exact")
        assert scipy_solution.throughput == pytest.approx(exact_solution.throughput, rel=1e-9)

    def test_solution_accessors(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        assert solution.order == ("P1", "P3", "P2")
        assert set(solution.idle_times()) == set(three_workers.worker_names)
        assert solution.scenario.total_load == pytest.approx(solution.schedule.total_load)


class TestFixedOrderFifo:
    def test_fixed_order_respects_requested_order(self, three_workers):
        solution = fifo_schedule_for_order(three_workers, ["P2", "P1", "P3"])
        assert solution.order == ("P2", "P1", "P3")
        assert solution.schedule.sigma1 == ("P2", "P1", "P3")
        assert solution.schedule.is_fifo

    def test_two_port_flag(self, three_workers):
        one_port = fifo_schedule_for_order(three_workers, three_workers.ordered_by_c())
        two_port = fifo_schedule_for_order(
            three_workers, three_workers.ordered_by_c(), one_port=False
        )
        assert two_port.throughput >= one_port.throughput - 1e-9
