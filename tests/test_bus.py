"""Tests for the bus closed forms (:mod:`repro.core.bus`, Theorem 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from conftest import bus_platforms
from repro.core.bus import (
    optimal_bus_fifo_schedule,
    optimal_bus_throughput,
    two_port_bus_loads,
    two_port_bus_throughput,
    u_sequence,
)
from repro.core.fifo import fifo_schedule_for_order
from repro.core.platform import bus_platform
from repro.exceptions import PlatformError


class TestUSequence:
    def test_single_worker(self):
        platform = bus_platform([2.0], c=1.0, d=0.5)
        # u1 = 1/(d+w) * (d+w)/(c+w) = 1/(c+w)
        assert u_sequence(platform) == [pytest.approx(1.0 / 3.0)]

    def test_recurrence(self, bus_three):
        c, d = bus_three.bus_costs
        names = bus_three.worker_names
        u = u_sequence(bus_three)
        for i in range(1, len(u)):
            w_prev = bus_three[names[i - 1]].w
            w_cur = bus_three[names[i]].w
            assert u[i] / u[i - 1] == pytest.approx((d + w_prev) / (c + w_cur))

    def test_requires_bus(self, three_workers):
        with pytest.raises(PlatformError):
            u_sequence(three_workers)


class TestTwoPortClosedForm:
    def test_loads_proportional_to_u(self, bus_three):
        u = u_sequence(bus_three)
        loads = two_port_bus_loads(bus_three)
        names = bus_three.worker_names
        ratios = [loads[name] / value for name, value in zip(names, u)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_matches_two_port_lp(self, bus_three):
        closed = two_port_bus_throughput(bus_three)
        lp = fifo_schedule_for_order(
            bus_three, bus_three.worker_names, one_port=False
        ).throughput
        assert closed == pytest.approx(lp, rel=1e-7)

    def test_loads_satisfy_tight_constraints(self, bus_three):
        """Every per-worker constraint is an equality in the two-port optimum."""
        c, d = bus_three.bus_costs
        names = bus_three.worker_names
        loads = two_port_bus_loads(bus_three)
        for i, name in enumerate(names):
            prefix = sum(loads[m] * c for m in names[: i + 1])
            suffix = sum(loads[m] * d for m in names[i:])
            total = prefix + loads[name] * bus_three[name].w + suffix
            assert total == pytest.approx(1.0)


class TestTheorem2:
    def test_closed_form_matches_one_port_lp(self, bus_three):
        closed = optimal_bus_throughput(bus_three)
        lp = fifo_schedule_for_order(bus_three, bus_three.worker_names).throughput
        assert closed == pytest.approx(lp, rel=1e-7)

    def test_closed_form_matches_lp_homogeneous(self, homogeneous_five):
        closed = optimal_bus_throughput(homogeneous_five)
        lp = fifo_schedule_for_order(
            homogeneous_five, homogeneous_five.worker_names
        ).throughput
        assert closed == pytest.approx(lp, rel=1e-7)

    def test_saturated_regime_hits_port_bound(self):
        """With abundant compute capacity the port bound 1/(c+d) is reached."""
        platform = bus_platform([0.1] * 6, c=1.0, d=0.5)
        assert optimal_bus_throughput(platform) == pytest.approx(1.0 / 1.5)

    def test_compute_bound_regime_below_port_bound(self):
        platform = bus_platform([100.0, 120.0], c=1.0, d=0.5)
        rho = optimal_bus_throughput(platform)
        assert rho < 1.0 / 1.5
        assert rho == pytest.approx(two_port_bus_throughput(platform))

    def test_ordering_does_not_change_throughput(self, bus_three):
        base = optimal_bus_throughput(bus_three)
        for order in (["P3", "P1", "P2"], ["P2", "P3", "P1"]):
            lp = fifo_schedule_for_order(bus_three, order).throughput
            assert lp == pytest.approx(base, rel=1e-7)

    def test_requires_bus(self, three_workers):
        with pytest.raises(PlatformError):
            optimal_bus_throughput(three_workers)


class TestConstructiveSchedule:
    def test_schedule_achieves_closed_form(self, bus_three):
        solution = optimal_bus_fifo_schedule(bus_three)
        assert solution.throughput == pytest.approx(optimal_bus_throughput(bus_three), rel=1e-9)
        solution.schedule.verify()
        assert solution.schedule.is_fifo

    def test_all_workers_enrolled(self, bus_three):
        solution = optimal_bus_fifo_schedule(bus_three)
        assert solution.schedule.participants == bus_three.worker_names

    def test_saturated_case_has_gap(self):
        platform = bus_platform([0.1] * 6, c=1.0, d=0.5)
        solution = optimal_bus_fifo_schedule(platform)
        assert solution.saturated
        assert solution.gap > 0
        solution.schedule.verify()
        # every worker idles by the same amount in the transformed schedule
        idles = [
            solution.schedule.idle_times()[name] for name in platform.worker_names
        ]
        assert max(idles) - min(idles) == pytest.approx(0.0, abs=1e-9)

    def test_unsaturated_case_has_no_gap(self):
        platform = bus_platform([100.0, 120.0], c=1.0, d=0.5)
        solution = optimal_bus_fifo_schedule(platform)
        assert not solution.saturated
        assert solution.gap == pytest.approx(0.0)
        assert solution.two_port_throughput == pytest.approx(solution.throughput)


class TestBusProperties:
    @settings(max_examples=30, deadline=None)
    @given(bus_platforms(max_size=6))
    def test_closed_form_equals_lp_on_random_buses(self, platform):
        closed = optimal_bus_throughput(platform)
        lp = fifo_schedule_for_order(platform, platform.worker_names).throughput
        assert closed == pytest.approx(lp, rel=1e-6, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(bus_platforms(max_size=6))
    def test_constructed_schedule_is_feasible_and_optimal(self, platform):
        solution = optimal_bus_fifo_schedule(platform)
        solution.schedule.verify()
        assert solution.throughput == pytest.approx(optimal_bus_throughput(platform), rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(bus_platforms(max_size=6))
    def test_one_port_never_beats_two_port(self, platform):
        assert optimal_bus_throughput(platform) <= two_port_bus_throughput(platform) + 1e-12
