"""Tests for the message-passing runtime and the matrix application."""

from __future__ import annotations

import pytest

from repro.core.fifo import optimal_fifo_schedule
from repro.core.heuristics import inc_c
from repro.exceptions import SimulationError
from repro.runtime.api import MASTER_RANK, NodeContext, SimulatedRuntime
from repro.runtime.matrix_app import campaign_from_schedule, run_matrix_campaign
from repro.simulation.executor import measure_heuristic
from repro.simulation.noise import UniformJitter
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import PlatformFactors


def _two_node_runtime(one_port: bool = True, noise=None) -> SimulatedRuntime:
    return SimulatedRuntime(
        bandwidths={MASTER_RANK: 10.0, 1: 10.0, 2: 5.0},
        flop_rates={MASTER_RANK: 100.0, 1: 100.0, 2: 50.0},
        one_port=one_port,
        noise=noise,
    )


class TestSimulatedRuntime:
    def test_blocking_send_recv_pair(self):
        runtime = _two_node_runtime()
        log = []

        def master(ctx: NodeContext):
            yield ctx.send(1, 100.0, tag=7, payload="hello")
            log.append(("master-done", ctx.now))

        def worker(ctx: NodeContext):
            message = yield ctx.recv(MASTER_RANK, tag=7)
            log.append(("worker-got", message.payload, ctx.now))

        runtime.add_node(MASTER_RANK, master)
        runtime.add_node(1, worker)
        makespan = runtime.run()
        # 100 bytes over the worker link at 10 B/s = 10 s
        assert makespan == pytest.approx(10.0)
        assert ("worker-got", "hello", 10.0) in log

    def test_transfer_speed_uses_worker_link(self):
        runtime = _two_node_runtime()

        def master(ctx: NodeContext):
            yield ctx.send(2, 100.0)

        def worker(ctx: NodeContext):
            yield ctx.recv(MASTER_RANK)

        runtime.add_node(MASTER_RANK, master)
        runtime.add_node(2, worker)
        assert runtime.run() == pytest.approx(20.0)  # rank 2 link is 5 B/s

    def test_one_port_serialises_master_transfers(self):
        runtime = _two_node_runtime(one_port=True)

        def master(ctx: NodeContext):
            first = ctx.send(1, 100.0)
            second = ctx.send(2, 100.0)
            yield first
            yield second

        def worker(rank):
            def program(ctx: NodeContext):
                yield ctx.recv(MASTER_RANK)

            return program

        runtime.add_node(MASTER_RANK, master)
        runtime.add_node(1, worker(1))
        runtime.add_node(2, worker(2))
        assert runtime.run() == pytest.approx(30.0)  # 10 s then 20 s, serialised
        assert runtime.trace.overlapping_pairs("master") == []

    def test_compute_duration(self):
        runtime = _two_node_runtime()

        def worker(ctx: NodeContext):
            yield ctx.compute(500.0)

        runtime.add_node(2, worker)
        assert runtime.run() == pytest.approx(10.0)  # 500 flops at 50 flop/s

    def test_deadlock_detection(self):
        runtime = _two_node_runtime()

        def master(ctx: NodeContext):
            yield ctx.recv(1)  # never sent

        runtime.add_node(MASTER_RANK, master)
        with pytest.raises(SimulationError) as excinfo:
            runtime.run()
        assert "deadlock" in str(excinfo.value)

    def test_validation_errors(self):
        with pytest.raises(SimulationError):
            SimulatedRuntime(bandwidths={0: -1.0}, flop_rates={0: 1.0})
        with pytest.raises(SimulationError):
            SimulatedRuntime(bandwidths={0: 1.0}, flop_rates={0: 0.0})
        runtime = _two_node_runtime()
        with pytest.raises(SimulationError):
            runtime.run()  # no programs registered
        runtime.add_node(1, lambda ctx: iter(()))
        with pytest.raises(SimulationError):
            runtime.add_node(1, lambda ctx: iter(()))

    def test_sleep_and_now(self):
        runtime = _two_node_runtime()
        times = []

        def worker(ctx: NodeContext):
            yield ctx.sleep(3.0)
            times.append(ctx.now)

        runtime.add_node(1, worker)
        runtime.run()
        assert times == [pytest.approx(3.0)]


class TestMatrixApplication:
    def test_campaign_simple_counts(self):
        workload = MatrixProductWorkload(50, bandwidth=1e6, flop_rate=1e8)
        result = run_matrix_campaign(
            workload,
            comm_factors=[1.0, 2.0],
            comp_factors=[1.0, 1.0],
            tasks=[3, 5],
        )
        assert result.total_tasks == 8
        assert result.tasks == {"P1": 3, "P2": 5}
        assert result.makespan > 0
        assert result.trace.overlapping_pairs("master") == []

    def test_zero_task_workers_are_skipped(self):
        workload = MatrixProductWorkload(50)
        result = run_matrix_campaign(
            workload, comm_factors=[1.0, 1.0], comp_factors=[1.0, 1.0], tasks=[4, 0]
        )
        assert result.tasks["P2"] == 0
        assert result.total_tasks == 4

    def test_input_validation(self):
        workload = MatrixProductWorkload(50)
        with pytest.raises(SimulationError):
            run_matrix_campaign(workload, [1.0], [1.0, 2.0], [1])
        with pytest.raises(SimulationError):
            run_matrix_campaign(workload, [1.0], [1.0], [-1])
        with pytest.raises(SimulationError):
            run_matrix_campaign(workload, [1.0, 1.0], [1.0, 1.0], [1, 1], sigma1=[0, 0])

    def test_matches_executor_path_end_to_end(self):
        """The MPI-style application and the schedule executor must agree."""
        workload = MatrixProductWorkload(150)
        factors = PlatformFactors((4.0, 2.0, 1.0), (3.0, 1.0, 2.0), label="cross-check")
        platform = factors.platform(workload)
        heuristic = inc_c(platform)
        total = 400

        executor_report = measure_heuristic(heuristic, total)
        campaign = campaign_from_schedule(
            workload, factors.comm, factors.comp, heuristic.schedule, total
        )
        assert campaign.total_tasks == total
        assert campaign.makespan == pytest.approx(executor_report.measured_makespan, rel=1e-9)

    def test_campaign_from_schedule_includes_idle_workers(self):
        workload = MatrixProductWorkload(400)
        factors = PlatformFactors((10.0, 8.0, 1.0), (9.0, 9.0, 1.0), label="selective")
        platform = factors.platform(workload)
        solution = optimal_fifo_schedule(platform)
        campaign = campaign_from_schedule(
            workload, factors.comm, factors.comp, solution.schedule, 100
        )
        assert campaign.total_tasks == 100
        # the campaign covers every worker even if some got zero tasks
        assert set(campaign.tasks) == {"P1", "P2", "P3"}

    def test_campaign_with_noise_is_slower(self):
        workload = MatrixProductWorkload(100)
        quiet = run_matrix_campaign(workload, [1.0, 1.0], [1.0, 1.0], [10, 10])
        noisy = run_matrix_campaign(
            workload,
            [1.0, 1.0],
            [1.0, 1.0],
            [10, 10],
            noise=UniformJitter(amplitude=0.5, seed=2),
        )
        assert noisy.makespan >= quiet.makespan

    def test_campaign_rejects_foreign_schedule(self):
        workload = MatrixProductWorkload(100)
        factors = PlatformFactors((1.0, 1.0), (1.0, 1.0), label="small")
        platform = factors.platform(workload)
        other = optimal_fifo_schedule(platform).schedule
        with pytest.raises(SimulationError):
            campaign_from_schedule(workload, (1.0,), (1.0,), other, 10)
