"""HTTP-tier tests for the query service (:mod:`repro.api.server`).

Run a real ``QueryHTTPServer`` on a loopback port and talk to it with
``urllib`` — the acceptance bar is bit-identity *through the wire*: the
JSON body of ``POST /v1/query`` must decode to floats equal to the
scalar reference path, both port models.  Also pinned: concurrent mixed
queries, error statuses, the graceful drain, and request telemetry.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import DEFAULT_HEURISTICS, Query, QueryService
from repro.api.server import make_server, run_server
from repro.core.fifo import optimal_fifo_schedule
from repro.core.heuristics import compare_heuristics
from repro.core.twoport import optimal_two_port_fifo_schedule
from repro.obs import Telemetry, activate
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import participation_platform


@pytest.fixture()
def server():
    """A live server on a free loopback port; drained and closed on exit."""
    instance = make_server(QueryService(window=0.002))
    thread = threading.Thread(target=instance.serve_forever, kwargs={"poll_interval": 0.05})
    thread.start()
    try:
        yield instance
    finally:
        instance.shutdown()
        thread.join()
        instance.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as response:
        return response.status, json.loads(response.read())


def _platform(x=3.0):
    return participation_platform(x, MatrixProductWorkload(400))


class TestEndpoints:
    def test_query_bit_identical_to_scalar_reference(self, server):
        platform = _platform()
        status, body = _post(server, "/v1/query", Query.build(platform).as_dict())
        assert status == 200
        reference = optimal_fifo_schedule(platform)
        opt = body["results"]["OPT_FIFO"]
        assert opt["throughput"] == reference.throughput
        assert opt["loads"] == reference.loads
        comparison = compare_heuristics(platform, DEFAULT_HEURISTICS)
        assert body["best"] == max(comparison, key=lambda name: comparison[name].throughput)
        for name, result in comparison.items():
            assert body["results"][name]["throughput"] == result.throughput
            assert body["results"][name]["loads"] == result.loads

    def test_two_port_query_over_the_wire(self, server):
        platform = _platform()
        payload = Query.build(platform, one_port=False).as_dict()
        status, body = _post(server, "/v1/query", payload)
        assert status == 200
        assert not body["one_port"]
        reference = optimal_two_port_fifo_schedule(platform)
        assert body["results"]["OPT_FIFO"]["throughput"] == reference.throughput
        assert body["results"]["OPT_FIFO"]["loads"] == reference.loads

    def test_batch_mixed_port_models(self, server):
        platform = _platform()
        queries = [
            Query.build(platform).as_dict(),
            Query.build(platform, one_port=False).as_dict(),
            Query.build(platform).as_dict(),  # duplicate: served from cache
        ]
        status, body = _post(server, "/v1/query/batch", {"queries": queries})
        assert status == 200
        answers = body["answers"]
        assert len(answers) == 3
        assert answers[0]["results"] == answers[2]["results"]
        assert answers[0]["one_port"] and not answers[1]["one_port"]

    def test_repeat_query_is_a_cache_hit(self, server):
        payload = Query.build(_platform()).as_dict()
        _, cold = _post(server, "/v1/query", payload)
        _, warm = _post(server, "/v1/query", payload)
        assert not cold["cached"]
        assert warm["cached"]
        assert warm["results"] == cold["results"]
        assert warm["key"] == cold["key"]

    def test_healthz(self, server):
        _post(server, "/v1/query", Query.build(_platform()).as_dict())
        status, body = _get(server, "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queries"] == 1
        assert body["uptime_seconds"] >= 0


class TestErrorStatuses:
    def _status_of(self, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_invalid_json_is_400(self, server):
        request = urllib.request.Request(
            _url(server, "/v1/query"), data=b"{not json", method="POST"
        )
        code, body = self._status_of(lambda: urllib.request.urlopen(request, timeout=10))
        assert code == 400
        assert "invalid JSON" in body["error"]

    def test_schema_violation_is_400(self, server):
        code, body = self._status_of(lambda: _post(server, "/v1/query", {"bogus": 1}))
        assert code == 400
        assert "unknown request fields" in body["error"]

    def test_bad_costs_are_400(self, server):
        payload = {"platform": {"P1": {"c": "fast", "w": 1, "d": 1}}}
        code, body = self._status_of(lambda: _post(server, "/v1/query", payload))
        assert code == 400
        assert "numeric" in body["error"]

    def test_unknown_path_is_404(self, server):
        code, body = self._status_of(lambda: _get(server, "/v1/nope"))
        assert code == 404
        assert "unknown path" in body["error"]

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(_url(server, "/v1/query"), data=b"", method="POST")
        code, body = self._status_of(lambda: urllib.request.urlopen(request, timeout=10))
        assert code == 400
        assert "JSON body" in body["error"]

    def test_malformed_batch_is_400(self, server):
        code, body = self._status_of(
            lambda: _post(server, "/v1/query/batch", {"queries": "nope"})
        )
        assert code == 400
        assert "list" in body["error"]


class TestConcurrency:
    def test_concurrent_mixed_queries_bit_identical(self, server):
        platforms = [_platform(x) for x in (0.5, 1.0, 2.0, 3.0, 6.0)]
        payloads = [Query.build(p).as_dict() for p in platforms]
        payloads += [Query.build(p, one_port=False).as_dict() for p in platforms]

        with ThreadPoolExecutor(max_workers=8) as pool:
            bodies = list(pool.map(lambda pl: _post(server, "/v1/query", pl)[1], payloads))

        for platform, body in zip(platforms, bodies[: len(platforms)]):
            reference = optimal_fifo_schedule(platform)
            assert body["results"]["OPT_FIFO"]["throughput"] == reference.throughput
            assert body["results"]["OPT_FIFO"]["loads"] == reference.loads
        for platform, body in zip(platforms, bodies[len(platforms):]):
            reference = optimal_two_port_fifo_schedule(platform)
            assert body["results"]["OPT_FIFO"]["throughput"] == reference.throughput
            assert body["results"]["OPT_FIFO"]["loads"] == reference.loads


class TestDrain:
    def test_run_server_stop_event_drains_and_returns_zero(self, capsys):
        service = QueryService()
        stop = threading.Event()
        codes = []
        runner = threading.Thread(
            target=lambda: codes.append(
                run_server("127.0.0.1", 0, service=service, stop=stop)
            )
        )
        runner.start()
        try:
            # Scrape the printed port (what the CI smoke does with a pipe).
            for _ in range(200):
                printed = capsys.readouterr().out
                if "serving on http://" in printed:
                    break
                threading.Event().wait(0.01)
            port = int(printed.split("http://127.0.0.1:")[1].split(" ")[0])
            payload = Query.build(_platform()).as_dict()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/query",
                data=json.dumps(payload).encode("utf-8"),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
        finally:
            stop.set()
            runner.join(timeout=10)
        assert not runner.is_alive()
        assert codes == [0]
        out = capsys.readouterr().out
        assert "draining in-flight requests" in out
        assert "served 1 queries (0 cache hits, 1 solved); bye" in out


class TestRequestTelemetry:
    def test_spans_counters_and_latency_histogram(self, tmp_path):
        telemetry = Telemetry(tmp_path / "telemetry", owner="test", mode="on")
        with activate(telemetry):
            instance = make_server(QueryService())
            thread = threading.Thread(target=instance.serve_forever,
                                      kwargs={"poll_interval": 0.05})
            thread.start()
            try:
                _post(instance, "/v1/query", Query.build(_platform()).as_dict())
                _get(instance, "/v1/healthz")
                with pytest.raises(urllib.error.HTTPError):
                    _post(instance, "/v1/query", {"bogus": 1})
            finally:
                instance.shutdown()
                thread.join()
                instance.server_close()
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"]["api.http.200"] == 2
        assert snapshot["counters"]["api.http.400"] == 1
        assert snapshot["histograms"]["api.request.seconds"]["count"] == 3
