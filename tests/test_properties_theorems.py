"""Property-based tests of the paper's structural results.

These tests sample random platforms (hypothesis) and check the paper's
theorems and the relations between the different optimisation paths:

* Theorem 1 — the non-decreasing-``c`` FIFO order dominates random orders;
* Theorem 2 — the bus closed form equals the LP optimum (covered in
  ``test_bus.py``; here we check the FIFO/LIFO/two-port orderings instead);
* the optimal FIFO and LIFO schedules the library constructs are always
  feasible under the one-port model;
* mirroring (the ``z > 1`` device) preserves the optimal FIFO throughput;
* hierarchy: one-port <= two-port for every fixed scenario, and every
  one-port LIFO throughput is also achievable as a two-port schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from conftest import platforms
from repro.core.fifo import fifo_schedule_for_order, optimal_fifo_order, optimal_fifo_schedule
from repro.core.lifo import optimal_lifo_schedule
from repro.core.linear_program import solve_scenario
from repro.core.twoport import optimal_two_port_fifo_schedule


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTheorem1Ordering:
    @_SETTINGS
    @given(platforms(min_size=2, max_size=4, z=0.5))
    def test_inc_c_dominates_reversed_and_platform_order(self, platform):
        best = optimal_fifo_schedule(platform).throughput
        reversed_order = list(reversed(optimal_fifo_order(platform)))
        assert best >= fifo_schedule_for_order(platform, reversed_order).throughput - 1e-7
        assert (
            best
            >= fifo_schedule_for_order(platform, platform.worker_names).throughput - 1e-7
        )

    @_SETTINGS
    @given(platforms(min_size=2, max_size=4, z=2.0))
    def test_mirror_rule_when_z_above_one(self, platform):
        """For z > 1 the optimal order is non-increasing c (mirror argument)."""
        best = optimal_fifo_schedule(platform).throughput
        increasing = platform.ordered_by_c(descending=False)
        assert best >= fifo_schedule_for_order(platform, increasing).throughput - 1e-7

    @_SETTINGS
    @given(platforms(min_size=1, max_size=4, z=0.5))
    def test_mirrored_platform_has_same_fifo_throughput(self, platform):
        """Reading a FIFO schedule backwards swaps c and d but keeps its value."""
        direct = optimal_fifo_schedule(platform).throughput
        mirrored = optimal_fifo_schedule(platform.mirrored()).throughput
        assert direct == pytest.approx(mirrored, rel=1e-6)


class TestFeasibilityProperties:
    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=0.5))
    def test_optimal_fifo_schedule_is_feasible(self, platform):
        solution = optimal_fifo_schedule(platform)
        solution.schedule.verify()
        assert solution.schedule.makespan() <= 1.0 + 1e-6

    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=0.5))
    def test_optimal_lifo_schedule_is_feasible(self, platform):
        solution = optimal_lifo_schedule(platform)
        solution.schedule.verify()
        assert solution.schedule.makespan() <= 1.0 + 1e-6

    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=None))
    def test_feasibility_without_constant_ratio(self, platform):
        """Even without d = z*c the LP schedules must be feasible."""
        solution = optimal_fifo_schedule(platform)
        solution.schedule.verify()


class TestModelHierarchy:
    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=0.5))
    def test_two_port_dominates_one_port(self, platform):
        one_port = optimal_fifo_schedule(platform).throughput
        two_port = optimal_two_port_fifo_schedule(platform).throughput
        assert two_port >= one_port - 1e-9

    @_SETTINGS
    @given(platforms(min_size=1, max_size=5, z=0.5))
    def test_fifo_resource_selection_never_hurts(self, platform):
        """Adding candidates can only help: the optimum over all workers is at
        least the optimum over the first worker alone."""
        full = optimal_fifo_schedule(platform).throughput
        first = platform.ordered_by_c()[0]
        single = solve_scenario(platform, [first], [first]).throughput
        assert full >= single - 1e-9

    @_SETTINGS
    @given(platforms(min_size=2, max_size=4, z=0.5))
    def test_lifo_one_port_equals_lifo_two_port(self, platform):
        """LIFO never interleaves sends and receives, so both models agree."""
        order = platform.ordered_by_c()
        one_port = solve_scenario(platform, order, list(reversed(order)), one_port=True)
        two_port = solve_scenario(platform, order, list(reversed(order)), one_port=False)
        assert one_port.throughput == pytest.approx(two_port.throughput, rel=1e-6)


class TestSolverAgreementOnScenarios:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(platforms(min_size=1, max_size=4, z=0.5))
    def test_exact_simplex_matches_highs_on_fifo_scenarios(self, platform):
        order = optimal_fifo_order(platform)
        scipy_value = solve_scenario(platform, order, order, solver="scipy").throughput
        exact_value = solve_scenario(platform, order, order, solver="exact").throughput
        assert scipy_value == pytest.approx(exact_value, rel=1e-6, abs=1e-9)
