"""Tests for the scenario linear programs (:mod:`repro.core.linear_program`)."""

from __future__ import annotations

import pytest

from repro.core.linear_program import (
    build_scenario_program,
    idle_times_from_result,
    solve_fifo_scenario,
    solve_lifo_scenario,
    solve_scenario,
)
from repro.core.platform import StarPlatform, Worker
from repro.exceptions import ScheduleError


@pytest.fixture
def single_worker_platform() -> StarPlatform:
    return StarPlatform([Worker("P1", c=1.0, w=2.0, d=0.5)])


class TestProgramConstruction:
    def test_constraint_counts_fifo(self, three_workers):
        program = build_scenario_program(three_workers, three_workers.worker_names)
        # q per-worker constraints + the one-port constraint
        assert program.num_constraints == 4
        assert program.num_variables == 3

    def test_idle_variables_add_columns(self, three_workers):
        program = build_scenario_program(
            three_workers, three_workers.worker_names, include_idle_variables=True
        )
        assert program.num_variables == 6

    def test_two_port_drops_coupling_constraint(self, three_workers):
        program = build_scenario_program(
            three_workers, three_workers.worker_names, one_port=False
        )
        assert program.num_constraints == 3
        assert all("one-port" not in c.name for c in program.constraints)

    def test_fifo_constraint_coefficients(self, single_worker_platform):
        program = build_scenario_program(single_worker_platform, ["P1"])
        deadline_row = next(c for c in program.constraints if c.name == "deadline[P1]")
        # c + w + d of the single worker
        assert deadline_row.coefficients["alpha[P1]"] == pytest.approx(3.5)
        one_port_row = next(c for c in program.constraints if c.name == "one-port")
        assert one_port_row.coefficients["alpha[P1]"] == pytest.approx(1.5)

    def test_general_permutation_pair_coefficients(self, three_workers):
        # sigma1 = (P1, P2), sigma2 = (P2, P1): P1's constraint has no d term
        # for P2 (P2 returns before P1) but P2's constraint carries both d's.
        program = build_scenario_program(three_workers, ["P1", "P2"], ["P2", "P1"])
        row_p1 = next(c for c in program.constraints if c.name == "deadline[P1]")
        row_p2 = next(c for c in program.constraints if c.name == "deadline[P2]")
        p1, p2 = three_workers["P1"], three_workers["P2"]
        assert row_p1.coefficients["alpha[P1]"] == pytest.approx(p1.c + p1.w + p1.d)
        assert "alpha[P2]" not in row_p1.coefficients or row_p1.coefficients[
            "alpha[P2]"
        ] == pytest.approx(0.0)
        assert row_p2.coefficients["alpha[P1]"] == pytest.approx(p1.c + p1.d)
        assert row_p2.coefficients["alpha[P2]"] == pytest.approx(p2.c + p2.w + p2.d)

    def test_validation_errors(self, three_workers):
        with pytest.raises(ScheduleError):
            build_scenario_program(three_workers, [])
        with pytest.raises(ScheduleError):
            build_scenario_program(three_workers, ["P1", "P1"])
        with pytest.raises(ScheduleError):
            build_scenario_program(three_workers, ["P1"], ["P2"])
        with pytest.raises(ScheduleError):
            build_scenario_program(three_workers, ["nope"])
        with pytest.raises(ScheduleError):
            build_scenario_program(three_workers, ["P1"], deadline=0.0)


class TestSingleWorkerClosedForm:
    def test_fifo_single_worker(self, single_worker_platform):
        # One worker: alpha (c + w + d) = T, so alpha = 1 / 3.5.
        solution = solve_fifo_scenario(single_worker_platform, ["P1"])
        assert solution.throughput == pytest.approx(1.0 / 3.5)
        assert solution.participants == ["P1"]
        assert solution.total_load == pytest.approx(1.0 / 3.5)

    def test_deadline_scaling_is_linear(self, single_worker_platform):
        base = solve_fifo_scenario(single_worker_platform, ["P1"], deadline=1.0)
        double = solve_fifo_scenario(single_worker_platform, ["P1"], deadline=2.0)
        assert double.total_load == pytest.approx(2.0 * base.total_load)
        assert double.throughput == pytest.approx(base.throughput)


class TestScenarioSolutions:
    def test_schedules_are_feasible(self, three_workers):
        order = three_workers.ordered_by_c()
        solution = solve_fifo_scenario(three_workers, order)
        solution.schedule.verify()
        assert solution.schedule.makespan() <= 1.0 + 1e-7

    def test_lifo_scenario_is_lifo(self, three_workers):
        solution = solve_lifo_scenario(three_workers, three_workers.worker_names)
        assert solution.schedule.is_lifo
        solution.schedule.verify()

    def test_two_port_at_least_as_good_as_one_port(self, three_workers):
        order = three_workers.ordered_by_c()
        one_port = solve_scenario(three_workers, order, order, one_port=True)
        two_port = solve_scenario(three_workers, order, order, one_port=False)
        assert two_port.throughput >= one_port.throughput - 1e-9

    def test_exact_and_scipy_backends_agree(self, four_workers):
        order = four_workers.ordered_by_c()
        scipy_solution = solve_fifo_scenario(four_workers, order, solver="scipy")
        exact_solution = solve_fifo_scenario(four_workers, order, solver="exact")
        assert scipy_solution.throughput == pytest.approx(exact_solution.throughput, rel=1e-8)

    def test_loads_and_participants_accessors(self, three_workers):
        solution = solve_fifo_scenario(three_workers, three_workers.ordered_by_c())
        assert set(solution.loads) == set(three_workers.worker_names)
        assert all(load >= 0 for load in solution.loads.values())
        assert solution.participants == solution.schedule.participants

    def test_idle_variables_do_not_change_optimum(self, three_workers):
        order = three_workers.ordered_by_c()
        plain = solve_fifo_scenario(three_workers, order)
        with_idle = solve_scenario(
            three_workers, order, order, include_idle_variables=True
        )
        assert plain.throughput == pytest.approx(with_idle.throughput, rel=1e-9)
        idles = idle_times_from_result(with_idle.lp_result, order)
        assert all(value >= -1e-9 for value in idles.values())

    def test_subset_of_workers_is_a_valid_scenario(self, three_workers):
        solution = solve_fifo_scenario(three_workers, ["P2", "P3"])
        assert set(solution.loads) == {"P2", "P3"}
        solution.schedule.verify()


class TestLemma1VertexStructure:
    def test_at_most_one_idle_worker_at_optimum(self, four_workers):
        """Lemma 1: at an optimal vertex at most one enrolled worker is idle."""
        order = four_workers.ordered_by_c()
        solution = solve_fifo_scenario(four_workers, order, solver="exact")
        schedule = solution.schedule
        idles = schedule.idle_times()
        positive_idles = [
            name
            for name in schedule.participants
            if idles[name] > 1e-7
        ]
        assert len(positive_idles) <= 1

    def test_only_last_participant_may_idle(self, four_workers):
        """Lemma 2 / Theorem 1: the idle worker, if any, is the last enrolled."""
        order = four_workers.ordered_by_c()
        solution = solve_fifo_scenario(four_workers, order, solver="exact")
        schedule = solution.schedule
        idles = schedule.idle_times()
        participants = schedule.participants
        for name in participants[:-1]:
            assert idles[name] == pytest.approx(0.0, abs=1e-7)
