"""Tests for the regime analysis utilities and the crossover extension."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    fifo_lifo_crossover,
    is_port_saturated,
    port_utilisation,
    strategy_comparison,
)
from repro.core.fifo import optimal_fifo_schedule
from repro.core.platform import bus_platform
from repro.exceptions import ScheduleError
from repro.experiments import crossover
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors


class TestPortUtilisation:
    def test_utilisation_is_one_when_saturated(self):
        platform = bus_platform([0.1] * 6, c=1.0, d=0.5)
        solution = optimal_fifo_schedule(platform)
        assert port_utilisation(solution.schedule) == pytest.approx(1.0, abs=1e-7)
        assert is_port_saturated(platform)

    def test_utilisation_below_one_when_compute_bound(self):
        platform = bus_platform([100.0, 150.0], c=1.0, d=0.5)
        solution = optimal_fifo_schedule(platform)
        assert port_utilisation(solution.schedule) < 1.0 - 1e-6
        assert not is_port_saturated(platform)

    def test_feasible_schedules_never_exceed_one(self, three_workers):
        solution = optimal_fifo_schedule(three_workers)
        assert port_utilisation(solution.schedule) <= 1.0 + 1e-9


class TestStrategyComparison:
    def test_fields_and_ratios(self, three_workers):
        comparison = strategy_comparison(three_workers)
        assert comparison.platform_name == three_workers.name
        assert comparison.fifo_throughput > 0
        assert comparison.lifo_throughput > 0
        assert comparison.two_port_throughput >= comparison.fifo_throughput - 1e-9
        assert comparison.one_port_penalty >= 1.0 - 1e-9
        assert comparison.lifo_over_fifo == pytest.approx(
            comparison.lifo_throughput / comparison.fifo_throughput
        )
        assert comparison.winner() in {"FIFO", "LIFO", "tie"}

    def test_fifo_never_loses_on_a_bus(self):
        """Theorem 2: on a bus the FIFO optimum dominates the LIFO chain."""
        for w in (0.5, 2.0, 8.0, 40.0):
            platform = bus_platform([w] * 5, c=1.0, d=0.5)
            comparison = strategy_comparison(platform)
            assert comparison.fifo_throughput >= comparison.lifo_throughput - 1e-9
            assert comparison.winner() in {"FIFO", "tie"}

    def test_lifo_can_win_on_heterogeneous_stars(self):
        """The effect behind Figures 12/13b: LIFO wins in compute-heavy regimes."""
        workload = MatrixProductWorkload(600)
        factors = campaign_factors("hetero-star", 1, size=11, seed=12)[0]
        comparison = strategy_comparison(factors.platform(workload))
        assert comparison.lifo_over_fifo > 1.0

    def test_saturation_flag_matches_helper(self):
        platform = bus_platform([0.1] * 6, c=1.0, d=0.5)
        assert strategy_comparison(platform).port_saturated == is_port_saturated(platform)


class TestCrossoverSearch:
    def test_finds_crossover_on_heterogeneous_star(self):
        factors = campaign_factors("hetero-star", 1, size=11, seed=12)[0]

        def factory(size: float):
            return factors.platform(MatrixProductWorkload(int(size)))

        crossover_size = fifo_lifo_crossover(factory, low=40, high=800, iterations=20)
        assert crossover_size is not None
        assert 40 < crossover_size < 800
        # on either side of the crossover the winner flips
        below = strategy_comparison(factory(crossover_size * 0.5))
        above = strategy_comparison(factory(min(800, crossover_size * 1.5)))
        assert below.lifo_over_fifo <= 1.0 + 1e-6
        assert above.lifo_over_fifo >= 1.0 - 1e-6

    def test_no_crossover_on_bus(self):
        def factory(w: float):
            return bus_platform([w] * 5, c=1.0, d=0.5)

        assert fifo_lifo_crossover(factory, low=0.5, high=50.0, iterations=15) is None

    def test_rejects_bad_interval(self):
        with pytest.raises(ScheduleError):
            fifo_lifo_crossover(lambda value: bus_platform([value], c=1, d=1), low=2.0, high=1.0)


class TestCrossoverExperiment:
    def test_series_shape_and_theorem2_guarantee(self):
        result = crossover.run(matrix_sizes=(60, 200, 600), platform_count=3, workers=6, seed=5)
        assert "bus: LIFO/FIFO throughput" in result.series
        assert "star: LIFO/FIFO throughput" in result.series
        # Theorem 2: the bus ratio never exceeds 1
        for _, value in result.series["bus: LIFO/FIFO throughput"]:
            assert value <= 1.0 + 1e-9
        # the star ratio eventually exceeds the bus ratio as computation grows
        star_at_600 = result.value("star: LIFO/FIFO throughput", 600)
        bus_at_600 = result.value("bus: LIFO/FIFO throughput", 600)
        assert star_at_600 >= bus_at_600 - 1e-9
        # saturation fractions are valid probabilities
        for name in ("bus: port saturated", "star: port saturated"):
            for _, value in result.series[name]:
                assert 0.0 <= value <= 1.0

    def test_rejects_bad_platform_count(self):
        with pytest.raises(Exception):
            crossover.run(platform_count=0)
