"""Tests for heuristics, two-port baselines and brute force."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import (
    best_fifo_by_enumeration,
    best_lifo_by_enumeration,
    best_schedule_by_enumeration,
)
from repro.core.heuristics import (
    HEURISTICS,
    compare_heuristics,
    dec_c,
    fifo_with_order,
    inc_c,
    inc_w,
    lifo,
    optimal_fifo,
    platform_order_fifo,
)
from repro.core.platform import homogeneous_platform
from repro.core.twoport import (
    optimal_two_port_fifo_schedule,
    optimal_two_port_lifo_schedule,
    two_port_fifo_for_order,
)
from repro.exceptions import ScheduleError


class TestHeuristics:
    def test_inc_c_uses_bandwidth_order(self, three_workers):
        result = inc_c(three_workers)
        assert result.schedule.sigma1 == ("P1", "P3", "P2")
        assert result.name == "INC_C"
        result.schedule.verify()

    def test_inc_w_uses_compute_order(self, three_workers):
        result = inc_w(three_workers)
        assert result.schedule.sigma1 == ("P2", "P3", "P1")
        result.schedule.verify()

    def test_dec_c_is_reverse_of_inc_c(self, three_workers):
        assert dec_c(three_workers).schedule.sigma1 == tuple(
            reversed(inc_c(three_workers).schedule.sigma1)
        )

    def test_platform_order(self, three_workers):
        result = platform_order_fifo(three_workers)
        assert result.schedule.sigma1 == ("P1", "P2", "P3")

    def test_fifo_with_explicit_order(self, three_workers):
        result = fifo_with_order(three_workers, ["P3", "P2", "P1"], name="custom")
        assert result.name == "custom"
        assert result.schedule.sigma1 == ("P3", "P2", "P1")

    def test_lifo_heuristic_is_lifo(self, three_workers):
        result = lifo(three_workers)
        assert result.schedule.is_lifo
        result.schedule.verify()

    def test_optimal_fifo_wrapper(self, three_workers):
        result = optimal_fifo(three_workers)
        assert result.name == "OPT_FIFO"
        assert result.throughput == pytest.approx(inc_c(three_workers).throughput, rel=1e-9)

    def test_inc_c_is_best_fifo_heuristic(self, four_workers):
        """Theorem 1: INC_C dominates the other FIFO orderings (z < 1)."""
        results = compare_heuristics(four_workers, ("INC_C", "INC_W", "DEC_C", "PLATFORM_ORDER"))
        best = results["INC_C"].throughput
        for name in ("INC_W", "DEC_C", "PLATFORM_ORDER"):
            assert best >= results[name].throughput - 1e-9

    def test_makespan_for_total_load(self, three_workers):
        result = inc_c(three_workers)
        assert result.makespan_for(100.0) == pytest.approx(100.0 / result.throughput)

    def test_compare_heuristics_default_selection(self, three_workers):
        results = compare_heuristics(three_workers)
        assert set(results) == {"INC_C", "INC_W", "LIFO"}

    def test_compare_heuristics_unknown_name(self, three_workers):
        with pytest.raises(ScheduleError):
            compare_heuristics(three_workers, ("INC_C", "MAGIC"))

    def test_registry_contains_all_heuristics(self):
        assert set(HEURISTICS) == {
            "INC_C",
            "INC_W",
            "DEC_C",
            "PLATFORM_ORDER",
            "LIFO",
            "OPT_FIFO",
        }

    def test_all_fifo_orderings_equal_on_homogeneous_platform(self):
        platform = homogeneous_platform(4, c=1.0, w=6.0, d=0.5)
        results = compare_heuristics(platform, ("INC_C", "INC_W", "DEC_C", "PLATFORM_ORDER"))
        values = [r.throughput for r in results.values()]
        assert max(values) - min(values) == pytest.approx(0.0, abs=1e-9)


class TestTwoPortBaselines:
    def test_two_port_fifo_upper_bounds_one_port(self, four_workers):
        two_port = optimal_two_port_fifo_schedule(four_workers)
        one_port = optimal_fifo(four_workers)
        assert two_port.throughput >= one_port.throughput - 1e-9
        # two-port schedules need not satisfy the one-port coupling bound but
        # must respect every per-worker deadline
        assert two_port.schedule.is_feasible(one_port=False)

    def test_two_port_lifo_equals_one_port_lifo(self, four_workers):
        """A LIFO schedule never overlaps sends and receives, so the models agree."""
        two_port = optimal_two_port_lifo_schedule(four_workers)
        one_port = lifo(four_workers)
        assert two_port.throughput == pytest.approx(one_port.throughput, rel=1e-7)

    def test_two_port_for_explicit_order(self, three_workers):
        solution = two_port_fifo_for_order(three_workers, ["P2", "P1", "P3"])
        assert solution.order == ("P2", "P1", "P3")
        assert solution.participants
        assert set(solution.loads) == set(three_workers.worker_names)

    def test_two_port_handles_z_above_one(self, z_greater_one):
        solution = optimal_two_port_fifo_schedule(z_greater_one)
        assert solution.order[0] == "P2"  # largest c first when z > 1


class TestBruteForce:
    def test_refuses_large_platforms(self):
        platform = homogeneous_platform(8, c=1.0, w=1.0, d=0.5)
        with pytest.raises(ScheduleError):
            best_fifo_by_enumeration(platform)

    def test_counts_explored_scenarios(self, three_workers):
        result = best_fifo_by_enumeration(three_workers)
        assert result.scenarios_explored == 6
        paired = best_schedule_by_enumeration(three_workers)
        assert paired.scenarios_explored == 36

    def test_best_pair_at_least_as_good_as_fifo_and_lifo(self, three_workers):
        fifo_best = best_fifo_by_enumeration(three_workers)
        lifo_best = best_lifo_by_enumeration(three_workers)
        any_best = best_schedule_by_enumeration(three_workers)
        assert any_best.throughput >= fifo_best.throughput - 1e-9
        assert any_best.throughput >= lifo_best.throughput - 1e-9

    def test_brute_force_result_loads_are_feasible(self, three_workers):
        result = best_fifo_by_enumeration(three_workers)
        result.solution.schedule.verify()
        assert result.loads == result.solution.loads

    def test_lifo_enumeration_returns_lifo(self, three_workers):
        result = best_lifo_by_enumeration(three_workers)
        assert result.sigma2 == tuple(reversed(result.sigma1))
