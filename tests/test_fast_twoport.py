"""Tests of the two-port merge-ordered analytic replay.

:mod:`repro.simulation.fast_twoport` must reproduce the discrete-event
engine *bit for bit* — makespans, per-worker records, trace bars and noise
draws — under every noise model, including the default campaign noise whose
draw order couples the send/compute stream with the return stream through
the realised event times.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import platforms
from repro.experiments.common import default_noise
from repro.simulation.cluster import ClusterSimulation
from repro.simulation.fast_twoport import run_fast_twoport
from repro.simulation.noise import (
    AffineOverhead,
    ComposedNoise,
    GaussianJitter,
    NoJitter,
    UniformJitter,
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_same_run(fast, event):
    assert fast.makespan == event.makespan
    assert not fast.one_port
    assert set(fast.records) == set(event.records)
    for name, expected in event.records.items():
        assert fast.records[name].as_dict() == expected.as_dict()
    def key(e):
        return (e.resource, e.kind, e.start, e.end, e.load, e.note)
    assert sorted(map(key, fast.trace)) == sorted(map(key, event.trace))


class TestTwoPortReplay:
    @_SETTINGS
    @given(
        platforms(min_size=1, max_size=5, z=None),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["none", "uniform", "gaussian", "default", "composed"]),
    )
    def test_bit_identical_to_event_engine(self, platform, seed, noise_kind):
        """Same makespan, records, bars and draws as the discrete-event run."""

        def noise():
            if noise_kind == "none":
                return NoJitter()
            if noise_kind == "uniform":
                return UniformJitter(amplitude=0.05, comm_amplitude=0.2, seed=seed)
            if noise_kind == "gaussian":
                return GaussianJitter(sigma=0.1, seed=seed)
            if noise_kind == "default":
                return default_noise(seed)
            return ComposedNoise(
                UniformJitter(amplitude=0.04, comm_amplitude=0.15, seed=seed),
                AffineOverhead(comm_latency=0.01, compute_latency=0.002),
            )

        rng = np.random.default_rng(seed)
        loads = {name: float(rng.uniform(0.0, 4.0)) for name in platform.worker_names}
        sigma1 = list(rng.permutation(platform.worker_names))
        sigma2 = list(rng.permutation(platform.worker_names))

        fast = ClusterSimulation(
            platform, noise=noise(), one_port=False, engine="fast"
        ).run_assignment(loads, sigma1, sigma2)
        event = ClusterSimulation(
            platform, noise=noise(), one_port=False, engine="event"
        ).run_assignment(loads, sigma1, sigma2)
        _assert_same_run(fast, event)

    def test_auto_engine_dispatches_to_replay(self, three_workers):
        loads = {name: 1.0 for name in three_workers.worker_names}
        names = three_workers.worker_names
        auto = ClusterSimulation(three_workers, one_port=False).run_assignment(
            loads, names, names
        )
        event = ClusterSimulation(
            three_workers, one_port=False, engine="event"
        ).run_assignment(loads, names, names)
        _assert_same_run(auto, event)

    def test_empty_assignment(self, three_workers):
        run = run_fast_twoport(three_workers, {}, [], [], NoJitter())
        assert run.makespan == 0.0
        assert run.records == {}

    def test_collect_trace_false_skips_gantt_only(self, three_workers):
        loads = {name: 1.0 for name in three_workers.worker_names}
        names = three_workers.worker_names
        with_trace = run_fast_twoport(three_workers, loads, names, names, NoJitter())
        without = run_fast_twoport(
            three_workers, loads, names, names, NoJitter(), collect_trace=False
        )
        assert without.makespan == with_trace.makespan
        assert len(list(without.trace)) == 0
        assert len(list(with_trace.trace)) > 0

    def test_returns_interleave_with_pending_sends(self):
        """The two-port master collects early results during later sends.

        On a platform whose first worker computes instantly-ish and whose
        last send is long, the first return must start before the last
        send ends — the regime the merge-ordered draw replay exists for.
        """
        from repro.core.platform import StarPlatform, Worker

        platform = StarPlatform(
            [
                Worker(name="fast", c=0.1, w=0.1, d=0.1),
                Worker(name="slow", c=10.0, w=1.0, d=1.0),
            ],
            name="interleaved",
        )
        loads = {"fast": 1.0, "slow": 1.0}
        run = run_fast_twoport(
            platform, loads, ["fast", "slow"], ["fast", "slow"], NoJitter()
        )
        assert run.records["fast"].return_end < run.records["slow"].send_end
        event = ClusterSimulation(
            platform, one_port=False, engine="event"
        ).run_assignment(loads, ["fast", "slow"], ["fast", "slow"])
        _assert_same_run(run, event)
