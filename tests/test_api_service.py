"""Query-service tests: bit-identity to the scalar reference, batching,
the funnel, and telemetry visibility.

The load-bearing assertions are the bit-identity pins (the ISSUE-10
acceptance bar): every heuristic answer of ``QueryService.query`` /
``query_batch`` must equal the scalar reference path — ``compare_
heuristics`` + ``optimal_fifo_schedule`` under one-port, the ``twoport``
module under two-port — float for float, including after a JSON round
trip.  The service must be a pure latency/throughput layer.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import Answer, DEFAULT_HEURISTICS, BatchingFunnel, Query, QueryService
from repro.core.fifo import optimal_fifo_schedule
from repro.core.heuristics import compare_heuristics
from repro.core.makespan import predicted_makespan
from repro.core.platform import StarPlatform, Worker
from repro.core.twoport import (
    optimal_two_port_fifo_schedule,
    optimal_two_port_lifo_schedule,
    two_port_fifo_for_order,
)
from repro.exceptions import ScheduleError
from repro.obs import Telemetry, activate
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors, participation_platform

ALL_NAMES = ("OPT_FIFO", "INC_C", "INC_W", "DEC_C", "PLATFORM_ORDER", "LIFO")


def _platforms(count=6, size=7, seed=3):
    workload = MatrixProductWorkload(120)
    return [factors.platform(workload) for factors in
            campaign_factors("hetero-star", count, size=size, seed=seed)]


@pytest.fixture()
def platform():
    return participation_platform(3.0, MatrixProductWorkload(400))


class TestOnePortBitIdentity:
    def test_matches_compare_heuristics_and_optimal_fifo(self, platform):
        service = QueryService()
        answer = service.query(platform, heuristics=ALL_NAMES, total_tasks=1000)
        reference = compare_heuristics(platform, ALL_NAMES)
        for name, result in reference.items():
            mine = answer.result(name)
            assert mine.throughput == result.throughput
            assert mine.loads_dict == result.loads
            assert mine.order == tuple(result.schedule.sigma1)
            assert mine.return_order == tuple(result.schedule.sigma2)
            assert tuple(mine.participants) == tuple(result.participants)
            assert mine.predicted_makespan == predicted_makespan(result.schedule, 1000.0)
        opt = optimal_fifo_schedule(platform)
        assert answer.result("OPT_FIFO").throughput == opt.throughput
        assert answer.result("OPT_FIFO").loads_dict == opt.loads
        assert answer.best == max(reference, key=lambda name: reference[name].throughput)
        assert answer.predicted_makespan == answer.result(answer.best).predicted_makespan

    def test_many_platforms(self):
        service = QueryService()
        for platform in _platforms():
            answer = service.query(platform)
            reference = compare_heuristics(platform, DEFAULT_HEURISTICS)
            for name, result in reference.items():
                assert answer.result(name).throughput == result.throughput
                assert answer.result(name).loads_dict == result.loads

    def test_json_round_trip_is_exact(self, platform):
        answer = QueryService().query(platform)
        wire = json.loads(json.dumps(answer.as_dict()))
        assert Answer.from_dict(wire) == answer


class TestTwoPortBitIdentity:
    def test_matches_twoport_module(self, platform):
        service = QueryService()
        answer = service.query(platform, one_port=False, heuristics=ALL_NAMES)
        references = {
            "OPT_FIFO": optimal_two_port_fifo_schedule(platform),
            "INC_C": two_port_fifo_for_order(platform, platform.ordered_by_c()),
            "INC_W": two_port_fifo_for_order(platform, platform.ordered_by_w()),
            "DEC_C": two_port_fifo_for_order(platform, platform.ordered_by_c(descending=True)),
            "PLATFORM_ORDER": two_port_fifo_for_order(platform, platform.worker_names),
            "LIFO": optimal_two_port_lifo_schedule(platform),
        }
        for name, reference in references.items():
            mine = answer.result(name)
            assert mine.throughput == reference.throughput
            assert mine.loads_dict == reference.loads
        lifo = answer.result("LIFO")
        assert lifo.return_order == tuple(reversed(lifo.order))

    def test_port_models_answer_differently(self, platform):
        service = QueryService()
        one = service.query(platform)
        two = service.query(platform, one_port=False)
        assert one.key != two.key
        # Two-port relaxes constraint (2b): throughput can only improve.
        assert two.result("OPT_FIFO").throughput >= one.result("OPT_FIFO").throughput


class TestQueryBatch:
    def test_equals_sequential_queries_mixed_ports(self):
        platforms = _platforms(4)
        queries = [Query.build(p) for p in platforms[:2]]
        queries += [Query.build(p, one_port=False) for p in platforms[2:]]
        batch = QueryService().query_batch(queries)
        sequential = [QueryService().query(query) for query in queries]
        assert batch == sequential

    def test_duplicate_queries_solved_once(self, platform):
        service = QueryService()
        answers = service.query_batch([platform, platform, platform])
        assert answers[0] == answers[1] == answers[2]
        assert service.stats()["solved"] == 1

    def test_batch_hits_cache(self, platform):
        service = QueryService()
        service.query(platform)
        answers = service.query_batch([platform])
        assert answers[0].cached
        assert service.stats()["cache_hits"] == 1


class TestCachedAnswers:
    def test_hit_is_the_original_answer(self, platform):
        service = QueryService()
        cold = service.query(platform)
        hot = service.query(platform)
        assert not cold.cached
        assert hot.cached
        assert hot == cold  # `cached` is excluded from equality
        assert service.stats()["cache_hits"] == 1
        assert service.stats()["funnel_batches"] == 1

    def test_heuristic_subset_is_a_different_answer(self, platform):
        service = QueryService()
        full = service.query(platform)
        subset = service.query(platform, heuristics=("OPT_FIFO",))
        assert subset.key != full.key
        assert not subset.cached
        assert subset.heuristics == ("OPT_FIFO",)


class TestValidation:
    def test_unknown_heuristic(self, platform):
        with pytest.raises(ScheduleError, match="unknown heuristic"):
            QueryService().query(platform, heuristics=("OPT_FIFO", "MAGIC"))

    def test_empty_platform(self):
        with pytest.raises(ScheduleError, match="at least one worker"):
            Query.build({})

    def test_bad_payload_types(self):
        with pytest.raises(ScheduleError):
            Query.build({"P1": {"c": "fast", "w": 1, "d": 1}})
        with pytest.raises(ScheduleError, match="unknown request fields"):
            Query.from_dict({"platform": {"P1": {"c": 1, "w": 1, "d": 1}}, "bogus": 1})


class TestFunnelCoalescing:
    def test_concurrent_queries_share_one_kernel_call(self):
        platforms = _platforms(8, size=5, seed=11)
        service = QueryService(window=0.5, max_batch=len(platforms))
        barrier = threading.Barrier(len(platforms))
        answers: dict[int, object] = {}

        def ask(index):
            barrier.wait()
            answers[index] = service.query(platforms[index])

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(len(platforms))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # max_batch reached => exactly one flush, no window wait needed
        assert service.stats()["funnel_batches"] == 1
        assert service.stats()["funnel_coalesced"] == len(platforms)
        for index, platform in enumerate(platforms):
            reference = compare_heuristics(platform, DEFAULT_HEURISTICS)
            for name, result in reference.items():
                assert answers[index].result(name).throughput == result.throughput
                assert answers[index].result(name).loads_dict == result.loads

    def test_solve_error_propagates_to_every_caller(self):
        boom = RuntimeError("kernel exploded")

        def solve(queries):
            raise boom

        funnel = BatchingFunnel(solve, window=0.2, max_batch=2)
        barrier = threading.Barrier(2)
        errors = []

        def ask():
            barrier.wait()
            try:
                funnel.submit(object())
            except RuntimeError as error:
                errors.append(error)

        threads = [threading.Thread(target=ask) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == [boom, boom]

    def test_window_zero_is_pass_through(self, platform):
        service = QueryService(window=0.0)
        answer = service.query(platform)
        assert answer.result("OPT_FIFO").throughput == optimal_fifo_schedule(platform).throughput
        assert service.funnel.batches == 1


class TestTelemetryVisibility:
    def test_counters_and_histograms(self, tmp_path, platform):
        telemetry = Telemetry(tmp_path / "telemetry", owner="test", mode="on")
        with activate(telemetry):
            service = QueryService()
            service.query(platform)
            service.query(platform)
        snapshot = telemetry.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["api.queries"] == 2
        assert counters["api.cache.misses"] == 1
        assert counters["api.cache.hits"] == 1
        assert counters["api.solved"] == 1
        assert counters["api.funnel.batches"] == 1
        histogram = snapshot["histograms"]["api.query.seconds"]
        assert histogram["count"] == 2


class TestAnswerSurface:
    def test_schedule_rebuild(self, platform):
        answer = QueryService().query(platform)
        schedule = answer.schedule(platform)
        best = answer.best_result
        assert schedule.loads == best.loads_dict
        assert tuple(schedule.sigma1) == best.order
        assert tuple(schedule.sigma2) == best.return_order

    def test_result_lookup_unknown_name(self, platform):
        answer = QueryService().query(platform, heuristics=("OPT_FIFO",))
        with pytest.raises(ScheduleError, match="holds no heuristic"):
            answer.result("LIFO")

    def test_best_tie_break_is_first_in_heuristics_order(self):
        # A bus-like platform where INC_C and PLATFORM_ORDER coincide:
        # equal throughputs must resolve to the earlier requested name.
        platform = StarPlatform(
            [Worker(f"P{i}", c=2.0, w=5.0, d=2.0) for i in range(1, 4)]
        )
        answer = QueryService().query(
            platform, heuristics=("PLATFORM_ORDER", "INC_C")
        )
        inc_c = answer.result("INC_C")
        plat = answer.result("PLATFORM_ORDER")
        assert inc_c.throughput == plat.throughput
        assert answer.best == "PLATFORM_ORDER"
