"""Dispatch front-door tests (:mod:`repro.core.dispatch`).

Satellite 1 of ISSUE 10: ``repro.solve`` / ``repro.compare`` must route
scalar inputs to the scalar kernels and sequences to the batched kernels
without changing a single float — all four cells of the dispatch table
are pinned against the historical entry points here, and every
historical name must remain importable from its old home.
"""

from __future__ import annotations

import pytest

import repro
from repro.core import dispatch
from repro.core.dispatch import (
    EVALUABLE,
    compare,
    compare_heuristics_two_port,
    compare_heuristics_two_port_batch,
    heuristic_orders,
    solve,
)
from repro.core.fifo import optimal_fifo_order, optimal_fifo_schedule
from repro.core.heuristics import HEURISTICS, compare_heuristics, compare_heuristics_batch
from repro.core.linear_program import solve_scenario
from repro.core.twoport import (
    optimal_two_port_fifo_schedule,
    optimal_two_port_lifo_schedule,
    two_port_fifo_for_order,
)
from repro.exceptions import ScheduleError
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors, participation_platform

ALL_NAMES = tuple(HEURISTICS)


def _platforms(count=5, size=6, seed=9):
    workload = MatrixProductWorkload(120)
    return [factors.platform(workload) for factors in
            campaign_factors("hetero-star", count, size=size, seed=seed)]


@pytest.fixture()
def platform():
    return participation_platform(3.0, MatrixProductWorkload(400))


class TestHeuristicOrders:
    def test_matches_optimal_order_and_sorts(self, platform):
        sigma1, sigma2 = heuristic_orders(platform, "OPT_FIFO")
        assert sigma1 == list(optimal_fifo_order(platform))
        assert sigma2 == sigma1
        inc_c, _ = heuristic_orders(platform, "INC_C")
        assert inc_c == list(platform.ordered_by_c())
        inc_w, _ = heuristic_orders(platform, "INC_W")
        assert inc_w == list(platform.ordered_by_w())

    def test_lifo_reverses_return_order(self, platform):
        sigma1, sigma2 = heuristic_orders(platform, "LIFO")
        assert sigma1 == list(platform.ordered_by_c())
        assert sigma2 == list(reversed(sigma1))

    def test_port_model_never_changes_the_orders(self, platform):
        for name in EVALUABLE:
            assert heuristic_orders(platform, name, one_port=True) == heuristic_orders(
                platform, name, one_port=False
            )

    def test_unknown_name(self, platform):
        with pytest.raises(ScheduleError, match="unknown heuristic"):
            heuristic_orders(platform, "MAGIC")


class TestSolveDispatch:
    def test_scalar_routes_to_solve_scenario(self, platform):
        mine = solve(platform)
        sigma1, sigma2 = heuristic_orders(platform, "OPT_FIFO")
        reference = solve_scenario(platform, sigma1=sigma1, sigma2=sigma2)
        assert mine.throughput == reference.throughput
        assert mine.schedule.loads == reference.schedule.loads
        assert mine.throughput == optimal_fifo_schedule(platform).throughput

    def test_sequence_routes_to_batched_kernel_bit_identically(self):
        platforms = _platforms()
        batched = solve(platforms)
        assert isinstance(batched, list) and len(batched) == len(platforms)
        for entry, solution in zip(platforms, batched):
            scalar = solve(entry)
            assert solution.throughput == scalar.throughput
            assert solution.schedule.loads == scalar.schedule.loads

    def test_two_port_scalar_and_batch(self):
        platforms = _platforms(3)
        batched = solve(platforms, one_port=False)
        for entry, solution in zip(platforms, batched):
            reference = optimal_two_port_fifo_schedule(entry)
            assert solution.throughput == reference.throughput
            assert solution.schedule.loads == reference.loads

    def test_explicit_order(self, platform):
        order = list(platform.worker_names)
        mine = solve(platform, order=order)
        reference = solve_scenario(platform, sigma1=order, sigma2=order)
        assert mine.throughput == reference.throughput

    def test_explicit_return_order(self, platform):
        order = list(platform.worker_names)
        mine = solve(platform, one_port=False, order=order, return_order=order[::-1])
        reference = solve_scenario(
            platform, sigma1=order, sigma2=order[::-1], one_port=False
        )
        assert mine.throughput == reference.throughput

    def test_lifo_rule_implies_reversed_return(self, platform):
        mine = solve(platform, order_rule="LIFO")
        lifo = HEURISTICS["LIFO"](platform)
        assert mine.throughput == lifo.throughput
        assert list(mine.schedule.sigma2) == list(lifo.schedule.sigma2)

    def test_return_order_without_order_is_an_error(self, platform):
        with pytest.raises(ScheduleError, match="explicit order"):
            solve(platform, return_order=list(platform.worker_names))


def _assert_same_results(mine, reference):
    """Field-level bit-identity between two {name: HeuristicResult} dicts."""
    assert set(mine) == set(reference)
    for name in mine:
        assert mine[name].throughput == reference[name].throughput
        assert mine[name].schedule.loads == reference[name].schedule.loads
        assert list(mine[name].schedule.sigma1) == list(reference[name].schedule.sigma1)
        assert list(mine[name].schedule.sigma2) == list(reference[name].schedule.sigma2)


class TestCompareDispatch:
    def test_scalar_one_port_cell(self, platform):
        _assert_same_results(
            compare(platform, ALL_NAMES), compare_heuristics(platform, ALL_NAMES)
        )

    def test_batch_one_port_cell(self):
        platforms = _platforms(4)
        for mine, reference in zip(
            compare(platforms, ALL_NAMES), compare_heuristics_batch(platforms, ALL_NAMES)
        ):
            _assert_same_results(mine, reference)

    def test_scalar_two_port_cell(self, platform):
        mine = compare(platform, ALL_NAMES, one_port=False)
        _assert_same_results(mine, compare_heuristics_two_port(platform, ALL_NAMES))
        references = {
            "OPT_FIFO": optimal_two_port_fifo_schedule(platform),
            "INC_C": two_port_fifo_for_order(platform, platform.ordered_by_c()),
            "LIFO": optimal_two_port_lifo_schedule(platform),
        }
        for name, reference in references.items():
            assert mine[name].throughput == reference.throughput
            assert mine[name].schedule.loads == reference.loads

    def test_batch_two_port_cell_matches_scalar(self):
        platforms = _platforms(4)
        batched = compare(platforms, ALL_NAMES, one_port=False)
        for mine, reference in zip(
            batched, compare_heuristics_two_port_batch(platforms, ALL_NAMES)
        ):
            _assert_same_results(mine, reference)
        for entry, results in zip(platforms, batched):
            _assert_same_results(results, compare_heuristics_two_port(entry, ALL_NAMES))

    def test_unknown_name_rejected_everywhere(self, platform):
        for kwargs in ({"one_port": True}, {"one_port": False}):
            with pytest.raises(ScheduleError, match="unknown heuristic"):
                compare(platform, ("MAGIC",), **kwargs)
            with pytest.raises(ScheduleError, match="unknown heuristic"):
                compare([platform], ("MAGIC",), **kwargs)


class TestFrontDoorExports:
    def test_package_level_names(self):
        assert repro.solve is solve
        assert repro.compare is compare
        assert repro.compare_heuristics_two_port is compare_heuristics_two_port
        assert (
            repro.compare_heuristics_two_port_batch is compare_heuristics_two_port_batch
        )
        assert callable(repro.solve_scenarios)
        assert callable(repro.compare_heuristics_batch)

    def test_historical_names_still_importable(self):
        from repro.core import (  # noqa: F401
            compare_heuristics,
            compare_heuristics_batch,
            optimal_fifo_schedule,
            solve_scenario,
            solve_scenarios,
        )

    def test_evaluable_covers_the_registry(self):
        assert set(EVALUABLE) == set(HEURISTICS)
        assert set(dispatch.EVALUABLE) >= {"OPT_FIFO", "INC_C", "INC_W", "LIFO"}
