"""Tests for campaign forensics (``scenarios report``).

The report is the read side of the distributed trace: all sidecar spans
from all tiers must stitch into one causal tree under a single campaign
trace id, the journal's fault-recovery decisions must each be attributed
back to their journal line, and — the crash-forensics satellite — a
mid-crash store (torn sidecar line, missing coordinator journal, live
leases) must still produce a report, exit 0, with explicit "incomplete"
markers instead of errors.
"""

from __future__ import annotations

import json
import time

from repro.cli import main
from repro.obs import (
    Telemetry,
    activate,
    analyze_campaign,
    chrome_trace_events,
    compare_reports,
    read_spans,
    render_comparison,
    render_report,
    report_to_json,
    write_chrome_trace,
)
from repro.scenarios.fabric import Lease, run_fabric_campaign
from repro.scenarios.runner import run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.scenarios.store import CampaignStore


def small_spec(name="report-small", count=4):
    return named_space("fig12").derive(name=name, count=count, matrix_sizes=(40, 120))


def run_instrumented(tmp_path, spec, owner="main", jobs=1, **kwargs):
    store = tmp_path / "store"
    campaign_dir = store / spec_hash(spec)
    telemetry = Telemetry(campaign_dir / "telemetry", owner=owner, mode="on")
    with activate(telemetry):
        progress = run_campaign(spec, store, chunk_size=2, jobs=jobs, **kwargs)
    return campaign_dir, progress


class TestStitchedTrace:
    def test_pool_campaign_stitches_into_one_trace(self, tmp_path):
        spec = small_spec()
        campaign_dir, progress = run_instrumented(tmp_path, spec, jobs=2)
        assert progress.finished
        spans, _ = read_spans(campaign_dir / "telemetry")
        assert len({record["pid"] for record in spans}) > 1  # pool children wrote
        assert len({record["trace"] for record in spans}) == 1

        report = analyze_campaign(campaign_dir)
        assert len(report.trace_ids) == 1
        assert report.untraced_spans == 0
        assert report.span_count == len(spans)
        assert report.chunks_done == 2
        assert report.total_chunks == 2
        assert report.rows == spec.scenario_count
        assert report.incomplete == []

    def test_critical_path_descends_from_the_root_span(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec, jobs=2)
        report = analyze_campaign(campaign_dir)
        assert report.critical_path
        assert report.critical_path[0]["name"] == "campaign"
        assert report.critical_path_seconds > 0
        shares = [entry["share_pct"] for entry in report.critical_path_phases]
        assert abs(sum(shares) - 100.0) < 1.0

    def test_fabric_fault_attribution_names_journal_lines(self, tmp_path):
        spec = small_spec(name="report-fabric")
        store = tmp_path / "store"
        campaign_dir = store / spec_hash(spec)
        telemetry = Telemetry(campaign_dir / "telemetry", owner="coordinator", mode="on")
        with activate(telemetry):
            progress = run_fabric_campaign(
                spec, store, chunk_size=2, workers=2, faults="crash-pre@0"
            )
        assert progress.finished
        assert progress.retries >= 1

        spans, _ = read_spans(campaign_dir / "telemetry")
        assert len({record.get("trace") for record in spans}) == 1

        report = analyze_campaign(campaign_dir)
        assert len(report.trace_ids) == 1
        requeues = [fault for fault in report.faults if fault["event"] == "requeue"]
        assert requeues
        journal_lines = [
            json.loads(line)
            for line in (campaign_dir / "coordinator.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        for fault in requeues:
            journaled = journal_lines[fault["journal_line"] - 1]
            assert journaled["event"] == "requeue"
            assert journaled["chunk"] == fault["chunk"]
        rendered = render_report(report)
        assert "fault attribution (journal-tied):" in rendered
        assert f"line {requeues[0]['journal_line']:>4d}:" in rendered

    def test_report_never_touches_the_store(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        before = (campaign_dir / "chunks.jsonl").read_bytes()
        analyze_campaign(campaign_dir)
        chrome_trace_events(campaign_dir)
        assert (campaign_dir / "chunks.jsonl").read_bytes() == before


class TestTornAndPartialInputs:
    """The crash-forensics satellite: mid-crash state yields a report
    with explicit incomplete markers, never an error."""

    def test_empty_directory_reports_incomplete(self, tmp_path):
        report = analyze_campaign(tmp_path / "nowhere")
        assert report.span_count == 0
        assert any("no spans" in marker for marker in report.incomplete)

    def test_torn_sidecar_line_is_marked(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        (span_file,) = (campaign_dir / "telemetry").glob("spans-*.jsonl")
        with open(span_file, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "name": "to')
        report = analyze_campaign(campaign_dir)
        assert report.dropped_span_lines == 1
        assert any("torn sidecar" in marker for marker in report.incomplete)
        assert report.trace_ids  # the intact spans still stitch

    def test_torn_store_tail_is_marked(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        chunks_path = campaign_dir / "chunks.jsonl"
        chunks_path.write_bytes(chunks_path.read_bytes() + b'{"chunk": 7, "start"')
        report = analyze_campaign(campaign_dir)
        assert any("torn tail" in marker for marker in report.incomplete)

    def test_missing_journal_with_fabric_leftovers_is_marked(self, tmp_path):
        spec = small_spec(name="report-fabric-nojournal")
        store = tmp_path / "store"
        campaign_dir = store / spec_hash(spec)
        telemetry = Telemetry(campaign_dir / "telemetry", owner="coordinator", mode="on")
        with activate(telemetry):
            run_fabric_campaign(spec, store, chunk_size=2, workers=2, max_chunks=1)
        (campaign_dir / "coordinator.jsonl").unlink()
        assert (campaign_dir / "workers").is_dir()  # fabric leftovers remain
        report = analyze_campaign(campaign_dir)
        assert any("coordinator.jsonl missing" in marker for marker in report.incomplete)

    def test_live_and_expired_leases_are_marked(self, tmp_path):
        campaign_dir = tmp_path / "campaign"
        leases_dir = campaign_dir / "leases"
        leases_dir.mkdir(parents=True)
        now = time.time()
        Lease(
            chunk=0, start=0, stop=2, owner="w0", epoch=0,
            granted_at=now, heartbeat_at=now, deadline=now + 60.0, ttl=60.0,
        ).write(leases_dir)
        Lease(
            chunk=1, start=2, stop=4, owner="w1", epoch=1,
            granted_at=now - 120.0, heartbeat_at=now - 90.0,
            deadline=now - 60.0, ttl=5.0,
        ).write(leases_dir)
        report = analyze_campaign(campaign_dir, now=now)
        assert report.live_leases == 1
        assert report.expired_leases == 1
        assert any("live lease" in marker for marker in report.incomplete)
        assert any("expired lease" in marker for marker in report.incomplete)

    def test_cli_exits_zero_on_mid_crash_store(self, tmp_path, capsys):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        (span_file,) = (campaign_dir / "telemetry").glob("spans-*.jsonl")
        with open(span_file, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "name": "to')
        chunks_path = campaign_dir / "chunks.jsonl"
        chunks_path.write_bytes(chunks_path.read_bytes() + b'{"chunk": 7, "start"')
        assert main(["scenarios", "report", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "incomplete:" in out
        assert "torn sidecar" in out
        assert "torn tail" in out

    def test_cli_exits_zero_on_empty_directory(self, tmp_path, capsys):
        assert main(["scenarios", "report", str(tmp_path / "absent")]) == 0
        assert "incomplete:" in capsys.readouterr().out


class TestChromeExport:
    def test_export_round_trips_and_is_sorted(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec, jobs=2)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(campaign_dir, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        assert len(events) == count > 0
        # Metadata first, then strictly time-ordered events.
        kinds = [event["ph"] for event in events]
        first_real = next(i for i, ph in enumerate(kinds) if ph != "M")
        assert all(ph == "M" for ph in kinds[:first_real])
        stamps = [event["ts"] for event in events[first_real:]]
        assert stamps == sorted(stamps)
        spans = [event for event in events if event["ph"] == "X"]
        assert all(event["dur"] >= 0 for event in spans)
        assert all("trace" in event["args"] for event in spans)

    def test_journal_events_become_instants(self, tmp_path):
        spec = small_spec(name="report-chrome-fabric")
        store = tmp_path / "store"
        campaign_dir = store / spec_hash(spec)
        telemetry = Telemetry(campaign_dir / "telemetry", owner="coordinator", mode="on")
        with activate(telemetry):
            run_fabric_campaign(spec, store, chunk_size=2, workers=2, faults="crash-pre@0")
        events = chrome_trace_events(campaign_dir)
        instants = [event for event in events if event["ph"] == "i"]
        assert any(event["name"] == "journal:requeue" for event in instants)
        assert all(event["pid"] == 0 for event in instants)
        assert all("journal_line" in event["args"] for event in instants)

    def test_cli_trace_export_with_json_keeps_stdout_parseable(self, tmp_path, capsys):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "scenarios", "report", str(campaign_dir),
                "--json", "--trace-export", str(trace_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is one JSON document
        assert payload["trace_ids"]
        assert payload["chunks_done"] == 2
        assert "trace event(s)" in captured.err
        assert json.loads(trace_path.read_text(encoding="utf-8"))["traceEvents"]


class TestComparison:
    def test_self_comparison_has_zero_deltas(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        report = analyze_campaign(campaign_dir)
        comparison = compare_reports(report, report)
        assert comparison["phases"]
        for phase in comparison["phases"]:
            if phase["delta_pct"] is not None:
                assert phase["delta_pct"] == 0.0
        rendered = render_comparison(comparison)
        assert "vs" in rendered

    def test_cli_compare_resolves_space_hash(self, tmp_path, capsys):
        spec = named_space("fig12").derive(count=4)  # the CLI's own derivation
        store_a = tmp_path / "a"
        store_b = tmp_path / "b"
        for store in (store_a, store_b):
            telemetry = Telemetry(
                store / spec_hash(spec) / "telemetry", owner="main", mode="on"
            )
            with activate(telemetry):
                run_campaign(spec, store, chunk_size=2)
        code = main(
            [
                "scenarios", "report", str(store_a),
                "--space", "fig12", "--count", "4", "--compare", str(store_b),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign forensics:" in out
        assert "vs" in out


class TestReportJson:
    def test_json_form_is_plain_data(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        payload = report_to_json(analyze_campaign(campaign_dir))
        assert json.loads(json.dumps(payload)) == payload
        assert payload["directory"] == str(campaign_dir)
        assert payload["phases"]
        assert payload["writers"]
