"""Cache-keying tests for the query service (:mod:`repro.api.cache`).

Satellite 4 of ISSUE 10: the content-addressed key must canonicalise
numerics (``1`` and ``1.0`` are the same platform), must separate the
one-port and two-port twins of a scenario, must be immune to mutation of
the caller's cost structures after caching, and the disk tier must
survive a process restart without re-solving.
"""

from __future__ import annotations

import json

from repro.api import AnswerCache, Query, QueryService, query_key
from repro.api.cache import KEY_LENGTH
from repro.core.platform import StarPlatform, Worker
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import participation_platform

COSTS = {
    "P1": {"c": 1.0, "w": 3.0, "d": 2.0},
    "P2": {"c": 2.0, "w": 5.0, "d": 1.0},
}


def _platform():
    return participation_platform(3.0, MatrixProductWorkload(400))


class TestNumericCanonicalisation:
    def test_int_and_float_literals_hash_equal(self):
        as_ints = {"P1": {"c": 1, "w": 3, "d": 2}, "P2": {"c": 2, "w": 5, "d": 1}}
        assert query_key(Query.build(as_ints)) == query_key(Query.build(COSTS))

    def test_mapping_and_object_platform_hash_equal(self):
        platform = StarPlatform(
            [Worker("P1", c=1.0, w=3.0, d=2.0), Worker("P2", c=2.0, w=5.0, d=1.0)]
        )
        assert query_key(Query.build(platform)) == query_key(Query.build(COSTS))

    def test_int_total_tasks_hashes_like_float(self):
        assert query_key(Query.build(COSTS, total_tasks=500)) == query_key(
            Query.build(COSTS, total_tasks=500.0)
        )

    def test_key_length_and_charset(self):
        key = query_key(Query.build(COSTS))
        assert len(key) == KEY_LENGTH
        assert set(key) <= set("0123456789abcdef")


class TestKeySeparation:
    def test_port_model_twins_keyed_apart(self):
        one = Query.build(COSTS, one_port=True)
        two = Query.build(COSTS, one_port=False)
        assert query_key(one) != query_key(two)

    def test_cost_perturbation_changes_key(self):
        perturbed = json.loads(json.dumps(COSTS))
        perturbed["P2"]["d"] = 1.0000000001
        assert query_key(Query.build(perturbed)) != query_key(Query.build(COSTS))

    def test_heuristic_set_and_deadline_change_key(self):
        base = Query.build(COSTS)
        assert query_key(Query.build(COSTS, heuristics=("OPT_FIFO",))) != query_key(base)
        assert query_key(Query.build(COSTS, deadline=2.0)) != query_key(base)

    def test_worker_name_is_part_of_the_key(self):
        renamed = {"Q1": COSTS["P1"], "P2": COSTS["P2"]}
        assert query_key(Query.build(renamed)) != query_key(Query.build(COSTS))


class TestMutationSafety:
    def test_mutating_source_mapping_after_caching_cannot_poison(self):
        service = QueryService()
        costs = {name: dict(entry) for name, entry in COSTS.items()}
        first = service.query(costs)
        # The caller mutates its cost table in place. The Query captured
        # the rows at build time, so the cached entry must stay keyed to
        # the original costs and the new costs must be a cache miss.
        costs["P2"]["w"] = 50.0
        second = service.query(costs)
        assert not second.cached
        assert second.key != first.key
        assert second.result("OPT_FIFO").throughput != first.result("OPT_FIFO").throughput
        # And the original is still served unpoisoned.
        third = service.query(COSTS)
        assert third.cached
        assert third == first

    def test_query_is_deeply_immutable(self):
        query = Query.build(COSTS)
        assert isinstance(query.platform_rows, tuple)
        assert all(isinstance(row, tuple) for row in query.platform_rows)
        assert isinstance(query.heuristics, tuple)


class TestDiskCache:
    def test_survives_process_restart(self, tmp_path):
        platform = _platform()
        first = QueryService(cache_dir=tmp_path / "answers")
        cold = first.query(platform)
        assert first.stats()["solved"] == 1

        # A fresh service over the same directory models a new process.
        second = QueryService(cache_dir=tmp_path / "answers")
        warm = second.query(platform)
        assert warm.cached
        assert warm == cold
        assert second.stats()["solved"] == 0

    def test_disk_round_trip_is_bit_exact(self, tmp_path):
        platform = _platform()
        service = QueryService(cache_dir=tmp_path / "answers")
        cold = service.query(platform, one_port=False)
        reloaded = AnswerCache(directory=tmp_path / "answers").get(cold.key)
        assert reloaded == cold
        for name in cold.heuristics:
            assert reloaded.result(name).throughput == cold.result(name).throughput
            assert reloaded.result(name).loads_dict == cold.result(name).loads_dict

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        platform = _platform()
        directory = tmp_path / "answers"
        service = QueryService(cache_dir=directory)
        cold = service.query(platform)
        path = next(directory.glob("*.json"))
        path.write_text("{not json", encoding="utf-8")
        fresh = QueryService(cache_dir=directory)
        again = fresh.query(platform)
        assert not again.cached  # miss, silently re-solved
        assert again == cold

    def test_memory_eviction_falls_through_to_disk(self, tmp_path):
        service = QueryService(cache_dir=tmp_path / "answers", cache_size=1)
        cache = service.cache
        a = service.query(_platform())
        service.query(participation_platform(1.0, MatrixProductWorkload(400)))
        assert len(cache) == 1  # first answer evicted from memory
        hot = service.query(_platform())  # served from disk
        assert hot.cached
        assert hot == a

    def test_memory_only_without_directory(self):
        service = QueryService()
        service.query(_platform())
        assert service.cache.directory is None
