"""Tests for the streaming runner and the resumable store.

The two load-bearing guarantees:

* **campaign parity** — a sampler-fed campaign persists, per platform,
  exactly the ratios the figure campaigns (object path) compute;
* **resume semantics** — a campaign killed mid-run and resumed produces a
  store bit-identical to an uninterrupted run, including after a crash
  that truncates the last line mid-write.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.common import heuristic_campaign
from repro.scenarios.runner import aggregate_figure, plan_chunks, run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.scenarios.store import CampaignState, CampaignStore, aggregate_rows


def small_spec(name="small", count=6, sizes=(40, 120), noise="default"):
    return named_space("fig12").derive(name=name, count=count, matrix_sizes=sizes, noise=noise)


class TestPlanChunks:
    def test_covers_the_space(self):
        chunks = plan_chunks(10, 4)
        assert chunks == [(0, 4), (4, 8), (8, 10)]

    def test_chunk_size_positive(self):
        with pytest.raises(ExperimentError):
            plan_chunks(10, 0)


class TestCampaignParity:
    @pytest.mark.parametrize(
        "space, campaign_kind, kwargs",
        [
            ("fig10", "homogeneous", {"heuristic_names": ("INC_C", "LIFO")}),
            ("fig11", "hetero-comp", {}),
            ("fig12", "hetero-star", {}),
            ("fig13a", "hetero-star", {"comp_scale": 10.0}),
            ("fig13b", "hetero-star", {"comm_scale": 10.0}),
        ],
    )
    def test_mean_ratios_match_figure_campaigns(self, tmp_path, space, campaign_kind, kwargs):
        """Sampler-fed campaigns == StarPlatform-object campaigns, per figure.

        Reduced platform counts keep the test fast; the sampled factor
        prefix is identical to the full fig10-13 factor sets (prefix
        property, pinned by the sampler tests), so this is the paper's
        factor sets, truncated.
        """
        spec = named_space(space).derive(count=5, matrix_sizes=(40, 200))
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        assert progress.finished
        rows = progress.rows()
        assert len(rows) == spec.scenario_count

        from repro.experiments.fig13_ratio import overhead_noise
        from repro.experiments.common import default_noise

        figure = heuristic_campaign(
            figure="ref",
            title="reference",
            campaign_kind=campaign_kind,
            matrix_sizes=spec.matrix_sizes,
            platform_count=spec.family.count,
            workers=spec.family.workers,
            total_tasks=spec.total_tasks,
            seed=spec.family.seed,
            noise_factory=overhead_noise if spec.noise == "overhead" else default_noise,
            **kwargs,
        )
        aggregated = progress.aggregate()
        reference = spec.reference
        for size in spec.matrix_sizes:
            for name in spec.heuristics:
                lp_label = f"{name} lp" if name == reference else f"{name} lp/{reference} lp"
                assert aggregated[f"{name} lp"][size]["mean"] == figure.value(lp_label, size)
                assert (
                    aggregated[f"{name} real"][size]["mean"]
                    == figure.value(f"{name} real/{reference} lp", size)
                )

    def test_jobs_do_not_change_rows(self, tmp_path):
        spec = small_spec()
        serial = run_campaign(spec, tmp_path / "serial", chunk_size=2, jobs=1)
        parallel = run_campaign(spec, tmp_path / "parallel", chunk_size=2, jobs=2)
        assert serial.rows() == parallel.rows()

    def test_lp_only_space_has_no_real_series(self, tmp_path):
        spec = small_spec(noise=None)
        progress = run_campaign(spec, tmp_path, chunk_size=3)
        for row in progress.rows():
            assert not any(series.endswith(" real") for series in row["values"])
            assert f"{spec.reference} lp" in row["values"]


class TestResumeSemantics:
    def test_interrupted_campaign_resumes_bit_identically(self, tmp_path):
        spec = small_spec()
        uninterrupted = run_campaign(spec, tmp_path / "full", chunk_size=2)

        partial = run_campaign(spec, tmp_path / "resumed", chunk_size=2, max_chunks=2)
        assert not partial.finished
        assert partial.completed_after == 2
        resumed = run_campaign(spec, tmp_path / "resumed", chunk_size=2)
        assert resumed.finished
        assert resumed.completed_before == 2
        assert resumed.rows() == uninterrupted.rows()
        # The persisted bytes (after the header spec) agree line for line
        # once re-parsed: same chunks, same rows, same floats.
        full_lines = (tmp_path / "full" / spec_hash(spec) / "chunks.jsonl").read_text()
        resumed_lines = (tmp_path / "resumed" / spec_hash(spec) / "chunks.jsonl").read_text()
        assert full_lines == resumed_lines

    def test_kill_mid_write_truncated_tail_is_recovered(self, tmp_path):
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "full", chunk_size=2)

        crashed_root = tmp_path / "crashed"
        run_campaign(spec, crashed_root, chunk_size=2, max_chunks=2)
        chunks_path = crashed_root / spec_hash(spec) / "chunks.jsonl"
        # Simulate a kill -9 halfway through appending chunk 2: a valid
        # prefix plus one truncated JSON line.
        with open(chunks_path, "a", encoding="utf-8") as handle:
            handle.write('{"chunk": 2, "start": 4, "rows": [{"platform"')
        resumed = run_campaign(spec, crashed_root, chunk_size=2)
        assert resumed.finished
        assert resumed.rows() == reference.rows()

    def test_store_survives_repeated_reopens_after_torn_write(self, tmp_path):
        """Resuming over a truncated tail must not glue records together.

        The torn tail is truncated away on load, so the store stays
        parseable through arbitrarily many resume/reopen cycles.
        """
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "full", chunk_size=2)

        crashed_root = tmp_path / "crashed"
        run_campaign(spec, crashed_root, chunk_size=2, max_chunks=2)
        chunks_path = crashed_root / spec_hash(spec) / "chunks.jsonl"
        with open(chunks_path, "a", encoding="utf-8") as handle:
            handle.write('{"chunk": 2, "start": 4, "rows": [{"platform"')
        resumed = run_campaign(spec, crashed_root, chunk_size=2)
        assert resumed.finished
        # Reopen repeatedly: every record must still parse, and the rows
        # must match the uninterrupted run each time.
        for _ in range(2):
            reopened = run_campaign(spec, crashed_root, chunk_size=2)
            assert reopened.finished
            assert reopened.rows() == reference.rows()

    def test_missing_tail_newline_is_repaired(self, tmp_path):
        """A record whose newline never hit the disk still parses; the next
        append must start on a fresh line."""
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "full", chunk_size=2)

        root = tmp_path / "torn"
        run_campaign(spec, root, chunk_size=2, max_chunks=2)
        chunks_path = root / spec_hash(spec) / "chunks.jsonl"
        raw = chunks_path.read_bytes()
        assert raw.endswith(b"\n")
        chunks_path.write_bytes(raw[:-1])
        resumed = run_campaign(spec, root, chunk_size=2)
        assert resumed.finished
        assert resumed.rows() == reference.rows()

    def test_corrupt_middle_line_raises(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2)
        chunks_path = tmp_path / spec_hash(spec) / "chunks.jsonl"
        lines = chunks_path.read_text().splitlines()
        lines[0] = lines[0][:-10]
        chunks_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExperimentError):
            run_campaign(spec, tmp_path, chunk_size=2)

    def test_resume_with_different_chunk_size_fails_loudly(self, tmp_path):
        """Chunk-size drift is rejected with a message that tells the user
        exactly how to recover (resume with the original chunk size)."""
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2, max_chunks=1)
        with pytest.raises(
            ExperimentError,
            match="resume with the chunk size the campaign was started with",
        ):
            run_campaign(spec, tmp_path, chunk_size=4)

    def test_store_refuses_foreign_spec(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path, chunk_size=3)
        other = spec.derive(seed=999)
        with pytest.raises(ExperimentError):
            CampaignState(progress.state.directory, other)

    def test_duplicate_chunk_append_rejected(self, tmp_path):
        spec = small_spec(noise=None)
        progress = run_campaign(spec, tmp_path, chunk_size=3)
        with pytest.raises(ExperimentError):
            progress.state.append_chunk(0, 0, 3, [])

    def test_renamed_spec_shares_results(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=3)
        renamed = spec.derive(name="renamed-space")
        progress = run_campaign(renamed, tmp_path, chunk_size=3)
        assert progress.finished and progress.completed_before == progress.total_chunks


class TestAggregation:
    def test_aggregate_rows_statistics(self):
        rows = [
            {"platform": i, "size": 40, "values": {"INC_C lp": float(i)}} for i in range(5)
        ]
        aggregated = aggregate_rows(rows, quantiles=(0.5,))
        cell = aggregated["INC_C lp"][40]
        assert cell["count"] == 5
        assert cell["mean"] == 2.0
        assert cell["min"] == 0.0 and cell["max"] == 4.0
        assert cell["q50"] == float(np.quantile(np.arange(5.0), 0.5))

    def test_aggregate_figure_renders_means(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path, chunk_size=3)
        figure = aggregate_figure(spec, progress.aggregate())
        table = figure.format_table()
        assert "INC_C lp" in table and "LIFO real" in table
        assert figure.value("INC_C lp", 40) == 1.0

    def test_store_lists_campaigns(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=3)
        store = CampaignStore(tmp_path)
        campaigns = store.campaigns()
        assert len(campaigns) == 1
        assert campaigns[0][0] == spec_hash(spec)
        assert campaigns[0][1].name == spec.name


class TestStreamingStore:
    """The store is an index, not a cache: rows live on disk and are
    streamed back chunk by chunk for reads, aggregation and export."""

    def test_streaming_aggregate_matches_row_list_aggregate(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        state = progress.state
        assert state.aggregate() == aggregate_rows(state.rows())
        assert state.aggregate(quantiles=(0.25,)) == aggregate_rows(
            state.rows(), quantiles=(0.25,)
        )

    def test_reopened_state_serves_rows_from_disk(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        reopened = CampaignState(progress.state.directory, spec)
        assert reopened.rows() == progress.rows()
        assert reopened.row_count() == len(progress.rows())
        assert reopened.covered_platforms() == spec.family.count
        for index in sorted(reopened.completed_chunks):
            assert reopened.chunk_rows(index) == progress.state.chunk_rows(index)
        chunks = dict(reopened.iter_chunk_rows())
        assert sorted(chunks) == sorted(reopened.completed_chunks)

    def test_chunk_rows_for_missing_chunk_raises(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path, chunk_size=3, max_chunks=1)
        with pytest.raises(ExperimentError, match="not persisted"):
            progress.state.chunk_rows(99)

    def test_export_npz_normalises_suffix(self, tmp_path):
        """np.savez silently appends .npz; the reported path must name the
        file that actually exists."""
        spec = small_spec()
        progress = run_campaign(spec, tmp_path / "store", chunk_size=3)
        summary = progress.state.export_npz(tmp_path / "columns")
        assert summary["path"].endswith("columns.npz")
        assert (tmp_path / "columns.npz").exists()

    def test_export_npz_round_trips_columns(self, tmp_path):
        spec = small_spec()
        progress = run_campaign(spec, tmp_path / "store", chunk_size=2)
        path = tmp_path / "out.npz"
        summary = progress.state.export_npz(path)
        rows = progress.rows()
        assert summary["rows"] == len(rows)

        with np.load(path) as archive:
            assert archive["platform"].tolist() == [row["platform"] for row in rows]
            assert archive["size"].tolist() == [row["size"] for row in rows]
            series_names = set(rows[0]["values"])
            assert set(summary["series"]) == series_names
            for series in series_names:
                column = archive[series]
                assert column.tolist() == [row["values"][series] for row in rows]
            from repro.scenarios.spec import ScenarioSpec

            stored = ScenarioSpec.from_json(str(archive["spec"]))
            assert spec_hash(stored) == spec_hash(spec)
