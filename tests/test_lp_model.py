"""Tests for the LP modelling layer (:mod:`repro.lp.model`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.lp.model import Constraint, LinearProgram, Variable


class TestVariable:
    def test_rejects_empty_name(self):
        with pytest.raises(SolverError):
            Variable("")

    def test_rejects_negative_upper_bound(self):
        with pytest.raises(SolverError):
            Variable("x", upper=-1.0)


class TestConstraint:
    def test_rejects_bad_sense(self):
        with pytest.raises(SolverError):
            Constraint("c", {"x": 1.0}, "<", 1.0)

    def test_rejects_empty_coefficients(self):
        with pytest.raises(SolverError):
            Constraint("c", {}, "<=", 1.0)

    def test_slack_le(self):
        con = Constraint("c", {"x": 2.0}, "<=", 3.0)
        assert con.slack({"x": 1.0}) == pytest.approx(1.0)
        assert con.slack({"x": 2.0}) == pytest.approx(-1.0)

    def test_slack_ge(self):
        con = Constraint("c", {"x": 1.0}, ">=", 2.0)
        assert con.slack({"x": 3.0}) == pytest.approx(1.0)

    def test_slack_eq_is_negative_residual(self):
        con = Constraint("c", {"x": 1.0}, "==", 2.0)
        assert con.slack({"x": 2.0}) == pytest.approx(0.0)
        assert con.slack({"x": 3.0}) == pytest.approx(-1.0)


class TestLinearProgram:
    def test_duplicate_variable_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_variable("x")

    def test_objective_unknown_variable_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.set_objective({"y": 1.0})
        with pytest.raises(SolverError):
            program.add_objective_term("y", 1.0)

    def test_add_objective_term_accumulates(self):
        program = LinearProgram()
        program.add_variable("x")
        program.add_objective_term("x", 1.0)
        program.add_objective_term("x", 2.0)
        assert program.objective == {"x": 3.0}

    def test_constraint_unknown_variable_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_constraint("c", {"y": 1.0}, "<=", 1.0)

    def test_constraint_drops_zero_coefficients(self):
        program = LinearProgram()
        program.add_variable("x")
        program.add_variable("y")
        con = program.add_constraint("c", {"x": 1.0, "y": 0.0}, "<=", 1.0)
        assert con.coefficients == {"x": 1.0}

    def test_all_zero_constraint_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_constraint("c", {"x": 0.0}, "<=", 1.0)

    def test_counts_and_names(self):
        program = LinearProgram("p")
        program.add_variable("x")
        program.add_variable("y", upper=2.0)
        program.add_constraint("c", {"x": 1.0}, "<=", 1.0)
        assert program.num_variables == 2
        assert program.num_constraints == 1
        assert program.variable_names == ["x", "y"]
        assert [v.name for v in program.variables] == ["x", "y"]
        assert len(program.constraints) == 1

    def test_to_dense_shapes_and_signs(self):
        program = LinearProgram()
        program.add_variable("x")
        program.add_variable("y", upper=5.0)
        program.set_objective({"x": 1.0, "y": 2.0})
        program.add_constraint("le", {"x": 1.0, "y": 1.0}, "<=", 4.0)
        program.add_constraint("ge", {"x": 1.0}, ">=", 1.0)
        program.add_constraint("eq", {"y": 3.0}, "==", 6.0)
        c, a_ub, b_ub, a_eq, b_eq, upper = program.to_dense()
        assert c.tolist() == [1.0, 2.0]
        assert a_ub.shape == (2, 2)
        # the >= row is negated into <= form
        assert a_ub[1].tolist() == [-1.0, 0.0]
        assert b_ub.tolist() == [4.0, -1.0]
        assert a_eq.tolist() == [[0.0, 3.0]]
        assert b_eq.tolist() == [6.0]
        assert upper[0] == np.inf and upper[1] == 5.0

    def test_to_exact_rows_splits_equalities_and_bounds(self):
        program = LinearProgram()
        program.add_variable("x", upper=2.0)
        program.set_objective({"x": 1.0})
        program.add_constraint("eq", {"x": 1.0}, "==", 1.0)
        c, rows, rhs, names = program.to_exact_rows()
        # equality -> two rows, plus one row for the upper bound
        assert len(rows) == 3
        assert names == ["x"]
        assert float(c[0]) == 1.0

    def test_feasibility_helpers(self):
        program = LinearProgram()
        program.add_variable("x", upper=1.0)
        program.set_objective({"x": 1.0})
        program.add_constraint("c", {"x": 1.0}, "<=", 0.5)
        assert program.is_feasible({"x": 0.25})
        assert not program.is_feasible({"x": 0.75})
        assert not program.is_feasible({"x": -0.1})
        problems = program.violations({"x": 2.0})
        assert any("exceeds" in p for p in problems)
        assert any("violated" in p for p in problems)

    def test_objective_value(self):
        program = LinearProgram()
        program.add_variable("x")
        program.add_variable("y")
        program.set_objective({"x": 2.0, "y": 3.0})
        assert program.objective_value({"x": 1.0, "y": 2.0}) == pytest.approx(8.0)
        assert program.objective_value({"x": 1.0}) == pytest.approx(2.0)
