"""Tests for the live campaign status view (``scenarios status``).

The status view is read-only over plain files: it must report progress
with or without telemetry, flag expired leases from the shared lease
directory, and stay exit-0 on any directory — empty, torn, or mid-run.
"""

from __future__ import annotations

import json
import time

from repro.cli import main
from repro.obs import Telemetry, activate
from repro.scenarios.fabric import Lease
from repro.scenarios.runner import run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.scenarios.status import collect_status, follow_status, render_status
from repro.scenarios.store import CampaignStore


def small_spec(name="status-small", count=4):
    return named_space("fig12").derive(name=name, count=count, matrix_sizes=(40, 120))


def run_instrumented(tmp_path, spec, chunk_size=2, mode="on"):
    store = tmp_path / "store"
    campaign_dir = store / spec_hash(spec)
    telemetry = Telemetry(campaign_dir / "telemetry", owner="main", mode=mode)
    with activate(telemetry):
        progress = run_campaign(spec, store, chunk_size=chunk_size)
    return campaign_dir, progress


class TestCollectStatus:
    def test_empty_directory_yields_zeros(self, tmp_path):
        status = collect_status(tmp_path / "nowhere")
        assert status.canonical_chunks == 0
        assert status.total_chunks is None
        assert not status.has_telemetry
        assert not status.finished

    def test_complete_campaign_with_telemetry(self, tmp_path):
        spec = small_spec()
        campaign_dir, progress = run_instrumented(tmp_path, spec)
        assert progress.finished
        status = collect_status(campaign_dir)
        assert status.canonical_chunks == 2
        assert status.total_chunks == 2
        assert status.finished
        assert status.rows == spec.scenario_count
        assert status.has_telemetry
        assert status.rows_per_second is None or status.rows_per_second > 0
        phase_names = [name for name, _, _ in status.phases]
        for expected in ("queue", "evaluate", "solve", "append"):
            assert expected in phase_names
        assert "batch_scenario" in status.kernels
        assert status.kernels["batch_scenario"]["calls"] >= 1

    def test_total_chunks_inferred_without_advert(self, tmp_path):
        """No fabric.json: the total comes from spec.json + chunk 0's range."""
        spec = small_spec(count=5)
        store = tmp_path / "store"
        run_campaign(spec, store, chunk_size=2, max_chunks=1)
        status = collect_status(store / spec_hash(spec))
        assert status.canonical_chunks == 1
        assert status.total_chunks == 3
        assert not status.finished

    def test_worker_store_chunks_count_as_durable(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "store"
        run_campaign(spec, store, chunk_size=2, max_chunks=1)
        campaign_dir = store / spec_hash(spec)
        # Fake a worker store holding the other chunk, as mid-merge.
        worker_dir = campaign_dir / "workers" / "w0"
        worker_dir.mkdir(parents=True)
        (worker_dir / "spec.json").write_text(spec.to_json(), encoding="utf-8")
        (worker_dir / "chunks.jsonl").write_text(
            json.dumps({"chunk": 1, "start": 2, "stop": 4, "rows": []}) + "\n",
            encoding="utf-8",
        )
        status = collect_status(campaign_dir)
        assert status.canonical_chunks == 1
        assert status.worker_only_chunks == 1
        assert status.chunks_done == 2
        assert status.worker_chunks == {"w0": 1}

    def test_lease_health_flags_expiry(self, tmp_path):
        campaign_dir = tmp_path / "campaign"
        leases_dir = campaign_dir / "leases"
        leases_dir.mkdir(parents=True)
        now = time.time()
        live = Lease(
            chunk=0, start=0, stop=2, owner="w0", epoch=0,
            granted_at=now, heartbeat_at=now, deadline=now + 60.0, ttl=60.0,
        )
        stale = Lease(
            chunk=1, start=2, stop=4, owner="w1", epoch=2,
            granted_at=now - 120.0, heartbeat_at=now - 90.0,
            deadline=now - 60.0, ttl=5.0,
        )
        live.write(leases_dir)
        stale.write(leases_dir)
        status = collect_status(campaign_dir, now=now)
        by_chunk = {lease.chunk: lease for lease in status.leases}
        assert not by_chunk[0].expired
        assert by_chunk[1].expired
        assert by_chunk[1].owner == "w1"
        assert by_chunk[1].epoch == 2
        assert by_chunk[1].heartbeat_age >= 90.0

    def test_torn_telemetry_lines_counted_not_fatal(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        (span_file,) = (campaign_dir / "telemetry").glob("spans-*.jsonl")
        with open(span_file, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "name": "to')
        status = collect_status(campaign_dir)
        assert status.dropped_telemetry_lines == 1
        assert "torn line(s) dropped" in render_status(status)


class TestRecentThroughput:
    """The sliding-window rate: a stall must show a dip, which the
    all-time average structurally cannot."""

    @staticmethod
    def write_spans(campaign_dir, records):
        telemetry_dir = campaign_dir / "telemetry"
        telemetry_dir.mkdir(parents=True, exist_ok=True)
        with open(telemetry_dir / "spans-w0-1.jsonl", "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    @staticmethod
    def evaluate_span(t0, dt=0.5, rows=10):
        return {
            "kind": "span", "name": "evaluate", "t0": t0, "dt": dt,
            "depth": 0, "span": 1, "owner": "w0", "pid": 1,
            "attrs": {"rows": rows},
        }

    def test_stall_dips_to_zero_while_all_time_stays_flat(self, tmp_path):
        campaign_dir = tmp_path / "campaign"
        now = 1_000_000.0
        # Rows finished long ago; the worker has been stalled for 5 minutes.
        self.write_spans(
            campaign_dir,
            [self.evaluate_span(now - 400.0), self.evaluate_span(now - 350.0)],
        )
        status = collect_status(campaign_dir, now=now)
        assert status.recent_rows_per_second == 0.0

    def test_recent_rate_counts_only_window_rows(self, tmp_path):
        campaign_dir = tmp_path / "campaign"
        now = 1_000_000.0
        self.write_spans(
            campaign_dir,
            [
                self.evaluate_span(now - 400.0, rows=1000),  # outside the window
                self.evaluate_span(now - 20.0, rows=30),
                self.evaluate_span(now - 10.0, rows=30),
            ],
        )
        status = collect_status(campaign_dir, now=now)
        # 60 rows over the 30s window, not 1060 over the whole run.
        assert status.recent_rows_per_second == 60.0 / 30.0

    def test_young_campaign_rated_over_its_own_age(self, tmp_path):
        campaign_dir = tmp_path / "campaign"
        now = 1_000_000.0
        self.write_spans(campaign_dir, [self.evaluate_span(now - 5.0, dt=1.0, rows=50)])
        status = collect_status(campaign_dir, now=now)
        assert status.recent_rows_per_second == 50.0 / 5.0

    def test_work_spans_do_not_double_count(self, tmp_path):
        """Detached `work` spans nest the evaluation; only `evaluate`
        spans carry countable rows."""
        campaign_dir = tmp_path / "campaign"
        now = 1_000_000.0
        work = {
            "kind": "span", "name": "work", "t0": now - 10.0, "dt": 1.0,
            "depth": 0, "span": 2, "owner": "w0", "pid": 1, "attrs": {"rows": 40},
        }
        records = [self.evaluate_span(now - 10.0, rows=40), work]
        self.write_spans(campaign_dir, records)
        status = collect_status(campaign_dir, now=now)
        assert status.recent_rows_per_second == 40.0 / 10.0

    def test_no_evaluations_yields_none(self, tmp_path):
        status = collect_status(tmp_path / "nowhere")
        assert status.recent_rows_per_second is None

    def test_render_shows_recent_rate_mid_campaign(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "store"
        campaign_dir = store / spec_hash(spec)
        telemetry = Telemetry(campaign_dir / "telemetry", owner="main", mode="on")
        with activate(telemetry):
            run_campaign(spec, store, chunk_size=2, max_chunks=1)
        text = render_status(collect_status(campaign_dir))
        assert "rows/s all-time" in text
        assert "rows/s last 30s" in text

    def test_render_omits_recent_rate_when_finished(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        text = render_status(collect_status(campaign_dir))
        assert "rows/s all-time" in text
        assert "last 30s" not in text


class TestRenderStatus:
    def test_renders_progress_and_phases(self, tmp_path):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        text = render_status(collect_status(campaign_dir))
        assert "chunks: 2/2 canonical" in text
        assert "[complete]" in text
        assert f"rows persisted: {spec.scenario_count}" in text
        assert "phases:" in text
        assert "kernel batch_scenario:" in text

    def test_no_telemetry_hint(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "store", chunk_size=2)
        text = render_status(collect_status(tmp_path / "store" / spec_hash(spec)))
        assert "telemetry: none recorded" in text
        assert "chunks: 2/2 canonical" in text


class TestFollowStatus:
    def test_bounded_follow_renders_each_update(self, tmp_path, capsys):
        spec = small_spec()
        store = tmp_path / "store"
        run_campaign(spec, store, chunk_size=2, max_chunks=1)
        naps = []
        status = follow_status(
            store / spec_hash(spec), interval=0.01, max_updates=2, sleep=naps.append
        )
        out = capsys.readouterr().out
        assert out.count("chunks: 1/2 canonical") == 2
        assert naps == [0.01]
        assert not status.finished

    def test_follow_stops_when_complete(self, tmp_path, capsys):
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        status = follow_status(campaign_dir, interval=0.01, max_updates=5)
        assert status.finished
        assert capsys.readouterr().out.count("[complete]") == 1


class TestStatusCli:
    def test_status_exits_zero_without_campaign(self, tmp_path, capsys):
        assert main(["scenarios", "status", str(tmp_path / "absent")]) == 0
        assert "chunks: 0/?" in capsys.readouterr().out

    def test_status_with_space_resolves_hash(self, tmp_path, capsys):
        spec = named_space("fig12").derive(count=4)  # matches the CLI's derivation
        store = tmp_path / "store"
        telemetry = Telemetry(store / spec_hash(spec) / "telemetry", owner="main", mode="on")
        with activate(telemetry):
            run_campaign(spec, store, chunk_size=2)
        code = main(
            ["scenarios", "status", str(store), "--space", "fig12", "--count", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chunks: 2/2 canonical" in out
        assert "kernel batch_scenario:" in out

    def test_run_telemetry_flag_writes_sidecar(self, tmp_path, capsys):
        store = tmp_path / "store"
        code = main(
            [
                "scenarios", "run", "fig12", "--store", str(store),
                "--count", "4", "--chunk-size", "2", "--telemetry", "on",
            ]
        )
        assert code == 0
        capsys.readouterr()
        spec = named_space("fig12").derive(count=4)
        telemetry_dir = store / spec_hash(spec) / "telemetry"
        assert list(telemetry_dir.glob("spans-main-*.jsonl"))
        assert list(telemetry_dir.glob("metrics-main-*.json"))

    def test_show_reports_dropped_telemetry_after_torn_tail(self, tmp_path, capsys):
        """The torn-tail satellite: show pairs the store recovery report
        with the telemetry sidecar's dropped-line count."""
        store = tmp_path / "store"
        code = main(
            [
                "scenarios", "run", "fig12", "--store", str(store),
                "--count", "4", "--chunk-size", "2", "--telemetry", "on",
            ]
        )
        assert code == 0
        capsys.readouterr()
        spec = named_space("fig12").derive(count=4)
        campaign_dir = store / spec_hash(spec)
        # Tear both the store tail and a telemetry line, as one crash would.
        chunks_path = campaign_dir / "chunks.jsonl"
        intact = chunks_path.read_bytes()
        chunks_path.write_bytes(intact + b'{"chunk": 2, "start": 4,')
        (span_file,) = (campaign_dir / "telemetry").glob("spans-*.jsonl")
        with open(span_file, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span"')
        code = main(
            ["scenarios", "show", "fig12", "--store", str(store), "--count", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered on open" in out
        assert "telemetry sidecar: 1 torn line(s) dropped" in out

    def test_status_never_touches_the_store(self, tmp_path):
        """status is an observer: bytes on disk are identical afterwards."""
        spec = small_spec()
        campaign_dir, _ = run_instrumented(tmp_path, spec)
        chunks_path = campaign_dir / "chunks.jsonl"
        before = chunks_path.read_bytes()
        collect_status(campaign_dir)
        assert chunks_path.read_bytes() == before


class TestStoreUnaffected:
    def test_resume_over_instrumented_store_is_byte_identical(self, tmp_path):
        """Telemetry on for half the campaign, off for the rest — the
        store converges to the uninstrumented bytes either way."""
        spec = small_spec()
        plain_store = CampaignStore(tmp_path / "plain")
        run_campaign(spec, plain_store, chunk_size=2)
        split_store = tmp_path / "split"
        campaign_dir = split_store / spec_hash(spec)
        telemetry = Telemetry(campaign_dir / "telemetry", owner="main", mode="on")
        with activate(telemetry):
            run_campaign(spec, split_store, chunk_size=2, max_chunks=1)
        run_campaign(spec, split_store, chunk_size=2)
        plain = (tmp_path / "plain" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        assert (campaign_dir / "chunks.jsonl").read_bytes() == plain
