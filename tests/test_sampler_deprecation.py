"""Deprecation of the :mod:`repro.scenarios.sampler` facade (ISSUE 10).

The facade was the sampler's home before PR 6 moved the primitives to
:mod:`repro.workloads.sampling` (and the order-rule mirrors to
:mod:`repro.core.order_rules`).  It now warns on import — and, crucially,
no production path imports it anymore: a campaign run under
``-W error::DeprecationWarning`` must not die.
"""

from __future__ import annotations

import importlib
import os
import subprocess
import sys
import warnings

import pytest

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _python(*code: str, error_on_deprecation: bool = False) -> subprocess.CompletedProcess:
    command = [sys.executable]
    if error_on_deprecation:
        command += ["-W", "error::DeprecationWarning"]
    command += ["-c", "\n".join(code)]
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(command, capture_output=True, text=True, env=env)


class TestFacadeWarns:
    def test_import_raises_under_error_filter(self):
        result = _python("import repro.scenarios.sampler", error_on_deprecation=True)
        assert result.returncode != 0
        assert "DeprecationWarning" in result.stderr
        assert "repro.workloads.sampling" in result.stderr

    def test_in_process_warning_and_reexports_still_work(self):
        sys.modules.pop("repro.scenarios.sampler", None)
        with pytest.warns(DeprecationWarning, match="deprecated compatibility facade"):
            sampler = importlib.import_module("repro.scenarios.sampler")
        # The facade still re-exports the moved names for old callers.
        from repro.core.order_rules import ORDER_RULES
        from repro.workloads.sampling import cost_table, sample_factors

        assert sampler.sample_factors is sample_factors
        assert sampler.cost_table is cost_table
        assert sampler.ORDER_RULES is ORDER_RULES


class TestProductionPathsAreClean:
    """Campaign code must never route through the deprecated facade."""

    def test_campaign_import_chain(self):
        result = _python(
            "import repro",
            "import repro.scenarios",
            "import repro.scenarios.runner",
            "import repro.scenarios.fabric",
            "import repro.scenarios.detached",
            "import repro.scenarios.status",
            "import repro.api",
            "import repro.workloads.sampling",
            "import repro.core.order_rules",
            error_on_deprecation=True,
        )
        assert result.returncode == 0, result.stderr

    def test_campaign_run_never_imports_the_facade(self):
        result = _python(
            "import sys",
            "from repro.scenarios.spec import named_space",
            "from repro.scenarios.runner import run_campaign",
            "import tempfile",
            "spec = named_space('fig12').derive(count=3)",
            "with tempfile.TemporaryDirectory() as store:",
            "    run_campaign(spec, store)",
            "assert 'repro.scenarios.sampler' not in sys.modules, 'facade imported'",
            error_on_deprecation=True,
        )
        assert result.returncode == 0, result.stderr

    def test_suite_modules_avoid_the_facade(self):
        """No repo source module *imports* the facade anymore (grep-level
        pin; prose mentions in docstrings are fine)."""
        src = os.path.join(REPO_SRC, "repro")
        offenders = []
        for root, _dirs, files in os.walk(src):
            for name in files:
                if not name.endswith(".py") or name == "sampler.py":
                    continue
                path = os.path.join(root, name)
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
                if "import repro.scenarios.sampler" in text or (
                    "from repro.scenarios.sampler" in text
                ) or "from repro.scenarios import sampler" in text:
                    offenders.append(path)
        assert offenders == []


class TestWarningHygiene:
    def test_import_warns_exactly_once_per_process(self):
        result = _python(
            "import warnings",
            "with warnings.catch_warnings(record=True) as caught:",
            "    warnings.simplefilter('always')",
            "    import repro.scenarios.sampler",
            "    import repro.scenarios.sampler as again",
            "deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]",
            "assert len(deprecations) == 1, deprecations",
        )
        assert result.returncode == 0, result.stderr

    def test_no_warning_from_the_new_homes(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.import_module("repro.workloads.sampling")
            importlib.import_module("repro.core.order_rules")
