"""Tests for the experiment harness (Figures 8–14) and its reporting."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import fig08_linearity, fig09_trace, fig13_ratio, fig14_participation
from repro.experiments.common import FigureResult, default_noise, heuristic_campaign
from repro.experiments.registry import EXPERIMENTS, available_experiments, run_experiment
from repro.experiments.report import render_report, to_csv, to_markdown


#: Reduced campaign settings shared by the experiment tests (the quick preset
#: still takes a second or two per campaign; tests trim it further).
_TINY = {"matrix_sizes": (60, 180), "platform_count": 2, "total_tasks": 100, "workers": 5}


class TestFigureResult:
    def test_add_point_and_value(self):
        result = FigureResult(figure="f", title="t", x_label="x")
        result.add_point("a", 1.0, 2.0)
        result.add_point("a", 2.0, 3.0)
        result.add_point("b", 1.0, 5.0)
        assert result.x_values == [1.0, 2.0]
        assert result.value("a", 2.0) == pytest.approx(3.0)
        with pytest.raises(ExperimentError):
            result.value("a", 99.0)

    def test_format_table_contains_all_series(self):
        result = FigureResult(figure="f", title="demo", x_label="size")
        result.add_point("s1", 1.0, 2.0)
        result.add_point("s2", 1.0, 4.0)
        result.notes.append("a note")
        table = result.format_table()
        assert "s1" in table and "s2" in table and "a note" in table

    def test_as_dict(self):
        result = FigureResult(figure="f", title="t", x_label="x", parameters={"p": 1})
        result.add_point("a", 1.0, 2.0)
        data = result.as_dict()
        assert data["figure"] == "f"
        assert data["series"]["a"] == [(1.0, 2.0)]


class TestCampaignEngine:
    def test_campaign_produces_expected_series(self):
        result = heuristic_campaign(
            figure="test",
            title="campaign",
            campaign_kind="hetero-star",
            heuristic_names=("INC_C", "INC_W", "LIFO"),
            seed=5,
            **_TINY,
        )
        assert "INC_C lp" in result.series
        assert "INC_C real/INC_C lp" in result.series
        assert "INC_W lp/INC_C lp" in result.series
        assert "LIFO real/INC_C lp" in result.series
        # the reference LP series is identically one
        for _, value in result.series["INC_C lp"]:
            assert value == pytest.approx(1.0)
        # every x value appears in every series
        assert all(len(points) == len(_TINY["matrix_sizes"]) for points in result.series.values())

    def test_inc_w_never_beats_inc_c_in_lp(self):
        """Theorem 1's ordering result, observed through the campaign engine."""
        result = heuristic_campaign(
            figure="test",
            title="campaign",
            campaign_kind="hetero-star",
            heuristic_names=("INC_C", "INC_W"),
            seed=6,
            **_TINY,
        )
        for x in result.x_values:
            assert result.value("INC_W lp/INC_C lp", x) >= 1.0 - 1e-9

    def test_measured_times_exceed_lp_predictions(self):
        result = heuristic_campaign(
            figure="test",
            title="campaign",
            campaign_kind="homogeneous",
            heuristic_names=("INC_C",),
            seed=7,
            **_TINY,
        )
        for x in result.x_values:
            assert result.value("INC_C real/INC_C lp", x) >= 1.0 - 1e-6

    def test_requires_reference_heuristic(self):
        with pytest.raises(ExperimentError):
            heuristic_campaign(
                figure="f",
                title="t",
                campaign_kind="homogeneous",
                heuristic_names=("LIFO",),
                reference="INC_C",
                **_TINY,
            )

    def test_rejects_bad_counts(self):
        with pytest.raises(ExperimentError):
            heuristic_campaign(
                figure="f",
                title="t",
                campaign_kind="homogeneous",
                platform_count=0,
            )


class TestFig08:
    def test_linearity_of_the_simulated_network(self):
        result = fig08_linearity.run(
            message_sizes_mb=(1.0, 2.0, 4.0), comm_factors=(1.0, 2.0)
        )
        assert len(result.series) == 2
        residuals = fig08_linearity.linear_fit_residuals(result)
        assert max(residuals.values()) < 1e-9
        # doubling the size doubles the time
        series = result.series["worker 1 (x1)"]
        times = dict(series)
        assert times[2.0] == pytest.approx(2 * times[1.0])
        # a worker twice as fast is twice as quick
        fast = dict(result.series["worker 2 (x2)"])
        assert fast[1.0] == pytest.approx(times[1.0] / 2.0)

    def test_rejects_empty_inputs(self):
        with pytest.raises(ExperimentError):
            fig08_linearity.run(message_sizes_mb=(), comm_factors=(1.0,))


class TestFig09:
    def test_trace_contains_gantt_and_selection(self):
        result = fig09_trace.run(total_tasks=40)
        assert any("Gantt" in note for note in result.notes)
        enrolled = [value for _, value in result.series["enrolled"]]
        assert 1 <= sum(enrolled) <= len(enrolled)
        # not every worker participates on this deliberately skewed platform
        assert sum(enrolled) < len(enrolled)

    def test_mismatched_factors_rejected(self):
        with pytest.raises(ExperimentError):
            fig09_trace.run(comm_factors=(1.0,), comp_factors=(1.0, 2.0))


class TestFig13AndFig14:
    def test_fig13_variants(self):
        with pytest.raises(ExperimentError):
            fig13_ratio.run(variant="c")
        result_a = fig13_ratio.run(variant="a", **_TINY)
        assert result_a.figure == "fig13a"
        assert result_a.parameters["comp_scale"] == 10.0

    def test_fig14_participation_shape(self):
        results = fig14_participation.run(total_tasks=200, noisy=False)
        by_x = {result.parameters["x"]: result for result in results}
        # x = 1: the slow fourth worker is never enrolled
        assert by_x[1.0].value("nb of workers", 4) == pytest.approx(3)
        # x = 3: it is enrolled and the completion time improves (weakly)
        assert by_x[3.0].value("nb of workers", 4) == pytest.approx(4)
        assert by_x[3.0].value("lp time", 4) <= by_x[3.0].value("lp time", 3) + 1e-9
        # more available workers never hurt
        for result in results:
            times = [result.value("lp time", k) for k in (1, 2, 3, 4)]
            assert times == sorted(times, reverse=True)

    def test_fig14_rejects_bad_x(self):
        with pytest.raises(ExperimentError):
            fig14_participation.run_single(0.0)
        with pytest.raises(ExperimentError):
            fig14_participation.run(x_values=(1.0, -2.0), total_tasks=100)

    def test_fig14_batched_grid_matches_per_cell_path(self):
        """run() stacks the whole x-grid into one batched kernel call; the
        series must equal the scalar run_single panels bit for bit."""
        batched = fig14_participation.run(x_values=(1.0, 3.0), total_tasks=200)
        for panel, x in zip(batched, (1.0, 3.0)):
            single = fig14_participation.run_single(x, total_tasks=200)
            assert panel.series == single.series
            assert panel.figure == single.figure
            assert panel.parameters == single.parameters

    def test_fig14_jobs_do_not_change_series(self):
        serial = fig14_participation.run(total_tasks=200, jobs=1)
        parallel = fig14_participation.run(total_tasks=200, jobs=2)
        assert [r.series for r in serial] == [r.series for r in parallel]


class TestRegistryAndReport:
    def test_registry_lists_all_figures(self):
        assert available_experiments() == [
            "crossover",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
        ]
        assert all(spec.description for spec in EXPERIMENTS.values())

    def test_run_experiment_quick_preset(self):
        results = run_experiment("fig08", preset="quick")
        assert len(results) == 1
        assert results[0].figure == "fig08"

    def test_run_experiment_unknown_id_and_preset(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")
        with pytest.raises(ExperimentError):
            run_experiment("fig08", preset="huge")

    def test_report_rendering(self):
        results = run_experiment("fig08", preset="quick")
        csv_text = to_csv(results)
        assert csv_text.startswith("figure,series,x,y")
        assert "fig08" in csv_text
        markdown = to_markdown(results[0])
        assert markdown.startswith("### fig08")
        report = render_report(results, title="Demo")
        assert report.startswith("# Demo")

    def test_default_noise_is_reproducible(self):
        a = default_noise(3)
        b = default_noise(3)
        assert a.perturb(1.0, "send", "P1") == pytest.approx(b.perturb(1.0, "send", "P1"))
