"""Tests for the telemetry subsystem (``repro.obs``).

The load-bearing guarantees:

* **additivity** — running any campaign with telemetry on (even verbose)
  leaves ``chunks.jsonl`` byte-identical to an uninstrumented run, for
  every workload kind;
* **crash tolerance** — a span sidecar torn mid-line reloads tolerantly
  (torn lines counted, never fatal), mirroring the store's own
  torn-tail recovery;
* **multi-writer correctness** — metric snapshots from independent
  workers merge by summation (counters, histogram buckets) and
  latest-write-wins (gauges), and forked ``jobs=`` pool workers re-home
  to their own per-pid sidecar files with intact span nesting.
"""

from __future__ import annotations

import os

import pytest

from repro.obs import (
    MetricsRegistry,
    Telemetry,
    activate,
    active,
    configure_logging,
    enabled,
    get_logger,
    merge_snapshots,
    read_jsonl_tolerant,
    read_metric_snapshots,
    read_spans,
    write_snapshot,
)
from repro.scenarios.runner import run_campaign
from repro.scenarios.spec import named_space


def small_space(kind: str):
    if kind == "matrix":
        return named_space("fig12").derive(name="obs-matrix", count=4, matrix_sizes=(40, 120))
    if kind == "two-port":
        return named_space("fig12-twoport").derive(
            name="obs-twoport", count=3, matrix_sizes=(40, 120)
        )
    if kind == "bus":
        return named_space("bus-hetero").derive(name="obs-bus", count=4)
    if kind == "probe":
        return named_space("fig08-probe").derive(name="obs-probe")
    raise AssertionError(kind)


class TestSpanSidecar:
    def test_round_trip_with_nesting_and_attributes(self, tmp_path):
        telemetry = Telemetry(tmp_path / "telemetry", owner="t0", mode="on")
        with activate(telemetry):
            with telemetry.span("outer", chunk=3) as outer:
                with telemetry.span("inner"):
                    pass
                outer.set(rows=7)
        spans, dropped = read_spans(tmp_path / "telemetry")
        assert dropped == 0
        by_name = {record["name"]: record for record in spans}
        assert by_name["outer"]["attrs"] == {"chunk": 3, "rows": 7}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["inner"]["t0"] >= by_name["outer"]["t0"]
        assert all(record["owner"] == "t0" for record in spans)

    def test_crash_mid_line_reloads_tolerantly(self, tmp_path):
        """A sidecar torn mid-write drops exactly the torn line."""
        telemetry = Telemetry(tmp_path / "telemetry", owner="t0", mode="on")
        for index in range(3):
            with telemetry.span("work", chunk=index):
                pass
        telemetry.close()
        (span_file,) = (tmp_path / "telemetry").glob("spans-*.jsonl")
        intact = span_file.read_text(encoding="utf-8")
        # Simulate a crash mid-append: the last line is half-written.
        span_file.write_text(intact + '{"kind": "span", "name": "to', encoding="utf-8")
        spans, dropped = read_spans(tmp_path / "telemetry")
        assert [record["attrs"]["chunk"] for record in spans] == [0, 1, 2]
        assert dropped == 1

    def test_span_records_error_attribute(self, tmp_path):
        telemetry = Telemetry(tmp_path / "telemetry", owner="t0", mode="on")
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        spans, _ = read_spans(tmp_path / "telemetry")
        assert spans[0]["attrs"]["error"] == "ValueError"

    def test_write_failure_disables_not_raises(self, tmp_path):
        """Failure policy: telemetry must never abort the campaign."""
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the directory should go", encoding="utf-8")
        telemetry = Telemetry(blocked / "telemetry", owner="t0", mode="on")
        with telemetry.span("work"):
            pass
        assert not telemetry.enabled

    def test_read_jsonl_tolerant_never_raises(self, tmp_path):
        records, dropped = read_jsonl_tolerant(tmp_path / "absent.jsonl")
        assert records == [] and dropped == 0
        path = tmp_path / "mixed.jsonl"
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n', encoding="utf-8")
        records, dropped = read_jsonl_tolerant(path)
        assert [record["ok"] for record in records] == [1, 2]
        assert dropped == 1


class TestMetricsMerge:
    def test_merge_across_two_worker_stores(self, tmp_path):
        """Two workers' snapshots merge: counters sum, buckets add."""
        telemetry_dir = tmp_path / "telemetry"
        telemetry_dir.mkdir()
        for owner, chunks, seconds in (("w0", 3, 0.2), ("w1", 5, 0.4)):
            registry = MetricsRegistry()
            registry.counter_add("worker.completed", chunks)
            registry.gauge_set("campaign.total_chunks", 8)
            registry.observe("span.work.seconds", seconds)
            write_snapshot(
                telemetry_dir / f"metrics-{owner}-1.json", registry.snapshot(owner)
            )
        snapshots = read_metric_snapshots(telemetry_dir)
        assert len(snapshots) == 2
        merged = merge_snapshots(snapshots)
        assert merged["counters"]["worker.completed"] == 8
        assert merged["gauges"]["campaign.total_chunks"] == 8
        histogram = merged["histograms"]["span.work.seconds"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(0.6)
        assert sum(histogram["counts"]) == 2
        assert sorted(merged["owners"]) == ["w0", "w1"]

    def test_torn_snapshot_is_skipped(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        telemetry_dir.mkdir()
        (telemetry_dir / "metrics-torn-1.json").write_text('{"at": 1,', encoding="utf-8")
        registry = MetricsRegistry()
        registry.counter_add("ok", 1)
        write_snapshot(telemetry_dir / "metrics-good-1.json", registry.snapshot("good"))
        merged = merge_snapshots(read_metric_snapshots(telemetry_dir))
        assert merged["counters"] == {"ok": 1}


class TestAmbientActivation:
    def test_null_sink_absorbs_everything_when_inactive(self):
        telemetry = active()
        assert not telemetry.enabled and not enabled()
        with telemetry.span("ignored") as span:
            span.set(rows=1)
        telemetry.counter("ignored")
        telemetry.kernel_call("ignored", pivots=1)

    def test_activation_restores_previous_emitter(self, tmp_path):
        first = Telemetry(tmp_path / "a", owner="a", mode="on")
        second = Telemetry(tmp_path / "b", owner="b", mode="on")
        with activate(first):
            assert active() is first
            with activate(second):
                assert active() is second
            assert active() is first
        assert not active().enabled

    def test_off_mode_activates_null_sink(self, tmp_path):
        with activate(Telemetry(tmp_path / "t", owner="x", mode="off")) as telemetry:
            assert not telemetry.enabled
        assert not (tmp_path / "t").exists()


class TestProcessPoolPropagation:
    def test_span_nesting_under_jobs_pool(self, tmp_path):
        """Forked pool workers re-home to per-pid files; nesting survives."""
        spec = small_space("matrix")
        telemetry = Telemetry(tmp_path / "telemetry", owner="main", mode="on")
        with activate(telemetry):
            progress = run_campaign(spec, tmp_path / "store", chunk_size=1, jobs=2)
        assert progress.finished
        spans, dropped = read_spans(tmp_path / "telemetry")
        assert dropped == 0
        pids = {record["pid"] for record in spans}
        assert len(pids) > 1, "pool workers should write their own sidecar files"
        assert os.getpid() in pids, "the parent writes queue/append spans"
        evaluates = [record for record in spans if record["name"] == "evaluate"]
        assert {record["attrs"]["workload"] for record in evaluates} == {"matrix"}
        solves = [record for record in spans if record["name"] == "solve"]
        evaluate_ids = {(record["pid"], record["span"]) for record in evaluates}
        for solve in solves:
            assert solve["depth"] == 1
            assert (solve["pid"], solve["parent"]) in evaluate_ids
        snapshots = read_metric_snapshots(tmp_path / "telemetry")
        merged = merge_snapshots(snapshots)
        assert merged["counters"]["campaign.chunks_completed"] == spec.family.count
        assert merged["counters"]["kernel.batch_scenario.calls"] >= 1


class TestBitIdentity:
    @pytest.mark.parametrize("kind", ["matrix", "two-port", "bus", "probe"])
    def test_chunks_identical_with_telemetry_on(self, tmp_path, kind):
        """The tentpole guarantee: instrumentation is invisible in the store."""
        spec = small_space(kind)
        run_campaign(spec, tmp_path / "plain", chunk_size=2)
        telemetry = Telemetry(tmp_path / "telemetry", owner="main", mode="verbose")
        with activate(telemetry):
            run_campaign(spec, tmp_path / "instrumented", chunk_size=2)
        (plain,) = (tmp_path / "plain").glob("*/chunks.jsonl")
        (instrumented,) = (tmp_path / "instrumented").glob("*/chunks.jsonl")
        assert plain.read_bytes() == instrumented.read_bytes()
        spans, _ = read_spans(tmp_path / "telemetry")
        assert spans, "the instrumented run should have emitted spans"


class TestKernelProfile:
    def test_batched_kernels_report_pivots_and_occupancy(self, tmp_path):
        spec = small_space("two-port")
        telemetry = Telemetry(tmp_path / "telemetry", owner="main", mode="on")
        with activate(telemetry):
            run_campaign(spec, tmp_path / "store", chunk_size=2)
        merged = merge_snapshots(read_metric_snapshots(tmp_path / "telemetry"))
        counters = merged["counters"]
        assert counters["kernel.batch_twoport.calls"] >= 1
        assert counters["kernel.batch_twoport.pivots"] > 0
        assert 0 < counters["kernel.batch_twoport.active_slots"] <= (
            counters["kernel.batch_twoport.mask_slots"]
        )
        assert counters["sampler.batches"] >= 1

    def test_verbose_mode_emits_per_call_kernel_records(self, tmp_path):
        spec = small_space("matrix")
        telemetry = Telemetry(tmp_path / "telemetry", owner="main", mode="verbose")
        with activate(telemetry):
            run_campaign(spec, tmp_path / "store", chunk_size=2)
        records, _ = read_spans(tmp_path / "telemetry")
        kernel_records = [r for r in records if r.get("kind") == "kernel"]
        assert kernel_records
        assert all(r["kernel"] == "batch_scenario" for r in kernel_records)
        assert all(r["pivots"] > 0 for r in kernel_records)


class TestStructuredLogging:
    def test_key_value_context_appended(self, caplog):
        logger = get_logger("repro.obs_test")
        with caplog.at_level("INFO", logger="repro.obs_test"):
            logger.info("lease expired", owner="w0", epoch=3, chunk=7)
        assert caplog.records[-1].message == "lease expired owner=w0 epoch=3 chunk=7"

    def test_percent_interpolation_still_works(self, caplog):
        logger = get_logger("repro.obs_test")
        with caplog.at_level("WARNING", logger="repro.obs_test"):
            logger.warning("retry %d", 2, chunk=5)
        assert caplog.records[-1].message == "retry 2 chunk=5"

    def test_configure_logging_sets_threshold(self):
        configure_logging("error")
        try:
            logger = get_logger("repro.obs_test")
            assert not logger.isEnabledFor(30)  # WARNING suppressed
            assert logger.isEnabledFor(40)
        finally:
            configure_logging("warning")

    def test_values_with_spaces_are_quoted(self, caplog):
        logger = get_logger("repro.obs_test")
        with caplog.at_level("INFO", logger="repro.obs_test"):
            logger.info("note", detail="two words")
        assert "detail='two words'" in caplog.records[-1].message


class TestForkSafety:
    def test_forked_child_rehomes_files(self, tmp_path):
        telemetry = Telemetry(tmp_path / "telemetry", owner="main", mode="on")
        with telemetry.span("parent"):
            pass
        pid = os.fork()
        if pid == 0:
            # Child: emit and exit without touching the parent's handle.
            try:
                with telemetry.span("child"):
                    pass
                telemetry.flush()
            finally:
                os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 0
        spans, _ = read_spans(tmp_path / "telemetry")
        by_name = {record["name"]: record for record in spans}
        assert by_name["child"]["pid"] != by_name["parent"]["pid"]
        files = sorted(path.name for path in (tmp_path / "telemetry").glob("spans-*.jsonl"))
        assert len(files) == 2


class TestTraceCorrelation:
    def test_adopted_trace_stamps_every_span(self, tmp_path):
        from repro.obs import new_trace_id

        telemetry = Telemetry(tmp_path / "telemetry", owner="t0", mode="on")
        trace = new_trace_id()
        telemetry.adopt_trace(trace, "coordinator:1:1")
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        telemetry.flush()
        spans, _ = read_spans(tmp_path / "telemetry")
        by_name = {record["name"]: record for record in spans}
        assert all(record["trace"] == trace for record in spans)
        # Only depth-0 spans carry the cross-process parent ref; deeper
        # spans chain to it through their in-process parent ids.
        assert by_name["outer"]["cparent"] == "coordinator:1:1"
        assert "cparent" not in by_name["inner"]
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]

    def test_span_ref_round_trip(self):
        from repro.obs import parse_ref, span_ref

        assert parse_ref(span_ref("host-3", 123, 7)) == ("host-3", 123, 7)
        assert parse_ref("garbage") is None
        assert parse_ref(None) is None

    def test_trace_context_snapshot_and_rebuild(self, tmp_path):
        from repro.obs import install, install_in_worker, new_trace_id, trace_context

        telemetry = Telemetry(tmp_path / "telemetry", owner="parent", mode="on")
        telemetry.adopt_trace(new_trace_id())
        with telemetry.span("root"):
            context = trace_context(telemetry)
        assert context["trace"] == telemetry.trace_id
        assert context["parent"] is not None
        # Nothing active: install_in_worker rebuilds a telemetry from the
        # context (the spawn-start path) and installs it ambiently.
        try:
            install_in_worker(context)
            rebuilt = active()
            assert rebuilt.enabled
            assert rebuilt.trace_id == context["trace"]
            assert rebuilt.trace_parent == context["parent"]
            with rebuilt.span("work"):
                pass
            rebuilt.flush()
        finally:
            install(None)
        spans, _ = read_spans(tmp_path / "telemetry")
        work = next(record for record in spans if record["name"] == "work")
        assert work["trace"] == context["trace"]
        assert work["cparent"] == context["parent"]

    def test_disabled_telemetry_yields_no_context(self, tmp_path):
        from repro.obs import trace_context

        assert trace_context(active()) is None
        untraced = Telemetry(tmp_path / "telemetry", owner="t0", mode="on")
        assert trace_context(untraced) is None


class TestSidecarRotation:
    def test_span_file_rotates_at_threshold(self, tmp_path):
        telemetry = Telemetry(
            tmp_path / "telemetry", owner="r0", mode="on", rotate_bytes=512
        )
        for index in range(50):
            with telemetry.span("tick", index=index):
                pass
        telemetry.flush()
        files = sorted((tmp_path / "telemetry").glob("spans-*.jsonl"))
        assert len(files) > 1
        rotated = [path for path in files if path.stem.split(".")[-1].isdigit()]
        assert rotated
        assert all(path.stat().st_size <= 1024 for path in files)
        # The tolerant reader sees every segment through the same glob.
        spans, dropped = read_spans(tmp_path / "telemetry")
        assert dropped == 0
        assert len(spans) == 50
        assert sorted(record["attrs"]["index"] for record in spans) == list(range(50))
        snapshots = read_metric_snapshots(tmp_path / "telemetry")
        counters = merge_snapshots(snapshots)["counters"]
        assert counters["telemetry.rotated_files"] == len(rotated)

    def test_no_rotation_below_threshold(self, tmp_path):
        telemetry = Telemetry(tmp_path / "telemetry", owner="r1", mode="on")
        for _ in range(10):
            with telemetry.span("tick"):
                pass
        telemetry.flush()
        assert len(list((tmp_path / "telemetry").glob("spans-*.jsonl"))) == 1


def test_obs_is_stdlib_only():
    """The observability plane must not import numpy or repro.scenarios.

    (``import repro.obs`` necessarily executes the top-level ``repro``
    package, which re-exports the numpy-backed core models — so the pin
    is on the ``repro.obs`` sources themselves.)
    """
    import ast
    from pathlib import Path

    import repro.obs

    package_dir = Path(repro.obs.__file__).parent
    for source in sorted(package_dir.glob("*.py")):
        tree = ast.parse(source.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            for name in names:
                assert not name.startswith("numpy"), f"{source.name} imports {name}"
                if name.startswith("repro"):
                    assert name.startswith("repro.obs"), f"{source.name} imports {name}"
