"""Tests of the generic sweep engine and the batched measurement path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.common import default_noise
from repro.experiments.sweep_engine import (
    SweepTimeoutError,
    resolve_jobs,
    run_chunked,
    run_sweep,
)
from repro.simulation.executor import (
    measure_heuristic,
    prepare_measurement,
)
from repro.core.heuristics import compare_heuristics
from repro.simulation.noise import (
    AffineOverhead,
    ComposedNoise,
    GaussianJitter,
    NoJitter,
    UniformJitter,
    perturb_sequence,
)
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors


def _double(value):
    return 2 * value


def _indexed_doubler(chunk):
    return [(index, 2 * item) for index, item in chunk]


def _sleepy_doubler(chunk):
    import time

    time.sleep(5.0)
    return [(index, 2 * item) for index, item in chunk]


def _sleep_briefly(value):
    import time

    time.sleep(0.05)
    return 2 * value


class TestResolveJobs:
    def test_none_means_cpu_count(self):
        assert resolve_jobs(None) >= 1

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ExperimentError):
            resolve_jobs(0)


class TestRunSweep:
    def test_results_in_item_order(self):
        assert run_sweep(_double, [3, 1, 2]) == [6, 2, 4]

    def test_empty_items(self):
        assert run_sweep(_double, []) == []

    def test_process_pool_matches_serial(self):
        items = list(range(7))
        assert run_sweep(_double, items, jobs=2) == run_sweep(_double, items)

    def test_cache_key_memoises_per_chunk(self):
        calls = []

        def record(item):
            calls.append(item)
            return item

        results = run_sweep(record, [1, 1, 2, 1], cache_key=lambda item: item)
        assert results == [1, 1, 2, 1]
        assert calls == [1, 2]  # the duplicates hit the chunk memo


class TestRunChunked:
    def test_chunk_worker_sees_indices(self):
        assert run_chunked(_indexed_doubler, [5, 6], jobs=1) == [10, 12]

    def test_missing_results_are_detected(self):
        def broken(chunk):
            return [(index, item) for index, item in chunk[:-1]]

        with pytest.raises(ExperimentError):
            run_chunked(broken, [1, 2, 3])


class TestTimeoutAwareFutures:
    """``timeout`` bounds a hung chunk; healthy sweeps never trip it."""

    def test_hung_chunk_raises_sweep_timeout(self):
        with pytest.raises(SweepTimeoutError) as excinfo:
            run_chunked(_sleepy_doubler, [1, 2, 3, 4], jobs=2, timeout=0.2)
        assert excinfo.value.pending >= 1
        assert "timed out" in str(excinfo.value)

    def test_healthy_sweep_is_untouched_by_generous_timeout(self):
        items = list(range(6))
        assert run_sweep(_sleep_briefly, items, jobs=2, timeout=30.0) == [
            2 * item for item in items
        ]

    def test_timeout_is_inert_on_the_inline_path(self):
        # jobs=1 runs inline: nothing to interrupt, timeout ignored.
        assert run_chunked(_indexed_doubler, [5, 6], jobs=1, timeout=0.001) == [10, 12]

    def test_sweep_timeout_is_an_experiment_error(self):
        assert issubclass(SweepTimeoutError, ExperimentError)


class TestPreparedMeasurement:
    """The campaign fast path must match measure_heuristic bit for bit."""

    @pytest.mark.parametrize("seed", (0, 1, 2))
    @pytest.mark.parametrize("heuristic", ("INC_C", "INC_W", "LIFO"))
    def test_measure_matches_measure_heuristic(self, seed, heuristic):
        factors = campaign_factors("hetero-star", 1, size=7, seed=seed)[0]
        platform = factors.platform(MatrixProductWorkload(100 + 20 * seed))
        evaluation = compare_heuristics(platform, (heuristic,))[heuristic]
        prepared = prepare_measurement(evaluation, 1000)
        for noise_seed in range(3):
            fast = prepared.measure(default_noise(noise_seed))
            reference = measure_heuristic(
                evaluation, 1000, noise=default_noise(noise_seed), collect_trace=False
            )
            assert fast == reference.measured_makespan

    def test_noise_free_measurement(self):
        factors = campaign_factors("hetero-star", 1, size=5, seed=9)[0]
        platform = factors.platform(MatrixProductWorkload(80))
        evaluation = compare_heuristics(platform, ("INC_C",))["INC_C"]
        prepared = prepare_measurement(evaluation, 500)
        reference = measure_heuristic(evaluation, 500, noise=None, collect_trace=False)
        assert prepared.measure(None) == reference.measured_makespan


class TestPerturbSequence:
    """Vectorised noise must consume the random stream like scalar calls."""

    _CASES = (
        NoJitter(),
        AffineOverhead(comm_latency=0.5, compute_latency=0.25),
    )

    def _operations(self, count=150):
        rng = np.random.default_rng(7)
        durations = rng.uniform(0.0, 5.0, count)
        kinds = [("send", "compute", "return")[i % 3] for i in range(count)]
        workers = [f"P{i % 5}" for i in range(count)]
        return durations, kinds, workers

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: NoJitter(),
            lambda: AffineOverhead(comm_latency=0.5, compute_latency=0.25),
            lambda: UniformJitter(amplitude=0.05, comm_amplitude=0.2, seed=123),
            lambda: GaussianJitter(sigma=0.1, seed=123),
            lambda: ComposedNoise(
                UniformJitter(amplitude=0.05, seed=5), AffineOverhead(comm_latency=0.1)
            ),
        ],
    )
    def test_stream_identical_to_scalar_calls(self, factory):
        durations, kinds, workers = self._operations()
        vector_model = factory()
        scalar_model = factory()
        vectorised = perturb_sequence(vector_model, durations, kinds, workers)
        scalar = [
            scalar_model.perturb(float(duration), kind, worker)
            for duration, kind, worker in zip(durations, kinds, workers)
        ]
        assert vectorised.tolist() == scalar
        # ...and both models are left in the same state for the next draw
        assert vector_model.perturb(1.0, "send", "P0") == scalar_model.perturb(
            1.0, "send", "P0"
        )

    def test_split_draws_match_one_shot(self):
        """Consuming the sequence in two halves equals one shot."""
        durations, kinds, workers = self._operations(101)
        one = UniformJitter(amplitude=0.1, seed=3)
        two = UniformJitter(amplitude=0.1, seed=3)
        whole = perturb_sequence(one, durations, kinds, workers)
        halves = np.concatenate(
            [
                perturb_sequence(two, durations[:40], kinds[:40], workers[:40]),
                perturb_sequence(two, durations[40:], kinds[40:], workers[40:]),
            ]
        )
        assert whole.tolist() == halves.tolist()

    def test_composed_multi_stateful_falls_back_to_scalar_order(self):
        durations, kinds, workers = self._operations(30)
        vector_model = ComposedNoise(
            UniformJitter(amplitude=0.05, seed=1), GaussianJitter(sigma=0.05, seed=2)
        )
        scalar_model = ComposedNoise(
            UniformJitter(amplitude=0.05, seed=1), GaussianJitter(sigma=0.05, seed=2)
        )
        assert not vector_model.stateless
        vectorised = perturb_sequence(vector_model, durations, kinds, workers)
        scalar = [
            scalar_model.perturb(float(duration), kind, worker)
            for duration, kind, worker in zip(durations, kinds, workers)
        ]
        assert vectorised.tolist() == scalar


class TestCampaignEngineAgainstReferencePath:
    """The array-level campaign evaluation equals the public reference path."""

    def test_prepared_cell_measure_matches_reference(self):
        """The scalar cell replay equals measure_heuristic per heuristic."""
        from repro.experiments.campaign_engine import CampaignSpec, _prepare_chunk

        spec = CampaignSpec(
            heuristic_names=("INC_C", "LIFO"),
            matrix_sizes=(100,),
            total_tasks=250,
            seed=4,
            reference="INC_C",
            noise_factory=default_noise,
        )
        factors = campaign_factors("hetero-star", 1, size=5, seed=4)[0]
        cells = _prepare_chunk(spec, [(0, factors)])
        cell = cells[(factors.comm, factors.comp, 100)]
        measured = cell.measure(default_noise(77))

        platform = factors.platform(MatrixProductWorkload(100))
        evaluations = compare_heuristics(platform, spec.heuristic_names)
        noise = default_noise(77)
        for name, makespan in zip(spec.heuristic_names, measured):
            report = measure_heuristic(
                evaluations[name], spec.total_tasks, noise=noise, collect_trace=False
            )
            assert makespan == report.measured_makespan

    def test_chunk_ratios_match_scalar_reference(self):
        from repro.experiments.campaign_engine import CampaignSpec, _run_chunk

        spec = CampaignSpec(
            heuristic_names=("INC_C", "INC_W", "LIFO"),
            matrix_sizes=(60, 140),
            total_tasks=300,
            seed=11,
            reference="INC_C",
            noise_factory=default_noise,
        )
        factor_sets = campaign_factors("hetero-star", 3, size=6, seed=11)
        chunk = list(enumerate(factor_sets))
        engine = dict(_run_chunk(spec, chunk))

        for platform_index, factors in chunk:
            for size in spec.matrix_sizes:
                platform = factors.platform(
                    MatrixProductWorkload(size), name=f"{factors.label}-s{size}"
                )
                evaluations = compare_heuristics(platform, spec.heuristic_names)
                reference_time = evaluations["INC_C"].makespan_for(spec.total_tasks)
                noise = spec.noise_factory(spec.noise_seed(platform_index, size))
                for name in spec.heuristic_names:
                    evaluation = evaluations[name]
                    lp_time = evaluation.makespan_for(spec.total_tasks)
                    report = measure_heuristic(
                        evaluation, spec.total_tasks, noise=noise, collect_trace=False
                    )
                    assert engine[platform_index][(f"{name} lp", size)] == (
                        lp_time / reference_time
                    )
                    assert engine[platform_index][(f"{name} real", size)] == (
                        report.measured_makespan / reference_time
                    )
