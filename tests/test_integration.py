"""End-to-end integration tests crossing every layer of the library.

These tests exercise the full pipeline used by the paper's evaluation:
random platform → heuristic (LP) schedule → integer rounding → execution on
the simulated cluster (both through the schedule executor and through the
MPI-style runtime) → comparison against the LP prediction.
"""

from __future__ import annotations

import pytest

from repro import (
    Worker,
    StarPlatform,
    best_schedule_by_enumeration,
    compare_heuristics,
    optimal_bus_throughput,
    optimal_fifo_schedule,
    optimal_lifo_schedule,
)
from repro.core.rounding import integer_load_schedule
from repro.experiments.common import default_noise
from repro.runtime.matrix_app import campaign_from_schedule
from repro.simulation.executor import execute_schedule, measure_heuristic
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors, participation_platform


class TestEndToEndPipeline:
    def test_lp_rounding_simulation_consistency(self):
        """LP prediction, rounded dispatch and DES measurement line up."""
        workload = MatrixProductWorkload(160)
        factors = campaign_factors("hetero-star", 1, size=6, seed=42)[0]
        platform = factors.platform(workload)
        results = compare_heuristics(platform, ("INC_C", "INC_W", "LIFO"))

        total = 500
        for name, heuristic in results.items():
            report = measure_heuristic(heuristic, total)
            predicted = heuristic.makespan_for(total)
            assert report.predicted_makespan == pytest.approx(predicted)
            # without noise, only the integer rounding separates the two numbers
            assert report.measured_makespan == pytest.approx(predicted, rel=0.05)
            assert report.measured_makespan >= predicted - 1e-9

    def test_executor_and_runtime_agree_for_every_heuristic(self):
        workload = MatrixProductWorkload(120)
        factors = campaign_factors("hetero-star", 1, size=5, seed=7)[0]
        platform = factors.platform(workload)
        total = 300
        for name, heuristic in compare_heuristics(platform, ("INC_C", "LIFO")).items():
            executor_report = measure_heuristic(heuristic, total)
            campaign = campaign_from_schedule(
                workload, factors.comm, factors.comp, heuristic.schedule, total
            )
            assert campaign.makespan == pytest.approx(
                executor_report.measured_makespan, rel=1e-9
            ), name

    def test_lp_ranking_survives_measurement_noise(self):
        """The LP ranks the heuristics; noisy measurements keep the order."""
        workload = MatrixProductWorkload(200)
        factors = campaign_factors("hetero-star", 1, size=8, seed=11)[0]
        platform = factors.platform(workload)
        results = compare_heuristics(platform, ("INC_C", "INC_W"))
        noise = default_noise(3)
        measured = {
            name: measure_heuristic(heuristic, 800, noise=noise).measured_makespan
            for name, heuristic in results.items()
        }
        predicted = {name: heuristic.makespan_for(800) for name, heuristic in results.items()}
        assert predicted["INC_C"] <= predicted["INC_W"] + 1e-9
        # the measured ranking matches the prediction within the noise envelope
        assert measured["INC_C"] <= measured["INC_W"] * 1.2

    def test_participation_pipeline(self):
        """Section 5.3.4 end to end: selection + execution on the runtime."""
        workload = MatrixProductWorkload(400)
        platform = participation_platform(1.0, workload)
        solution = optimal_fifo_schedule(platform)
        assert solution.participants == ["P1", "P2", "P3"]
        campaign = campaign_from_schedule(
            workload, (10.0, 8.0, 8.0, 1.0), (9.0, 9.0, 10.0, 1.0), solution.schedule, 200
        )
        assert campaign.tasks["P4"] == 0
        assert campaign.total_tasks == 200

    def test_theorem2_closed_form_against_simulation(self):
        """A bus schedule built from Theorem 2 completes exactly at its deadline."""
        workload = MatrixProductWorkload(100)
        platform = workload.platform([1.0] * 6, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0], name="bus")
        assert platform.is_bus
        rho = optimal_bus_throughput(platform)
        solution = optimal_fifo_schedule(platform)
        assert solution.throughput == pytest.approx(rho, rel=1e-6)
        report = execute_schedule(solution.schedule)
        assert report.measured_makespan <= 1.0 + 1e-7

    def test_rounded_schedule_remains_feasible_under_two_port(self):
        platform = StarPlatform(
            [
                Worker("P1", c=0.002, w=0.05, d=0.001),
                Worker("P2", c=0.004, w=0.03, d=0.002),
                Worker("P3", c=0.003, w=0.08, d=0.0015),
            ]
        )
        solution = optimal_fifo_schedule(platform)
        rounded = integer_load_schedule(solution.schedule.scaled_to_total_load(250), 250)
        report = execute_schedule(rounded)
        assert report.measured_makespan == pytest.approx(rounded.makespan(), rel=1e-9)

    def test_fifo_and_lifo_are_both_dominated_by_best_permutation_pair(self):
        """The open problem of the paper: mixed permutation pairs can win."""
        platform = StarPlatform(
            [
                Worker("P1", c=1.0, w=5.0, d=0.5),
                Worker("P2", c=2.0, w=3.0, d=1.0),
                Worker("P3", c=1.5, w=4.0, d=0.75),
            ]
        )
        fifo = optimal_fifo_schedule(platform).throughput
        lifo = optimal_lifo_schedule(platform).throughput
        best = best_schedule_by_enumeration(platform).throughput
        assert best >= max(fifo, lifo) - 1e-9
