"""Tests for the fault-tolerant multi-worker campaign fabric.

The load-bearing guarantee: for every deterministic fault-injection
schedule in the matrix — crash-before-fsync (torn write), crash-after-
append, hang + lease expiry, poisoned chunk, abandoned lease — a
multi-worker run (followed by heal + merge where the schedule leaves
leftovers) produces a ``chunks.jsonl`` **byte-identical** to an
uninterrupted single-writer campaign, and bit-identical aggregates.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios.fabric import (
    ChunkFault,
    FaultInjector,
    FaultPolicy,
    Lease,
    heal_campaign,
    lease_directory,
    merge_worker_stores,
    read_leases,
    run_fabric_campaign,
    worker_directory,
)
from repro.scenarios.runner import evaluate_range, run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.scenarios.store import CampaignState


def small_spec(name="fabric-small", count=6, sizes=(40, 120), noise=None):
    return named_space("fig12").derive(name=name, count=count, matrix_sizes=sizes, noise=noise)


def fast_policy(**overrides):
    defaults = dict(
        max_attempts=3,
        backoff_base=0.01,
        backoff_factor=2.0,
        backoff_cap=0.05,
        timeout=10.0,
        poll_interval=0.01,
    )
    defaults.update(overrides)
    return FaultPolicy(**defaults)


def store_bytes(root, spec):
    return (root / spec_hash(spec) / "chunks.jsonl").read_bytes()


class TestFaultPolicy:
    """The retry/backoff policy in isolation (no processes involved)."""

    def test_backoff_schedule_is_deterministic(self):
        policy = FaultPolicy(
            max_attempts=4, backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3
        )
        assert policy.backoff_schedule() == (0.1, 0.2, 0.3)
        assert policy.backoff(10) == 0.3  # capped

    def test_run_retries_then_succeeds(self):
        sleeps: list[float] = []
        calls: list[int] = []

        def attempt(attempt_index):
            calls.append(attempt_index)
            if attempt_index < 2:
                raise ExperimentError("flaky")
            return "ok"

        policy = FaultPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0)
        assert policy.run(attempt, sleep=sleeps.append) == "ok"
        assert calls == [0, 1, 2]
        assert sleeps == [0.1, 0.2]

    def test_exhausted_attempts_escalate_to_degradation(self):
        sleeps: list[float] = []

        def attempt(attempt_index):
            raise ExperimentError("always broken")

        policy = FaultPolicy(max_attempts=3, backoff_base=0.1, backoff_factor=2.0)
        assert policy.run(attempt, degrade=lambda: "degraded", sleep=sleeps.append) == "degraded"
        # The full backoff budget was spent before degrading.
        assert sleeps == list(policy.backoff_schedule())

    def test_exhausted_attempts_without_degradation_raise_last_error(self):
        policy = FaultPolicy(max_attempts=2, backoff_base=0.0)
        with pytest.raises(ExperimentError, match="always broken"):
            policy.run(
                lambda attempt: (_ for _ in ()).throw(ExperimentError("always broken")),
                sleep=lambda delay: None,
            )

    def test_validation(self):
        with pytest.raises(ExperimentError, match="max_attempts"):
            FaultPolicy(max_attempts=0)
        with pytest.raises(ExperimentError, match="backoff"):
            FaultPolicy(backoff_factor=0.5)
        with pytest.raises(ExperimentError, match="timeout"):
            FaultPolicy(timeout=0.0)

    def test_lease_ttl_ticks(self):
        assert FaultPolicy(timeout=1.0, poll_interval=0.1).lease_ttl_ticks == 10


class TestFaultInjector:
    def test_from_spec_explicit(self):
        injector = FaultInjector.from_spec("crash-pre@2,hang@1:1,poison@3")
        assert injector.worker_fault(2, 0) == "crash-pre"
        assert injector.worker_fault(2, 1) is None  # crash fires once
        assert injector.worker_fault(1, 0) is None
        assert injector.worker_fault(1, 1) == "hang"
        # Poison defaults to every attempt.
        assert injector.worker_fault(3, 0) == "poison"
        assert injector.worker_fault(3, 5) == "poison"

    def test_from_spec_abandon_is_coordinator_side(self):
        injector = FaultInjector.from_spec("abandon@4")
        assert injector.coordinator_fault(4) == "abandon"
        assert injector.worker_fault(4, 0) is None

    def test_from_spec_rejects_unknown_kind_and_bad_target(self):
        with pytest.raises(ExperimentError, match="unknown fault kind"):
            FaultInjector.from_spec("meteor@1")
        with pytest.raises(ExperimentError, match="kind@chunk"):
            FaultInjector.from_spec("crash-pre")
        with pytest.raises(ExperimentError, match="invalid fault target"):
            FaultInjector.from_spec("hang@x")

    def test_seeded_schedule_is_deterministic_and_rate_bounded(self):
        injector = FaultInjector.seeded(7, 0.5)
        again = FaultInjector.seeded(7, 0.5)
        schedule = [injector.worker_fault(chunk, 0) for chunk in range(100)]
        assert schedule == [again.worker_fault(chunk, 0) for chunk in range(100)]
        faulted = sum(1 for kind in schedule if kind)
        assert 20 <= faulted <= 80  # ~rate, deterministic either way
        assert [injector.worker_fault(c, 0) for c in range(100)] == schedule

    def test_seeded_rate_validation(self):
        with pytest.raises(ExperimentError, match="rate"):
            FaultInjector.seeded(1, 1.5)

    def test_chunk_fault_rejects_unknown_kind(self):
        with pytest.raises(ExperimentError, match="unknown fault kind"):
            ChunkFault(kind="nope", chunk=0)


class TestLease:
    def test_round_trip(self, tmp_path):
        lease = Lease(chunk=3, start=6, stop=8, owner="w1", epoch=2,
                      granted_tick=10, deadline_tick=110)
        lease.write(tmp_path)
        assert Lease.read(lease.path(tmp_path)) == lease


class TestFabricByteIdentity:
    """Every injected schedule converges to the single-writer bytes."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        spec = small_spec()
        root = tmp_path_factory.mktemp("reference")
        progress = run_campaign(spec, root, chunk_size=2)
        assert progress.finished
        return spec, store_bytes(root, spec), progress.aggregate()

    @pytest.mark.parametrize(
        "faults",
        [
            None,
            "crash-pre@0",
            "crash-post@1",
            "poison@2",
            "crash-pre@0,crash-post@1,poison@2",
        ],
        ids=["clean", "crash-before-fsync", "crash-after-append", "poisoned", "combined"],
    )
    def test_fabric_matches_single_writer(self, tmp_path, reference, faults):
        spec, expected, aggregates = reference
        progress = run_fabric_campaign(
            spec, tmp_path, workers=2, chunk_size=2, policy=fast_policy(), faults=faults
        )
        assert progress.finished
        assert store_bytes(tmp_path, spec) == expected
        assert progress.aggregate() == aggregates
        # A finished fabric campaign leaves no worker stores or leases.
        assert not (progress.state.directory / "workers").exists()
        assert not lease_directory(progress.state).exists()

    def test_hang_expires_lease_and_converges(self, tmp_path, reference):
        spec, expected, _ = reference
        progress = run_fabric_campaign(
            spec,
            tmp_path,
            workers=2,
            chunk_size=2,
            policy=fast_policy(timeout=0.3),
            faults="hang@0",
        )
        assert progress.finished
        assert progress.expired_leases >= 1
        assert progress.retries >= 1
        assert store_bytes(tmp_path, spec) == expected

    def test_poisoned_chunk_degrades_to_parent(self, tmp_path, reference):
        spec, expected, _ = reference
        progress = run_fabric_campaign(
            spec, tmp_path, workers=2, chunk_size=2, policy=fast_policy(), faults="poison@1"
        )
        assert progress.finished
        assert progress.degraded_chunks == [1]
        # Every worker attempt was spent before degrading.
        assert progress.retries == fast_policy().max_attempts
        assert store_bytes(tmp_path, spec) == expected

    def test_seeded_schedule_converges(self, tmp_path, reference):
        spec, expected, _ = reference
        faults = FaultInjector.seeded(3, 0.7, kinds=("crash-pre", "crash-post", "poison"))
        progress = run_fabric_campaign(
            spec, tmp_path, workers=3, chunk_size=2, policy=fast_policy(), faults=faults
        )
        assert progress.finished
        assert store_bytes(tmp_path, spec) == expected

    def test_measured_space_matches_single_writer(self, tmp_path):
        """Noise-model campaigns (measured series) survive faults too."""
        spec = small_spec(name="fabric-noise", noise="default")
        single = run_campaign(spec, tmp_path / "single", chunk_size=2)
        assert single.finished
        progress = run_fabric_campaign(
            spec,
            tmp_path / "fabric",
            workers=2,
            chunk_size=2,
            policy=fast_policy(),
            faults="crash-pre@1",
        )
        assert progress.finished
        assert store_bytes(tmp_path / "fabric", spec) == store_bytes(tmp_path / "single", spec)


class TestAbandonedLeasesAndHeal:
    def test_abandoned_lease_left_for_heal(self, tmp_path):
        spec = small_spec()
        progress = run_fabric_campaign(
            spec, tmp_path, workers=2, chunk_size=2, policy=fast_policy(), faults="abandon@1"
        )
        assert not progress.finished
        assert progress.abandoned_chunks == [1]
        leases = read_leases(progress.state)
        assert [lease.chunk for lease in leases] == [1]
        assert leases[0].owner == "lost"
        assert leases[0].stop - leases[0].start == 2

    def test_heal_recovers_abandoned_lease_byte_identically(self, tmp_path):
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "ref", chunk_size=2)
        run_fabric_campaign(
            spec,
            tmp_path / "chaos",
            workers=2,
            chunk_size=2,
            policy=fast_policy(),
            faults="abandon@1,crash-post@2",
        )
        report = heal_campaign(spec, tmp_path / "chaos", chunk_size=2)
        assert report.complete
        assert report.healed_chunks == [1]
        assert store_bytes(tmp_path / "chaos", spec) == store_bytes(tmp_path / "ref", spec)
        assert report.state.rows() == reference.rows()
        # Healing cleans up: no leases, no worker stores.
        assert not lease_directory(report.state).exists()
        assert not (report.state.directory / "workers").exists()

    def test_heal_on_clean_store_is_a_no_op(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2)
        before = store_bytes(tmp_path, spec)
        report = heal_campaign(spec, tmp_path, chunk_size=2)
        assert report.complete
        assert report.healed_chunks == []
        assert store_bytes(tmp_path, spec) == before

    def test_heal_recovers_dead_coordinator_leftovers(self, tmp_path):
        """Simulated coordinator death: canonical holds chunk 0, a worker
        store holds chunk 1 (crash-after-append), chunk 2 is leased but
        lost.  Heal must reassemble the single-writer bytes."""
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "ref", chunk_size=2)

        from repro.scenarios.store import CampaignStore

        state = CampaignStore(tmp_path / "dead").campaign(spec)
        state.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2))
        worker = CampaignState(worker_directory(state, "w0"), spec)
        worker.append_chunk(1, 2, 4, evaluate_range(spec, 2, 4))
        lease_directory(state).mkdir(parents=True)
        Lease(chunk=2, start=4, stop=6, owner="w1", epoch=0,
              granted_tick=1, deadline_tick=2).write(lease_directory(state))

        report = heal_campaign(spec, tmp_path / "dead", chunk_size=2)
        assert report.complete
        assert report.healed_chunks == [2]
        assert store_bytes(tmp_path / "dead", spec) == store_bytes(tmp_path / "ref", spec)
        assert report.state.rows() == reference.rows()

    def test_fabric_resumes_after_partial_run(self, tmp_path):
        """max_chunks-bounded fabric run + single-writer resume ==
        uninterrupted bytes (the two writers interleave cleanly)."""
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", chunk_size=2)
        partial = run_fabric_campaign(
            spec, tmp_path / "mixed", workers=2, chunk_size=2,
            policy=fast_policy(), max_chunks=2,
        )
        assert not partial.finished and partial.completed_after == 2
        resumed = run_campaign(spec, tmp_path / "mixed", chunk_size=2)
        assert resumed.finished
        assert store_bytes(tmp_path / "mixed", spec) == store_bytes(tmp_path / "ref", spec)

    def test_fabric_continues_single_writer_campaign(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", chunk_size=2)
        run_campaign(spec, tmp_path / "mixed", chunk_size=2, max_chunks=1)
        progress = run_fabric_campaign(
            spec, tmp_path / "mixed", workers=2, chunk_size=2, policy=fast_policy()
        )
        assert progress.finished
        assert store_bytes(tmp_path / "mixed", spec) == store_bytes(tmp_path / "ref", spec)

    def test_fabric_rejects_chunk_size_drift(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2, max_chunks=1)
        with pytest.raises(ExperimentError, match="chunk size"):
            run_fabric_campaign(spec, tmp_path, workers=2, chunk_size=3, policy=fast_policy())

    def test_fabric_validates_worker_count(self, tmp_path):
        with pytest.raises(ExperimentError, match="workers"):
            run_fabric_campaign(small_spec(), tmp_path, workers=0)


class TestMergeWorkerStores:
    def test_merge_picks_up_worker_leftovers(self, tmp_path):
        spec = small_spec()
        from repro.scenarios.store import CampaignStore

        state = CampaignStore(tmp_path).campaign(spec)
        worker = CampaignState(worker_directory(state, "w3"), spec)
        worker.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2))
        report = merge_worker_stores(state)
        assert report.added == [0]
        assert state.completed_chunks == {0}

    def test_merge_recovers_torn_worker_tail(self, tmp_path):
        """A worker killed mid-append leaves a torn tail in *its* store;
        the merge path truncates it on open and merges the survivors."""
        spec = small_spec()
        from repro.scenarios.store import CampaignStore

        state = CampaignStore(tmp_path).campaign(spec)
        worker = CampaignState(worker_directory(state, "w0"), spec)
        worker.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2))
        with open(worker.chunks_path, "a", encoding="utf-8") as handle:
            handle.write('{"chunk": 1, "start": 2, "rows": [{"pla')
        report = merge_worker_stores(state)
        assert report.added == [0]
        assert state.completed_chunks == {0}


class TestFaultSpecErrorPaths:
    """`from_spec` must name the offending term; valid specs round-trip."""

    @pytest.mark.parametrize(
        "text",
        [
            "bogus@x",
            "meteor@1",
            "hang@x",
            "random:1:-0.5",
            "random:1:1.5",
            "random:1:0.5:meteor",
            "random:9",
            "random:a:0.5",
            "skew:abc",
        ],
    )
    def test_malformed_terms_are_named(self, text):
        # The failing term itself appears in the message (the spec may
        # hold several comma-separated terms; the user needs to know
        # which one was rejected).
        offending = text.split(",")[0]
        with pytest.raises(ExperimentError) as excinfo:
            FaultInjector.from_spec(text)
        message = str(excinfo.value)
        assert offending in message or offending.partition("@")[0] in message

    def test_negative_rate_is_rejected_with_term(self):
        with pytest.raises(ExperimentError, match=r"random:1:-0\.5"):
            FaultInjector.from_spec("crash-pre@0,random:1:-0.5")

    def test_out_of_range_rate_is_rejected_with_term(self):
        with pytest.raises(ExperimentError, match=r"random:2:1\.5"):
            FaultInjector.from_spec("random:2:1.5")

    @pytest.mark.parametrize(
        "text",
        [
            "crash-pre@0",
            "poison@3",
            "hang@1:1",
            "crash-post@4:*",
            "partition@1",
            "zombie@2",
            "random:7:0.25",
            "random:7:0.5:hang+poison",
            "skew:1.5",
            "skew:-2.0",
            "crash-pre@0,hang@2:1,random:3:0.1,skew:0.75",
        ],
    )
    def test_valid_specs_round_trip_through_str(self, text):
        injector = FaultInjector.from_spec(text)
        assert FaultInjector.from_spec(str(injector)) == injector

    def test_canonical_str_is_stable(self):
        injector = FaultInjector.from_spec(" crash-pre@0 , poison@3 ,random:7:0.5")
        assert str(FaultInjector.from_spec(str(injector))) == str(injector)


class TestTornLeaseFiles:
    """Satellite: a torn lease JSON must never crash the coordinator."""

    def test_read_leases_skips_unreadable_files(self, tmp_path, caplog):
        import logging

        from repro.scenarios.store import CampaignStore

        spec = small_spec()
        state = CampaignStore(tmp_path).campaign(spec)
        leases_dir = lease_directory(state)
        leases_dir.mkdir(parents=True)
        good = Lease(chunk=1, start=2, stop=4, owner="w0", epoch=0,
                     granted_tick=1, deadline_tick=100)
        good.write(leases_dir)
        (leases_dir / "chunk-000000.json").write_text('{"chunk": 0, "sta', encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.scenarios.fabric"):
            leases = read_leases(state)
        assert [lease.chunk for lease in leases] == [1]
        assert any("unreadable lease" in record.message for record in caplog.records)

    def test_heal_treats_torn_lease_as_expired(self, tmp_path):
        """The torn lease's chunk is recovered from the chunk plan."""
        from repro.scenarios.store import CampaignStore

        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", chunk_size=2)
        run_campaign(spec, tmp_path / "torn", chunk_size=2, max_chunks=2)
        state = CampaignStore(tmp_path / "torn").campaign(spec)
        leases_dir = lease_directory(state)
        leases_dir.mkdir(parents=True)
        (leases_dir / "chunk-000002.json").write_text("{garbled", encoding="utf-8")
        report = heal_campaign(spec, tmp_path / "torn", chunk_size=2)
        assert report.complete
        assert 2 in report.healed_chunks
        assert store_bytes(tmp_path / "torn", spec) == store_bytes(tmp_path / "ref", spec)


class TestMergeFencing:
    """Satellite: stale-epoch chunks are fenced out, re-issued ones merge."""

    def _worker_with_chunk(self, state, owner, epoch, spec):
        worker = CampaignState(worker_directory(state, owner), spec)
        worker.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2), epoch=epoch)
        return worker

    def test_fenced_chunk_is_rejected_loudly_by_default(self, tmp_path):
        from repro.scenarios.fabric import record_fence
        from repro.scenarios.store import CampaignStore

        spec = small_spec()
        state = CampaignStore(tmp_path).campaign(spec)
        zombie = self._worker_with_chunk(state, "zombie", epoch=0, spec=spec)
        record_fence(state, 0, 1)
        from repro.scenarios.fabric import read_fences

        with pytest.raises(ExperimentError, match="fenced"):
            state.merge(zombie, fences=read_fences(state))

    def test_reissued_epoch_merges_cleanly_over_fenced_copy(self, tmp_path):
        from repro.scenarios.fabric import read_fences, record_fence
        from repro.scenarios.store import CampaignStore

        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", chunk_size=2, max_chunks=1)
        state = CampaignStore(tmp_path / "fab").campaign(spec)
        self._worker_with_chunk(state, "zombie", epoch=0, spec=spec)
        self._worker_with_chunk(state, "taker", epoch=1, spec=spec)
        record_fence(state, 0, 1)
        report = merge_worker_stores(state)
        assert report.fenced == [0]
        assert report.added == [0]
        assert state.completed_chunks == {0}
        # The canonical bytes are the single-writer bytes either way.
        assert (state.chunks_path.read_bytes()
                == store_bytes(tmp_path / "ref", spec))

    def test_unfenced_epochless_chunks_stay_trusted(self, tmp_path):
        """Single-writer/degraded stores carry no epoch metadata."""
        from repro.scenarios.fabric import record_fence
        from repro.scenarios.store import CampaignStore

        spec = small_spec()
        state = CampaignStore(tmp_path).campaign(spec)
        worker = CampaignState(worker_directory(state, "degraded"), spec)
        worker.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2))  # no epoch
        record_fence(state, 0, 5)
        report = merge_worker_stores(state)
        assert report.added == [0]
        assert report.fenced == []


class TestWallClockLease:
    def test_wall_clock_round_trip(self, tmp_path):
        lease = Lease(chunk=2, start=4, stop=6, owner="host-1", epoch=3,
                      granted_at=100.0, heartbeat_at=105.0, deadline=115.0, ttl=10.0)
        lease.write(tmp_path)
        assert Lease.read(lease.path(tmp_path)) == lease
        assert lease.wall_clocked

    def test_expiry_honours_skew_slack(self):
        lease = Lease(chunk=0, start=0, stop=2, owner="w", epoch=0,
                      granted_at=0.0, heartbeat_at=0.0, deadline=10.0, ttl=10.0)
        assert not lease.expired(now=10.5, skew_slack=2.0)
        assert not lease.expired(now=12.0, skew_slack=2.0)
        assert lease.expired(now=12.1, skew_slack=2.0)

    def test_logical_lease_counts_as_expired_on_the_wall_clock(self):
        # Its tick clock died with the in-process coordinator.
        lease = Lease(chunk=0, start=0, stop=2, owner="w", epoch=0,
                      granted_tick=5, deadline_tick=500)
        assert not lease.wall_clocked
        assert lease.expired(now=0.0)

    def test_renewed_extends_deadline(self):
        lease = Lease(chunk=0, start=0, stop=2, owner="w", epoch=0,
                      granted_at=0.0, heartbeat_at=0.0, deadline=10.0, ttl=10.0)
        renewed = lease.renewed(now=8.0)
        assert renewed.heartbeat_at == 8.0
        assert renewed.deadline == 18.0
        assert renewed.epoch == lease.epoch

    def test_reissued_bumps_epoch_and_owner(self):
        lease = Lease(chunk=0, start=0, stop=2, owner="w", epoch=1,
                      granted_at=0.0, heartbeat_at=0.0, deadline=10.0, ttl=10.0)
        taken = lease.reissued("taker", now=20.0, ttl=5.0)
        assert taken.owner == "taker"
        assert taken.epoch == 2
        assert taken.deadline == 25.0


class TestCoordinatorJournal:
    def test_replay_reconstructs_counters(self, tmp_path):
        from repro.scenarios.fabric import CoordinatorJournal
        from repro.scenarios.store import CampaignStore

        spec = small_spec()
        state = CampaignStore(tmp_path).campaign(spec)
        journal = CoordinatorJournal(state)
        journal.append("plan", total_chunks=3, chunk_size=2, pending=3)
        journal.append("requeue", chunk=1, attempt=0, fence=1, reason="crash")
        journal.append("expire", chunk=2, owner="w0", epoch=0)
        journal.append("requeue", chunk=2, attempt=0, fence=1, reason="lease expired")
        journal.append("degrade", chunk=1)
        journal.append("complete", total_chunks=3)
        replayed = journal.replay()
        assert replayed.retries == 2
        assert replayed.expired_leases == 1
        assert replayed.degraded_chunks == [1]
        assert replayed.fences == {1: 1, 2: 1}
        assert replayed.completed
        assert replayed.plan["total_chunks"] == 3

    def test_replay_tolerates_torn_tail_line(self, tmp_path, caplog):
        import logging

        from repro.scenarios.fabric import CoordinatorJournal
        from repro.scenarios.store import CampaignStore

        state = CampaignStore(tmp_path).campaign(small_spec())
        journal = CoordinatorJournal(state)
        journal.append("plan", total_chunks=1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "requeue", "chu')
        with caplog.at_level(logging.WARNING, logger="repro.scenarios.fabric"):
            replayed = journal.replay()
        assert replayed.plan is not None
        assert replayed.retries == 0

    def test_fabric_run_journals_its_decisions(self, tmp_path):
        from repro.scenarios.fabric import CoordinatorJournal

        spec = small_spec()
        progress = run_fabric_campaign(
            spec, tmp_path, workers=2, chunk_size=2,
            policy=fast_policy(), faults="poison@2",
        )
        assert progress.finished
        journal = CoordinatorJournal(progress.state)
        assert journal.exists()  # kept even after cleanup: the flight record
        replayed = journal.replay()
        assert replayed.retries == progress.retries
        assert replayed.degraded_chunks == progress.degraded_chunks
        assert replayed.completed


class TestHealLiveLeases:
    def test_heal_skips_live_wall_clock_leases(self, tmp_path):
        import time as time_module

        from repro.scenarios.store import CampaignStore

        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2, max_chunks=2)
        state = CampaignStore(tmp_path).campaign(spec)
        leases_dir = lease_directory(state)
        leases_dir.mkdir(parents=True)
        now = time_module.time()
        live = Lease(chunk=2, start=4, stop=6, owner="far-machine", epoch=0,
                     granted_at=now, heartbeat_at=now, deadline=now + 60.0, ttl=60.0)
        live.write(leases_dir)
        report = heal_campaign(spec, tmp_path, chunk_size=2)
        assert report.live_leases == [2]
        assert report.healed_chunks == []
        assert live.path(leases_dir).exists()
        assert "live lease" in report.describe()
        # Once the lease has expired (well past deadline + slack), heal
        # reclaims the chunk.
        dead = Lease(chunk=2, start=4, stop=6, owner="far-machine", epoch=0,
                     granted_at=now - 120, heartbeat_at=now - 120,
                     deadline=now - 60.0, ttl=60.0)
        dead.write(leases_dir)
        report = heal_campaign(spec, tmp_path, chunk_size=2)
        assert report.live_leases == []
        assert report.healed_chunks == [2]
        assert report.complete
