"""Tests for the fault-tolerant multi-worker campaign fabric.

The load-bearing guarantee: for every deterministic fault-injection
schedule in the matrix — crash-before-fsync (torn write), crash-after-
append, hang + lease expiry, poisoned chunk, abandoned lease — a
multi-worker run (followed by heal + merge where the schedule leaves
leftovers) produces a ``chunks.jsonl`` **byte-identical** to an
uninterrupted single-writer campaign, and bit-identical aggregates.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios.fabric import (
    ChunkFault,
    FaultInjector,
    FaultPolicy,
    Lease,
    heal_campaign,
    lease_directory,
    merge_worker_stores,
    read_leases,
    run_fabric_campaign,
    worker_directory,
)
from repro.scenarios.runner import evaluate_range, run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.scenarios.store import CampaignState


def small_spec(name="fabric-small", count=6, sizes=(40, 120), noise=None):
    return named_space("fig12").derive(name=name, count=count, matrix_sizes=sizes, noise=noise)


def fast_policy(**overrides):
    defaults = dict(
        max_attempts=3,
        backoff_base=0.01,
        backoff_factor=2.0,
        backoff_cap=0.05,
        timeout=10.0,
        poll_interval=0.01,
    )
    defaults.update(overrides)
    return FaultPolicy(**defaults)


def store_bytes(root, spec):
    return (root / spec_hash(spec) / "chunks.jsonl").read_bytes()


class TestFaultPolicy:
    """The retry/backoff policy in isolation (no processes involved)."""

    def test_backoff_schedule_is_deterministic(self):
        policy = FaultPolicy(
            max_attempts=4, backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3
        )
        assert policy.backoff_schedule() == (0.1, 0.2, 0.3)
        assert policy.backoff(10) == 0.3  # capped

    def test_run_retries_then_succeeds(self):
        sleeps: list[float] = []
        calls: list[int] = []

        def attempt(attempt_index):
            calls.append(attempt_index)
            if attempt_index < 2:
                raise ExperimentError("flaky")
            return "ok"

        policy = FaultPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0)
        assert policy.run(attempt, sleep=sleeps.append) == "ok"
        assert calls == [0, 1, 2]
        assert sleeps == [0.1, 0.2]

    def test_exhausted_attempts_escalate_to_degradation(self):
        sleeps: list[float] = []

        def attempt(attempt_index):
            raise ExperimentError("always broken")

        policy = FaultPolicy(max_attempts=3, backoff_base=0.1, backoff_factor=2.0)
        assert policy.run(attempt, degrade=lambda: "degraded", sleep=sleeps.append) == "degraded"
        # The full backoff budget was spent before degrading.
        assert sleeps == list(policy.backoff_schedule())

    def test_exhausted_attempts_without_degradation_raise_last_error(self):
        policy = FaultPolicy(max_attempts=2, backoff_base=0.0)
        with pytest.raises(ExperimentError, match="always broken"):
            policy.run(
                lambda attempt: (_ for _ in ()).throw(ExperimentError("always broken")),
                sleep=lambda delay: None,
            )

    def test_validation(self):
        with pytest.raises(ExperimentError, match="max_attempts"):
            FaultPolicy(max_attempts=0)
        with pytest.raises(ExperimentError, match="backoff"):
            FaultPolicy(backoff_factor=0.5)
        with pytest.raises(ExperimentError, match="timeout"):
            FaultPolicy(timeout=0.0)

    def test_lease_ttl_ticks(self):
        assert FaultPolicy(timeout=1.0, poll_interval=0.1).lease_ttl_ticks == 10


class TestFaultInjector:
    def test_from_spec_explicit(self):
        injector = FaultInjector.from_spec("crash-pre@2,hang@1:1,poison@3")
        assert injector.worker_fault(2, 0) == "crash-pre"
        assert injector.worker_fault(2, 1) is None  # crash fires once
        assert injector.worker_fault(1, 0) is None
        assert injector.worker_fault(1, 1) == "hang"
        # Poison defaults to every attempt.
        assert injector.worker_fault(3, 0) == "poison"
        assert injector.worker_fault(3, 5) == "poison"

    def test_from_spec_abandon_is_coordinator_side(self):
        injector = FaultInjector.from_spec("abandon@4")
        assert injector.coordinator_fault(4) == "abandon"
        assert injector.worker_fault(4, 0) is None

    def test_from_spec_rejects_unknown_kind_and_bad_target(self):
        with pytest.raises(ExperimentError, match="unknown fault kind"):
            FaultInjector.from_spec("meteor@1")
        with pytest.raises(ExperimentError, match="kind@chunk"):
            FaultInjector.from_spec("crash-pre")
        with pytest.raises(ExperimentError, match="invalid fault target"):
            FaultInjector.from_spec("hang@x")

    def test_seeded_schedule_is_deterministic_and_rate_bounded(self):
        injector = FaultInjector.seeded(7, 0.5)
        again = FaultInjector.seeded(7, 0.5)
        schedule = [injector.worker_fault(chunk, 0) for chunk in range(100)]
        assert schedule == [again.worker_fault(chunk, 0) for chunk in range(100)]
        faulted = sum(1 for kind in schedule if kind)
        assert 20 <= faulted <= 80  # ~rate, deterministic either way
        assert [injector.worker_fault(c, 0) for c in range(100)] == schedule

    def test_seeded_rate_validation(self):
        with pytest.raises(ExperimentError, match="rate"):
            FaultInjector.seeded(1, 1.5)

    def test_chunk_fault_rejects_unknown_kind(self):
        with pytest.raises(ExperimentError, match="unknown fault kind"):
            ChunkFault(kind="nope", chunk=0)


class TestLease:
    def test_round_trip(self, tmp_path):
        lease = Lease(chunk=3, start=6, stop=8, owner="w1", epoch=2,
                      granted_tick=10, deadline_tick=110)
        lease.write(tmp_path)
        assert Lease.read(lease.path(tmp_path)) == lease


class TestFabricByteIdentity:
    """Every injected schedule converges to the single-writer bytes."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        spec = small_spec()
        root = tmp_path_factory.mktemp("reference")
        progress = run_campaign(spec, root, chunk_size=2)
        assert progress.finished
        return spec, store_bytes(root, spec), progress.aggregate()

    @pytest.mark.parametrize(
        "faults",
        [
            None,
            "crash-pre@0",
            "crash-post@1",
            "poison@2",
            "crash-pre@0,crash-post@1,poison@2",
        ],
        ids=["clean", "crash-before-fsync", "crash-after-append", "poisoned", "combined"],
    )
    def test_fabric_matches_single_writer(self, tmp_path, reference, faults):
        spec, expected, aggregates = reference
        progress = run_fabric_campaign(
            spec, tmp_path, workers=2, chunk_size=2, policy=fast_policy(), faults=faults
        )
        assert progress.finished
        assert store_bytes(tmp_path, spec) == expected
        assert progress.aggregate() == aggregates
        # A finished fabric campaign leaves no worker stores or leases.
        assert not (progress.state.directory / "workers").exists()
        assert not lease_directory(progress.state).exists()

    def test_hang_expires_lease_and_converges(self, tmp_path, reference):
        spec, expected, _ = reference
        progress = run_fabric_campaign(
            spec,
            tmp_path,
            workers=2,
            chunk_size=2,
            policy=fast_policy(timeout=0.3),
            faults="hang@0",
        )
        assert progress.finished
        assert progress.expired_leases >= 1
        assert progress.retries >= 1
        assert store_bytes(tmp_path, spec) == expected

    def test_poisoned_chunk_degrades_to_parent(self, tmp_path, reference):
        spec, expected, _ = reference
        progress = run_fabric_campaign(
            spec, tmp_path, workers=2, chunk_size=2, policy=fast_policy(), faults="poison@1"
        )
        assert progress.finished
        assert progress.degraded_chunks == [1]
        # Every worker attempt was spent before degrading.
        assert progress.retries == fast_policy().max_attempts
        assert store_bytes(tmp_path, spec) == expected

    def test_seeded_schedule_converges(self, tmp_path, reference):
        spec, expected, _ = reference
        faults = FaultInjector.seeded(3, 0.7, kinds=("crash-pre", "crash-post", "poison"))
        progress = run_fabric_campaign(
            spec, tmp_path, workers=3, chunk_size=2, policy=fast_policy(), faults=faults
        )
        assert progress.finished
        assert store_bytes(tmp_path, spec) == expected

    def test_measured_space_matches_single_writer(self, tmp_path):
        """Noise-model campaigns (measured series) survive faults too."""
        spec = small_spec(name="fabric-noise", noise="default")
        single = run_campaign(spec, tmp_path / "single", chunk_size=2)
        assert single.finished
        progress = run_fabric_campaign(
            spec,
            tmp_path / "fabric",
            workers=2,
            chunk_size=2,
            policy=fast_policy(),
            faults="crash-pre@1",
        )
        assert progress.finished
        assert store_bytes(tmp_path / "fabric", spec) == store_bytes(tmp_path / "single", spec)


class TestAbandonedLeasesAndHeal:
    def test_abandoned_lease_left_for_heal(self, tmp_path):
        spec = small_spec()
        progress = run_fabric_campaign(
            spec, tmp_path, workers=2, chunk_size=2, policy=fast_policy(), faults="abandon@1"
        )
        assert not progress.finished
        assert progress.abandoned_chunks == [1]
        leases = read_leases(progress.state)
        assert [lease.chunk for lease in leases] == [1]
        assert leases[0].owner == "lost"
        assert leases[0].stop - leases[0].start == 2

    def test_heal_recovers_abandoned_lease_byte_identically(self, tmp_path):
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "ref", chunk_size=2)
        run_fabric_campaign(
            spec,
            tmp_path / "chaos",
            workers=2,
            chunk_size=2,
            policy=fast_policy(),
            faults="abandon@1,crash-post@2",
        )
        report = heal_campaign(spec, tmp_path / "chaos", chunk_size=2)
        assert report.complete
        assert report.healed_chunks == [1]
        assert store_bytes(tmp_path / "chaos", spec) == store_bytes(tmp_path / "ref", spec)
        assert report.state.rows() == reference.rows()
        # Healing cleans up: no leases, no worker stores.
        assert not lease_directory(report.state).exists()
        assert not (report.state.directory / "workers").exists()

    def test_heal_on_clean_store_is_a_no_op(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2)
        before = store_bytes(tmp_path, spec)
        report = heal_campaign(spec, tmp_path, chunk_size=2)
        assert report.complete
        assert report.healed_chunks == []
        assert store_bytes(tmp_path, spec) == before

    def test_heal_recovers_dead_coordinator_leftovers(self, tmp_path):
        """Simulated coordinator death: canonical holds chunk 0, a worker
        store holds chunk 1 (crash-after-append), chunk 2 is leased but
        lost.  Heal must reassemble the single-writer bytes."""
        spec = small_spec()
        reference = run_campaign(spec, tmp_path / "ref", chunk_size=2)

        from repro.scenarios.store import CampaignStore

        state = CampaignStore(tmp_path / "dead").campaign(spec)
        state.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2))
        worker = CampaignState(worker_directory(state, "w0"), spec)
        worker.append_chunk(1, 2, 4, evaluate_range(spec, 2, 4))
        lease_directory(state).mkdir(parents=True)
        Lease(chunk=2, start=4, stop=6, owner="w1", epoch=0,
              granted_tick=1, deadline_tick=2).write(lease_directory(state))

        report = heal_campaign(spec, tmp_path / "dead", chunk_size=2)
        assert report.complete
        assert report.healed_chunks == [2]
        assert store_bytes(tmp_path / "dead", spec) == store_bytes(tmp_path / "ref", spec)
        assert report.state.rows() == reference.rows()

    def test_fabric_resumes_after_partial_run(self, tmp_path):
        """max_chunks-bounded fabric run + single-writer resume ==
        uninterrupted bytes (the two writers interleave cleanly)."""
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", chunk_size=2)
        partial = run_fabric_campaign(
            spec, tmp_path / "mixed", workers=2, chunk_size=2,
            policy=fast_policy(), max_chunks=2,
        )
        assert not partial.finished and partial.completed_after == 2
        resumed = run_campaign(spec, tmp_path / "mixed", chunk_size=2)
        assert resumed.finished
        assert store_bytes(tmp_path / "mixed", spec) == store_bytes(tmp_path / "ref", spec)

    def test_fabric_continues_single_writer_campaign(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", chunk_size=2)
        run_campaign(spec, tmp_path / "mixed", chunk_size=2, max_chunks=1)
        progress = run_fabric_campaign(
            spec, tmp_path / "mixed", workers=2, chunk_size=2, policy=fast_policy()
        )
        assert progress.finished
        assert store_bytes(tmp_path / "mixed", spec) == store_bytes(tmp_path / "ref", spec)

    def test_fabric_rejects_chunk_size_drift(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, chunk_size=2, max_chunks=1)
        with pytest.raises(ExperimentError, match="chunk size"):
            run_fabric_campaign(spec, tmp_path, workers=2, chunk_size=3, policy=fast_policy())

    def test_fabric_validates_worker_count(self, tmp_path):
        with pytest.raises(ExperimentError, match="workers"):
            run_fabric_campaign(small_spec(), tmp_path, workers=0)


class TestMergeWorkerStores:
    def test_merge_picks_up_worker_leftovers(self, tmp_path):
        spec = small_spec()
        from repro.scenarios.store import CampaignStore

        state = CampaignStore(tmp_path).campaign(spec)
        worker = CampaignState(worker_directory(state, "w3"), spec)
        worker.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2))
        report = merge_worker_stores(state)
        assert report.added == [0]
        assert state.completed_chunks == {0}

    def test_merge_recovers_torn_worker_tail(self, tmp_path):
        """A worker killed mid-append leaves a torn tail in *its* store;
        the merge path truncates it on open and merges the survivors."""
        spec = small_spec()
        from repro.scenarios.store import CampaignStore

        state = CampaignStore(tmp_path).campaign(spec)
        worker = CampaignState(worker_directory(state, "w0"), spec)
        worker.append_chunk(0, 0, 2, evaluate_range(spec, 0, 2))
        with open(worker.chunks_path, "a", encoding="utf-8") as handle:
            handle.write('{"chunk": 1, "start": 2, "rows": [{"pla')
        report = merge_worker_stores(state)
        assert report.added == [0]
        assert state.completed_chunks == {0}
