"""Tests for the declarative scenario-space specs (:mod:`repro.scenarios.spec`)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios.spec import (
    MATRIX_WORKLOAD,
    NAMED_SPACES,
    Distribution,
    PlatformFamily,
    ScenarioSpec,
    Workload,
    available_spaces,
    named_space,
    product_specs,
    spec_hash,
)


class TestDistribution:
    def test_of_and_param(self):
        dist = Distribution.of("uniform", low=1.0, high=10.0)
        assert dist.param("low") == 1.0
        assert dist.param("high") == 10.0
        assert dist.param("cap", None) is None

    def test_missing_param_raises(self):
        dist = Distribution.of("constant", value=2.0)
        with pytest.raises(ExperimentError):
            dist.param("low")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            Distribution.of("zipf", s=2.0)

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ExperimentError):
            Distribution.of("uniform", low=1.0)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExperimentError):
            Distribution.of("constant", value=1.0, scale=2.0)

    @pytest.mark.parametrize(
        "kind, params",
        [
            ("constant", {"value": 0.0}),
            ("uniform", {"low": 0.0, "high": 1.0}),
            ("uniform", {"low": 5.0, "high": 1.0}),
            ("bimodal", {"slow": -1.0, "fast": 2.0, "fast_fraction": 0.5}),
            ("bimodal", {"slow": 1.0, "fast": 2.0, "fast_fraction": 1.5}),
            ("powerlaw", {"minimum": 1.0, "alpha": 0.0}),
            ("powerlaw", {"minimum": 2.0, "alpha": 1.0, "cap": 1.0}),
        ],
    )
    def test_invalid_support_rejected(self, kind, params):
        with pytest.raises(ExperimentError):
            Distribution.of(kind, **params)

    def test_round_trip(self):
        dist = Distribution.of("powerlaw", minimum=1.0, alpha=1.5, cap=50.0)
        assert Distribution.from_dict(dist.as_dict()) == dist


class TestPlatformFamily:
    def test_correlation_requires_uniform(self):
        with pytest.raises(ExperimentError):
            PlatformFamily(workers=4, count=2, seed=0, correlation=0.5)

    def test_correlation_bounds(self):
        uniform = Distribution.of("uniform", low=1.0, high=10.0)
        with pytest.raises(ExperimentError):
            PlatformFamily(
                workers=4, count=2, seed=0, comm=uniform, comp=uniform, correlation=1.5
            )

    def test_positive_counts(self):
        with pytest.raises(ExperimentError):
            PlatformFamily(workers=0, count=2, seed=0)
        with pytest.raises(ExperimentError):
            PlatformFamily(workers=2, count=0, seed=0)

    def test_round_trip_with_return_comm(self):
        family = PlatformFamily(
            workers=5,
            count=3,
            seed=9,
            comm=Distribution.of("uniform", low=1.0, high=10.0),
            return_comm=Distribution.of("uniform", low=1.0, high=4.0),
        )
        assert PlatformFamily.from_dict(family.as_dict()) == family


class TestScenarioSpec:
    def test_named_spaces_round_trip_json(self):
        for name in available_spaces():
            spec = NAMED_SPACES[name]
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_scenario_count(self):
        spec = named_space("fig12")
        assert spec.scenario_count == 50 * 9

    def test_reference_must_be_evaluated(self):
        with pytest.raises(ExperimentError):
            named_space("fig12").derive(heuristics=("INC_W", "LIFO"))

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ExperimentError):
            named_space("fig12").derive(heuristics=("INC_C", "RANDOM"))

    def test_unknown_noise_rejected(self):
        with pytest.raises(ExperimentError):
            named_space("fig12").derive(noise="heavy")

    def test_two_port_axis_accepted(self):
        """The port-model axis is open: one_port=False derives a distinct
        space that round-trips JSON and hashes apart from its one-port
        twin (a two-port campaign must never share its store)."""
        spec = named_space("fig12")
        two_port = spec.derive(one_port=False)
        assert not two_port.one_port
        assert spec_hash(two_port) != spec_hash(spec)
        assert ScenarioSpec.from_json(two_port.to_json()) == two_port
        assert not named_space("fig12-twoport").one_port
        assert spec_hash(named_space("fig12-twoport")) == spec_hash(two_port)

    def test_two_port_variants_share_factor_sets(self):
        """A *-twoport space differs from its twin only in the port model."""
        for name in ("fig10", "fig11", "fig12", "fig13a", "fig13b", "mega-uniform"):
            base = named_space(name)
            variant = named_space(f"{name}-twoport")
            assert variant.family == base.family
            assert variant.matrix_sizes == base.matrix_sizes
            assert variant.heuristics == base.heuristics
            assert variant.noise == base.noise
            assert not variant.one_port and base.one_port

    def test_unknown_named_space(self):
        with pytest.raises(ExperimentError):
            named_space("fig99")

    def test_derive_routes_family_fields(self):
        spec = named_space("fig12").derive(name="small", count=4, seed=3, total_tasks=10)
        assert spec.name == "small"
        assert spec.family.count == 4 and spec.family.seed == 3
        assert spec.total_tasks == 10
        with pytest.raises(ExperimentError):
            spec.derive(bogus_field=1)


class TestWorkloadAxis:
    def test_unknown_workload_kind_fails_loudly_with_the_kind_named(self):
        with pytest.raises(ExperimentError, match="unknown workload kind 'warp'"):
            Workload.of("warp", speed=9.0)
        payload = named_space("fig12").as_dict()
        payload["workload"] = {"kind": "gpu", "params": {}}
        with pytest.raises(ExperimentError, match="unknown workload kind 'gpu'"):
            ScenarioSpec.from_dict(payload)

    def test_workload_parameter_validation(self):
        with pytest.raises(ExperimentError, match="missing parameters \\['ratios'\\]"):
            Workload.of("bus")
        with pytest.raises(ExperimentError, match="unknown parameters \\['sizes'\\]"):
            Workload.of("bus", ratios=(1.0,), sizes=2.0)
        with pytest.raises(ExperimentError, match="ratios must be positive"):
            Workload.of("bus", ratios=(1.0, -2.0))
        with pytest.raises(ExperimentError, match="message sizes must be positive"):
            Workload.of("probe", message_sizes_mb=(0.0,))
        with pytest.raises(ExperimentError, match="total_tasks must be a positive integer"):
            Workload.of("matrix", total_tasks=2.5)

    def test_scalar_workload_parameters_reject_vectors(self):
        """A hand-written spec with ``"c": [1, 2]`` must fail with a named
        ExperimentError, not a TypeError deep inside validation."""
        with pytest.raises(ExperimentError, match="'c' must be a single number"):
            Workload.of("bus", ratios=(1.0,), c=[1, 2])
        with pytest.raises(ExperimentError, match="'total_tasks' must be a single number"):
            Workload.of("matrix", total_tasks=[500])
        payload = named_space("fig12").as_dict()
        payload["workload"] = {"kind": "bus", "params": {"ratios": [1.0], "c": [1, 2]}}
        with pytest.raises(ExperimentError, match="must be a single number"):
            ScenarioSpec.from_dict(payload)

    def test_vector_workload_parameters_reject_scalars(self):
        with pytest.raises(ExperimentError, match="'ratios' must be a list"):
            Workload.of("bus", ratios=2.0)
        with pytest.raises(ExperimentError, match="'message_sizes_mb' must be a list"):
            Workload.of("probe", message_sizes_mb=1.0)

    def test_workload_defaults_are_filled_at_construction(self):
        """An explicit c=1.0 and an omitted c are the *same* bus workload
        — equal, same JSON, same spec hash."""
        implicit = Workload.of("bus", ratios=(1.0, 2.0))
        explicit = Workload.of("bus", ratios=(1, 2), c=1.0, z=0.5)
        assert implicit == explicit
        assert implicit.as_dict() == explicit.as_dict()
        assert Workload.from_dict(implicit.as_dict()) == implicit

    def test_workload_total_tasks_overrides_the_spec_field(self):
        base = named_space("bus-theorem2")
        assert base.effective_total_tasks == base.total_tasks
        override = base.derive(
            workload=Workload.of("bus", ratios=(1.0,), total_tasks=500)
        )
        assert override.effective_total_tasks == 500

    def test_named_workload_spaces_round_trip_and_count(self):
        bus = named_space("bus-theorem2")
        assert bus.workload.kind == "bus"
        assert bus.scenario_count == 1 * 10
        probe = named_space("fig08-probe")
        assert probe.workload.kind == "probe"
        assert probe.scenario_count == 1 * 10
        assert probe.heuristics == () and probe.reference == ""
        for name in ("bus-theorem2", "bus-hetero", "fig08-probe", "fig09-trace"):
            spec = named_space(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_derive_workload_axis_clears_the_matrix_grid(self):
        derived = named_space("fig11").derive(
            name="bus-variant", workload=Workload.of("bus", ratios=(1.0, 2.0))
        )
        assert derived.matrix_sizes == ()
        assert derived.grid == (1.0, 2.0)
        # ... and a dict form works too (the JSON-file authoring route).
        from_mapping = named_space("fig11").derive(
            workload={"kind": "bus", "params": {"ratios": [4.0]}}
        )
        assert from_mapping.workload == Workload.of("bus", ratios=(4.0,))

    def test_matrix_sizes_rejected_for_non_matrix_workloads(self):
        with pytest.raises(ExperimentError, match="matrix_sizes apply to the matrix"):
            named_space("bus-theorem2").derive(matrix_sizes=(40,))

    def test_bus_workload_requires_identical_links(self):
        with pytest.raises(ExperimentError, match="comm distribution must be constant"):
            named_space("fig12").derive(workload=Workload.of("bus", ratios=(1.0,)))

    def test_probe_workload_is_noise_free_and_one_port(self):
        probe = Workload.of("probe", message_sizes_mb=(1.0,))
        base = named_space("fig08-probe")
        with pytest.raises(ExperimentError, match="noise-free"):
            base.derive(workload=probe, noise="default")
        with pytest.raises(ExperimentError, match="one-port master"):
            base.derive(workload=probe, one_port=False)

    def test_product_specs_over_the_workload_axis(self):
        specs = product_specs(
            named_space("bus-theorem2"),
            workload=(Workload.of("bus", ratios=(1.0,)), Workload.of("bus", ratios=(2.0,))),
            workers=(4, 8),
        )
        assert len(specs) == 4
        assert len({spec.name for spec in specs}) == 4
        assert len({spec_hash(spec) for spec in specs}) == 4


class TestSpecBackCompat:
    """Specs written before the workload axis existed must keep loading —
    and keep their content hash, or every pre-PR-5 store is orphaned."""

    #: Content hashes of the named spaces as frozen at the end of PR 4
    #: (captured from the pre-workload-axis spec module).
    FROZEN_PR4_HASHES = {
        "bandwidth-correlated": "75e8bb7ac1a0",
        "bimodal": "7be16f47eb55",
        "fig10": "e8e9611e72f9",
        "fig10-twoport": "a99c41281a0d",
        "fig11": "ed366c9304e9",
        "fig11-twoport": "1f693ac2576a",
        "fig12": "8fcd17cdbf80",
        "fig12-twoport": "160366e4506d",
        "fig13a": "f6e10110c524",
        "fig13a-twoport": "9f8eeb515caa",
        "fig13b": "91270a13e692",
        "fig13b-twoport": "dace65b02cd0",
        "mega-uniform": "78c4f11efa84",
        "mega-uniform-twoport": "9c6cfd786fc9",
        "power-law": "3a7bf746e365",
    }

    #: A spec document exactly as PR 4 stores wrote it (no workload key).
    FROZEN_PR4_FIG12_JSON = (
        '{"description": "Paper Figure 12: fully heterogeneous uniform(1,10) stars",'
        ' "family": {"comm": {"kind": "uniform", "params": {"high": 10.0, "low": 1.0}},'
        ' "comm_scale": 1.0, "comp": {"kind": "uniform", "params": {"high": 10.0,'
        ' "low": 1.0}}, "comp_scale": 1.0, "correlation": 0.0, "count": 50, "seed": 12,'
        ' "workers": 11}, "heuristics": ["INC_C", "INC_W", "LIFO"],'
        ' "matrix_sizes": [40, 60, 80, 100, 120, 140, 160, 180, 200], "name": "fig12",'
        ' "noise": "default", "one_port": true, "reference": "INC_C", "total_tasks": 1000}'
    )

    def test_every_pre_pr5_named_space_keeps_its_hash(self):
        for name, frozen in self.FROZEN_PR4_HASHES.items():
            assert spec_hash(named_space(name)) == frozen, name

    def test_spec_without_workload_field_loads_as_matrix_and_keeps_its_hash(self):
        spec = ScenarioSpec.from_json(self.FROZEN_PR4_FIG12_JSON)
        assert spec.workload == MATRIX_WORKLOAD
        assert spec == named_space("fig12")
        assert spec_hash(spec) == self.FROZEN_PR4_HASHES["fig12"]

    def test_default_matrix_workload_is_omitted_from_the_json_form(self):
        payload = named_space("fig12").as_dict()
        assert "workload" not in payload
        explicit = named_space("fig12").derive(workload=Workload.of("matrix"))
        assert "workload" not in explicit.as_dict()
        assert spec_hash(explicit) == self.FROZEN_PR4_HASHES["fig12"]

    def test_non_default_workloads_change_the_hash(self):
        spec = named_space("bus-theorem2")
        assert "workload" in spec.as_dict()
        assert spec_hash(spec) not in set(self.FROZEN_PR4_HASHES.values())


class TestSpecHash:
    def test_name_and_description_are_cosmetic(self):
        spec = named_space("fig12")
        renamed = spec.derive(name="renamed")
        assert spec_hash(renamed) == spec_hash(spec)

    def test_seed_changes_hash(self):
        spec = named_space("fig12")
        assert spec_hash(spec.derive(seed=999)) != spec_hash(spec)

    def test_hash_survives_json_round_trip(self):
        spec = named_space("power-law")
        assert spec_hash(ScenarioSpec.from_json(spec.to_json())) == spec_hash(spec)

    def test_named_spaces_have_distinct_hashes(self):
        hashes = {spec_hash(spec) for spec in NAMED_SPACES.values()}
        assert len(hashes) == len(NAMED_SPACES)

    def test_hash_independent_of_numeric_literal_style(self):
        """A hand-written spec with integer literals must hash like the
        equivalent float-literal spec, or resume silently restarts."""
        spec = named_space("fig12")
        handwritten = ScenarioSpec.from_json(
            spec.to_json().replace("1.0", "1").replace("10.0", "10")
        )
        assert spec_hash(handwritten) == spec_hash(spec)
        relaxed = spec.derive(
            comm=Distribution.of("uniform", low=1, high=10),
            comp=Distribution.of("uniform", low=1, high=10),
        )
        assert spec_hash(relaxed) == spec_hash(spec)


class TestSpecJsonErrorPaths:
    """Malformed spec documents must fail loudly, with actionable messages,
    through the same ``from_json`` path the CLI uses for spec files."""

    def _payload(self, **overrides) -> dict:
        payload = named_space("fig12").as_dict()
        payload.update(overrides)
        return payload

    def test_malformed_distribution_kind_in_family(self):
        payload = self._payload()
        payload["family"]["comm"] = {"kind": "zipf", "params": {"s": 2.0}}
        with pytest.raises(ExperimentError, match="unknown distribution kind 'zipf'"):
            ScenarioSpec.from_dict(payload)

    def test_distribution_parameter_mismatch_in_family(self):
        payload = self._payload()
        payload["family"]["comp"] = {"kind": "uniform", "params": {"low": 1.0}}
        with pytest.raises(ExperimentError, match="missing parameters \\['high'\\]"):
            ScenarioSpec.from_dict(payload)

    @pytest.mark.parametrize("correlation", (-1.5, 1.0001, 7.0))
    def test_correlation_out_of_range(self, correlation):
        payload = self._payload()
        payload["family"]["correlation"] = correlation
        with pytest.raises(ExperimentError, match="correlation must lie in \\[-1, 1\\]"):
            ScenarioSpec.from_dict(payload)

    def test_unknown_heuristic_names_the_evaluable_set(self):
        payload = self._payload(heuristics=["INC_C", "RANDOM"])
        with pytest.raises(ExperimentError, match="unknown heuristics \\['RANDOM'\\]"):
            ScenarioSpec.from_dict(payload)

    def test_empty_matrix_sizes(self):
        payload = self._payload(matrix_sizes=[])
        with pytest.raises(ExperimentError, match="at least one matrix size"):
            ScenarioSpec.from_dict(payload)


class TestProductSpecs:
    def test_grid_product(self):
        specs = product_specs(named_space("fig12"), workers=(5, 11), seed=(0, 1, 2))
        assert len(specs) == 6
        assert {spec.family.workers for spec in specs} == {5, 11}
        assert {spec.family.seed for spec in specs} == {0, 1, 2}
        assert len({spec.name for spec in specs}) == 6
        assert len({spec_hash(spec) for spec in specs}) == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            product_specs(named_space("fig12"), seed=())
