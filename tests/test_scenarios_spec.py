"""Tests for the declarative scenario-space specs (:mod:`repro.scenarios.spec`)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios.spec import (
    NAMED_SPACES,
    Distribution,
    PlatformFamily,
    ScenarioSpec,
    available_spaces,
    named_space,
    product_specs,
    spec_hash,
)


class TestDistribution:
    def test_of_and_param(self):
        dist = Distribution.of("uniform", low=1.0, high=10.0)
        assert dist.param("low") == 1.0
        assert dist.param("high") == 10.0
        assert dist.param("cap", None) is None

    def test_missing_param_raises(self):
        dist = Distribution.of("constant", value=2.0)
        with pytest.raises(ExperimentError):
            dist.param("low")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            Distribution.of("zipf", s=2.0)

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ExperimentError):
            Distribution.of("uniform", low=1.0)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExperimentError):
            Distribution.of("constant", value=1.0, scale=2.0)

    @pytest.mark.parametrize(
        "kind, params",
        [
            ("constant", {"value": 0.0}),
            ("uniform", {"low": 0.0, "high": 1.0}),
            ("uniform", {"low": 5.0, "high": 1.0}),
            ("bimodal", {"slow": -1.0, "fast": 2.0, "fast_fraction": 0.5}),
            ("bimodal", {"slow": 1.0, "fast": 2.0, "fast_fraction": 1.5}),
            ("powerlaw", {"minimum": 1.0, "alpha": 0.0}),
            ("powerlaw", {"minimum": 2.0, "alpha": 1.0, "cap": 1.0}),
        ],
    )
    def test_invalid_support_rejected(self, kind, params):
        with pytest.raises(ExperimentError):
            Distribution.of(kind, **params)

    def test_round_trip(self):
        dist = Distribution.of("powerlaw", minimum=1.0, alpha=1.5, cap=50.0)
        assert Distribution.from_dict(dist.as_dict()) == dist


class TestPlatformFamily:
    def test_correlation_requires_uniform(self):
        with pytest.raises(ExperimentError):
            PlatformFamily(workers=4, count=2, seed=0, correlation=0.5)

    def test_correlation_bounds(self):
        uniform = Distribution.of("uniform", low=1.0, high=10.0)
        with pytest.raises(ExperimentError):
            PlatformFamily(
                workers=4, count=2, seed=0, comm=uniform, comp=uniform, correlation=1.5
            )

    def test_positive_counts(self):
        with pytest.raises(ExperimentError):
            PlatformFamily(workers=0, count=2, seed=0)
        with pytest.raises(ExperimentError):
            PlatformFamily(workers=2, count=0, seed=0)

    def test_round_trip_with_return_comm(self):
        family = PlatformFamily(
            workers=5,
            count=3,
            seed=9,
            comm=Distribution.of("uniform", low=1.0, high=10.0),
            return_comm=Distribution.of("uniform", low=1.0, high=4.0),
        )
        assert PlatformFamily.from_dict(family.as_dict()) == family


class TestScenarioSpec:
    def test_named_spaces_round_trip_json(self):
        for name in available_spaces():
            spec = NAMED_SPACES[name]
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_scenario_count(self):
        spec = named_space("fig12")
        assert spec.scenario_count == 50 * 9

    def test_reference_must_be_evaluated(self):
        with pytest.raises(ExperimentError):
            named_space("fig12").derive(heuristics=("INC_W", "LIFO"))

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ExperimentError):
            named_space("fig12").derive(heuristics=("INC_C", "RANDOM"))

    def test_unknown_noise_rejected(self):
        with pytest.raises(ExperimentError):
            named_space("fig12").derive(noise="heavy")

    def test_two_port_axis_accepted(self):
        """The port-model axis is open: one_port=False derives a distinct
        space that round-trips JSON and hashes apart from its one-port
        twin (a two-port campaign must never share its store)."""
        spec = named_space("fig12")
        two_port = spec.derive(one_port=False)
        assert not two_port.one_port
        assert spec_hash(two_port) != spec_hash(spec)
        assert ScenarioSpec.from_json(two_port.to_json()) == two_port
        assert not named_space("fig12-twoport").one_port
        assert spec_hash(named_space("fig12-twoport")) == spec_hash(two_port)

    def test_two_port_variants_share_factor_sets(self):
        """A *-twoport space differs from its twin only in the port model."""
        for name in ("fig10", "fig11", "fig12", "fig13a", "fig13b", "mega-uniform"):
            base = named_space(name)
            variant = named_space(f"{name}-twoport")
            assert variant.family == base.family
            assert variant.matrix_sizes == base.matrix_sizes
            assert variant.heuristics == base.heuristics
            assert variant.noise == base.noise
            assert not variant.one_port and base.one_port

    def test_unknown_named_space(self):
        with pytest.raises(ExperimentError):
            named_space("fig99")

    def test_derive_routes_family_fields(self):
        spec = named_space("fig12").derive(name="small", count=4, seed=3, total_tasks=10)
        assert spec.name == "small"
        assert spec.family.count == 4 and spec.family.seed == 3
        assert spec.total_tasks == 10
        with pytest.raises(ExperimentError):
            spec.derive(bogus_field=1)


class TestSpecHash:
    def test_name_and_description_are_cosmetic(self):
        spec = named_space("fig12")
        renamed = spec.derive(name="renamed")
        assert spec_hash(renamed) == spec_hash(spec)

    def test_seed_changes_hash(self):
        spec = named_space("fig12")
        assert spec_hash(spec.derive(seed=999)) != spec_hash(spec)

    def test_hash_survives_json_round_trip(self):
        spec = named_space("power-law")
        assert spec_hash(ScenarioSpec.from_json(spec.to_json())) == spec_hash(spec)

    def test_named_spaces_have_distinct_hashes(self):
        hashes = {spec_hash(spec) for spec in NAMED_SPACES.values()}
        assert len(hashes) == len(NAMED_SPACES)

    def test_hash_independent_of_numeric_literal_style(self):
        """A hand-written spec with integer literals must hash like the
        equivalent float-literal spec, or resume silently restarts."""
        spec = named_space("fig12")
        handwritten = ScenarioSpec.from_json(
            spec.to_json().replace("1.0", "1").replace("10.0", "10")
        )
        assert spec_hash(handwritten) == spec_hash(spec)
        relaxed = spec.derive(
            comm=Distribution.of("uniform", low=1, high=10),
            comp=Distribution.of("uniform", low=1, high=10),
        )
        assert spec_hash(relaxed) == spec_hash(spec)


class TestSpecJsonErrorPaths:
    """Malformed spec documents must fail loudly, with actionable messages,
    through the same ``from_json`` path the CLI uses for spec files."""

    def _payload(self, **overrides) -> dict:
        payload = named_space("fig12").as_dict()
        payload.update(overrides)
        return payload

    def test_malformed_distribution_kind_in_family(self):
        payload = self._payload()
        payload["family"]["comm"] = {"kind": "zipf", "params": {"s": 2.0}}
        with pytest.raises(ExperimentError, match="unknown distribution kind 'zipf'"):
            ScenarioSpec.from_dict(payload)

    def test_distribution_parameter_mismatch_in_family(self):
        payload = self._payload()
        payload["family"]["comp"] = {"kind": "uniform", "params": {"low": 1.0}}
        with pytest.raises(ExperimentError, match="missing parameters \\['high'\\]"):
            ScenarioSpec.from_dict(payload)

    @pytest.mark.parametrize("correlation", (-1.5, 1.0001, 7.0))
    def test_correlation_out_of_range(self, correlation):
        payload = self._payload()
        payload["family"]["correlation"] = correlation
        with pytest.raises(ExperimentError, match="correlation must lie in \\[-1, 1\\]"):
            ScenarioSpec.from_dict(payload)

    def test_unknown_heuristic_names_the_evaluable_set(self):
        payload = self._payload(heuristics=["INC_C", "RANDOM"])
        with pytest.raises(ExperimentError, match="unknown heuristics \\['RANDOM'\\]"):
            ScenarioSpec.from_dict(payload)

    def test_empty_matrix_sizes(self):
        payload = self._payload(matrix_sizes=[])
        with pytest.raises(ExperimentError, match="at least one matrix size"):
            ScenarioSpec.from_dict(payload)


class TestProductSpecs:
    def test_grid_product(self):
        specs = product_specs(named_space("fig12"), workers=(5, 11), seed=(0, 1, 2))
        assert len(specs) == 6
        assert {spec.family.workers for spec in specs} == {5, 11}
        assert {spec.family.seed for spec in specs} == {0, 1, 2}
        assert len({spec.name for spec in specs}) == 6
        assert len({spec_hash(spec) for spec in specs}) == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            product_specs(named_space("fig12"), seed=())
