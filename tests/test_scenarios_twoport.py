"""Tests of the two-port scenario evaluation chain.

Three load-bearing guarantees:

* **reference parity** — a ``one_port: false`` campaign persists, per
  (platform, size, heuristic), exactly the values of the scalar reference
  path: :mod:`repro.core.twoport` schedules measured through
  :func:`repro.simulation.executor.measure_heuristic` with
  ``one_port=False`` and one shared noise stream per cell (bit-identical,
  for every noise model a spec can name);
* **resume semantics** — interrupted two-port campaigns resume
  byte-identically, through the Python API and through the CLI's
  run → SIGINT → resume cycle;
* **determinism across jobs** — every ``jobs`` setting persists identical
  rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.heuristics import HeuristicResult
from repro.core.twoport import (
    optimal_two_port_fifo_schedule,
    optimal_two_port_lifo_schedule,
    two_port_fifo_for_order,
)
from repro.experiments.campaign_engine import noise_seed, prepare_cells
from repro.experiments.common import default_noise
from repro.experiments.fig13_ratio import overhead_noise
from repro.scenarios.runner import run_campaign
from repro.scenarios.spec import named_space, spec_hash
from repro.simulation.executor import measure_heuristic
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors


def two_port_spec(name="small-2p", count=4, sizes=(40, 120), noise="default"):
    return named_space("fig12-twoport").derive(
        name=name, count=count, matrix_sizes=sizes, noise=noise
    )


def _reference_heuristic(platform, name):
    """Scalar two-port evaluation of one heuristic (the reference path)."""
    if name == "LIFO":
        solution = optimal_two_port_lifo_schedule(platform)
    elif name == "OPT_FIFO":
        solution = optimal_two_port_fifo_schedule(platform)
    elif name == "INC_C":
        solution = two_port_fifo_for_order(platform, platform.ordered_by_c())
    elif name == "INC_W":
        solution = two_port_fifo_for_order(platform, platform.ordered_by_w())
    elif name == "DEC_C":
        solution = two_port_fifo_for_order(
            platform, platform.ordered_by_c(descending=True)
        )
    elif name == "PLATFORM_ORDER":
        solution = two_port_fifo_for_order(platform, platform.worker_names)
    else:  # pragma: no cover - guard for new spec heuristics
        raise AssertionError(f"no reference wired for {name!r}")
    return HeuristicResult(
        name=name, schedule=solution.schedule, throughput=solution.throughput
    )


class TestReferenceParity:
    @pytest.mark.parametrize(
        "space, campaign_kind, scale_kwargs",
        [
            ("fig10-twoport", "homogeneous", {}),
            ("fig11-twoport", "hetero-comp", {}),
            ("fig12-twoport", "hetero-star", {}),
            ("fig13a-twoport", "hetero-star", {"comp": 10.0}),
            ("fig13b-twoport", "hetero-star", {"comm": 10.0}),
        ],
    )
    def test_rows_match_scalar_two_port_path(self, tmp_path, space, campaign_kind, scale_kwargs):
        """Every persisted value == the scalar twoport + measure path."""
        spec = named_space(space).derive(count=3, matrix_sizes=(40, 200))
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        assert progress.finished
        rows = progress.rows()
        assert len(rows) == spec.scenario_count

        factors = [
            factor_set.scaled(**scale_kwargs) if scale_kwargs else factor_set
            for factor_set in campaign_factors(
                campaign_kind, spec.family.count,
                size=spec.family.workers, seed=spec.family.seed,
            )
        ]
        noise_factory = overhead_noise if spec.noise == "overhead" else default_noise
        total = spec.total_tasks
        for row in rows:
            index, size = row["platform"], row["size"]
            platform = factors[index].platform(MatrixProductWorkload(size))
            results = {
                name: _reference_heuristic(platform, name) for name in spec.heuristics
            }
            reference_time = total / results[spec.reference].throughput
            noise = noise_factory(noise_seed(spec.family.seed, index, size))
            for name in spec.heuristics:
                report = measure_heuristic(
                    results[name], total, noise=noise, one_port=False,
                    collect_trace=False,
                )
                lp = (total / results[name].throughput) / reference_time
                assert row["values"][f"{name} lp"] == lp
                assert (
                    row["values"][f"{name} real"]
                    == report.measured_makespan / reference_time
                )
                assert row["values"][f"{name} workers"] == len(report.participants)
            assert row["values"][f"{spec.reference} time"] == reference_time

    def test_every_evaluable_heuristic_matches_reference(self, tmp_path):
        """All six spec heuristics — incl. DEC_C / PLATFORM_ORDER /
        OPT_FIFO — pin against the scalar two-port path, LP and measured."""
        from repro.scenarios.spec import EVALUABLE_HEURISTICS

        spec = named_space("fig12-twoport").derive(
            name="all-heuristics",
            count=2,
            matrix_sizes=(40, 120),
            heuristics=EVALUABLE_HEURISTICS,
        )
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        assert progress.finished

        factors = campaign_factors(
            "hetero-star", spec.family.count,
            size=spec.family.workers, seed=spec.family.seed,
        )
        total = spec.total_tasks
        for row in progress.rows():
            index, size = row["platform"], row["size"]
            platform = factors[index].platform(MatrixProductWorkload(size))
            results = {
                name: _reference_heuristic(platform, name) for name in spec.heuristics
            }
            reference_time = total / results[spec.reference].throughput
            noise = default_noise(noise_seed(spec.family.seed, index, size))
            for name in spec.heuristics:
                report = measure_heuristic(
                    results[name], total, noise=noise, one_port=False,
                    collect_trace=False,
                )
                assert (
                    row["values"][f"{name} lp"]
                    == (total / results[name].throughput) / reference_time
                )
                assert (
                    row["values"][f"{name} real"]
                    == report.measured_makespan / reference_time
                )

    def test_lp_only_two_port_space(self, tmp_path):
        spec = two_port_spec(noise=None)
        progress = run_campaign(spec, tmp_path, chunk_size=2)
        assert progress.finished
        for row in progress.rows():
            assert not any(series.endswith(" real") for series in row["values"])
            assert f"{spec.reference} lp" in row["values"]
            assert row["values"][f"{spec.reference} lp"] == 1.0

    def test_two_port_lp_at_least_one_port(self, tmp_path):
        """Same factors, same heuristic: the two-port reference time can
        never exceed the one-port one (any one-port schedule is two-port
        feasible)."""
        one_port = named_space("fig12").derive(count=3, matrix_sizes=(120,), noise=None)
        two_port = named_space("fig12-twoport").derive(
            count=3, matrix_sizes=(120,), noise=None
        )
        rows_one = run_campaign(one_port, tmp_path / "one", chunk_size=3).rows()
        rows_two = run_campaign(two_port, tmp_path / "two", chunk_size=3).rows()
        reference = one_port.reference
        for row_one, row_two in zip(rows_one, rows_two):
            assert (
                row_two["values"][f"{reference} time"]
                <= row_one["values"][f"{reference} time"] + 1e-12
            )

    def test_prepare_cells_rejects_unknown_heuristic(self):
        with pytest.raises(Exception, match="unknown two-port heuristic"):
            prepare_cells(
                ("NOPE",), "NOPE", 1000,
                [(("k",), np.array([1.0]), np.array([1.0]), np.array([1.0]))],
                one_port=False,
            )


class TestResumeSemantics:
    def test_interrupted_two_port_campaign_resumes_byte_identically(self, tmp_path):
        spec = two_port_spec()
        uninterrupted = run_campaign(spec, tmp_path / "full", chunk_size=2)
        assert uninterrupted.finished

        partial = run_campaign(spec, tmp_path / "resumed", chunk_size=2, max_chunks=1)
        assert not partial.finished
        resumed = run_campaign(spec, tmp_path / "resumed", chunk_size=2)
        assert resumed.finished
        full_bytes = (tmp_path / "full" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        resumed_bytes = (
            tmp_path / "resumed" / spec_hash(spec) / "chunks.jsonl"
        ).read_bytes()
        assert full_bytes == resumed_bytes

    def test_jobs_do_not_change_rows(self, tmp_path):
        spec = two_port_spec()
        serial = run_campaign(spec, tmp_path / "serial", chunk_size=2, jobs=1)
        parallel = run_campaign(spec, tmp_path / "parallel", chunk_size=2, jobs=2)
        assert serial.rows() == parallel.rows()


class TestCliCycle:
    SPACE = "fig12-twoport"
    FLAGS = ("--count", "4", "--chunk-size", "2")

    def _run(self, verb, store, *extra):
        return main(
            ["scenarios", verb, self.SPACE, "--store", str(store), *self.FLAGS, *extra]
        )

    def test_run_sigint_resume_is_byte_identical(self, tmp_path, monkeypatch, capsys):
        """CLI run -> SIGINT -> resume == one uninterrupted CLI run."""
        assert self._run("run", tmp_path / "full") == 0

        # Deterministic SIGINT: raise KeyboardInterrupt (what the signal
        # handler raises) from the progress callback once a chunk group
        # has been persisted.
        from repro.scenarios import runner as runner_module

        real_run_campaign = runner_module.run_campaign

        def interrupting(spec, store, **kwargs):
            inner = kwargs.get("progress")

            def progress(done, total):
                if inner is not None:
                    inner(done, total)
                raise KeyboardInterrupt

            kwargs["progress"] = progress
            return real_run_campaign(spec, store, **kwargs)

        monkeypatch.setattr(runner_module, "run_campaign", interrupting)
        assert self._run("run", tmp_path / "cycled") == 130
        out = capsys.readouterr().out
        assert "interrupted" in out and "scenarios resume" in out
        monkeypatch.undo()

        assert self._run("resume", tmp_path / "cycled") == 0

        spec = named_space(self.SPACE).derive(count=4)
        full = (tmp_path / "full" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        cycled = (tmp_path / "cycled" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        assert full == cycled

    def test_jobs_flag_accepted_for_two_port_spaces(self, tmp_path):
        assert self._run("run", tmp_path / "jobs", "--jobs", "2") == 0
        spec = named_space(self.SPACE).derive(count=4)
        jobs_bytes = (tmp_path / "jobs" / spec_hash(spec) / "chunks.jsonl").read_bytes()
        assert self._run("run", tmp_path / "serial") == 0
        serial_bytes = (
            tmp_path / "serial" / spec_hash(spec) / "chunks.jsonl"
        ).read_bytes()
        assert jobs_bytes == serial_bytes

    def test_show_reports_two_port_progress(self, tmp_path, capsys):
        assert self._run("run", tmp_path / "store", "--max-chunks", "1") == 0
        capsys.readouterr()
        # `show` takes the space/store/count flags but no chunk plan.
        assert (
            main(
                ["scenarios", "show", self.SPACE, "--store", str(tmp_path / "store"),
                 "--count", "4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert '"one_port": false' in out
        assert "completed chunks: 1" in out
