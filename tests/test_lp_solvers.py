"""Tests for the LP backends: exact simplex and SciPy/HiGHS.

Besides unit tests of each backend on hand-solvable programs, a
hypothesis-driven property test checks that both backends agree on random
small programs of the shape produced by the scheduling code (non-negative
variables, ``<=`` rows with non-negative coefficients and positive
right-hand sides — always feasible and bounded).
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SolverError
from repro.lp import (
    ExactSimplexSolver,
    LinearProgram,
    LPStatus,
    ScipySolver,
    default_solver,
    get_solver,
    solve_exact,
    solve_scipy,
)


def _simple_program() -> LinearProgram:
    """max x + y  s.t.  x + 2y <= 4,  3x + y <= 6  (optimum 2.8 at (1.6, 1.2))."""
    program = LinearProgram("simple")
    program.add_variable("x")
    program.add_variable("y")
    program.set_objective({"x": 1.0, "y": 1.0})
    program.add_constraint("c1", {"x": 1.0, "y": 2.0}, "<=", 4.0)
    program.add_constraint("c2", {"x": 3.0, "y": 1.0}, "<=", 6.0)
    return program


class TestExactSimplex:
    def test_simple_optimum(self):
        result = solve_exact(_simple_program())
        assert result.is_optimal
        assert result.objective == pytest.approx(2.8)
        assert result.value("x") == pytest.approx(1.6)
        assert result.value("y") == pytest.approx(1.2)
        assert result.backend == "exact-simplex"
        # exact values are true rationals
        assert result.exact_values["x"] == Fraction(8, 5)

    def test_respects_upper_bounds(self):
        program = LinearProgram()
        program.add_variable("x", upper=2.0)
        program.set_objective({"x": 1.0})
        program.add_constraint("c", {"x": 1.0}, "<=", 10.0)
        result = solve_exact(program)
        assert result.objective == pytest.approx(2.0)

    def test_handles_ge_and_eq_constraints(self):
        # max x + y with x == 1 and y >= 0.5, y <= 2
        program = LinearProgram()
        program.add_variable("x")
        program.add_variable("y")
        program.set_objective({"x": 1.0, "y": 1.0})
        program.add_constraint("fix", {"x": 1.0}, "==", 1.0)
        program.add_constraint("low", {"y": 1.0}, ">=", 0.5)
        program.add_constraint("high", {"y": 1.0}, "<=", 2.0)
        result = solve_exact(program)
        assert result.is_optimal
        assert result.value("x") == pytest.approx(1.0)
        assert result.value("y") == pytest.approx(2.0)

    def test_detects_infeasibility(self):
        program = LinearProgram()
        program.add_variable("x")
        program.set_objective({"x": 1.0})
        program.add_constraint("a", {"x": 1.0}, ">=", 2.0)
        program.add_constraint("b", {"x": 1.0}, "<=", 1.0)
        result = solve_exact(program)
        assert result.status is LPStatus.INFEASIBLE
        assert not result.is_optimal

    def test_detects_unboundedness(self):
        program = LinearProgram()
        program.add_variable("x")
        program.add_variable("y")
        program.set_objective({"x": 1.0})
        program.add_constraint("c", {"y": 1.0}, "<=", 1.0)
        result = solve_exact(program)
        assert result.status is LPStatus.UNBOUNDED

    def test_no_constraints_zero_objective(self):
        program = LinearProgram()
        program.add_variable("x")
        program.set_objective({})
        result = solve_exact(program)
        assert result.is_optimal
        assert result.objective == pytest.approx(0.0)

    def test_degenerate_problem_terminates(self):
        # A classic degenerate program; Bland's rule must not cycle.
        program = LinearProgram()
        for name in ("x1", "x2", "x3"):
            program.add_variable(name)
        program.set_objective({"x1": 0.75, "x2": -150.0, "x3": 0.02})
        program.add_constraint("r1", {"x1": 0.25, "x2": -60.0, "x3": -0.04}, "<=", 0.0)
        program.add_constraint("r2", {"x1": 0.5, "x2": -90.0, "x3": -0.02}, "<=", 0.0)
        program.add_constraint("r3", {"x3": 1.0}, "<=", 1.0)
        result = solve_exact(program)
        assert result.is_optimal

    def test_iteration_cap(self):
        with pytest.raises(SolverError):
            ExactSimplexSolver(max_iterations=0)

    def test_result_vector_helper(self):
        result = solve_exact(_simple_program())
        assert result.vector(["x", "y"]) == pytest.approx([1.6, 1.2])
        assert result.value("missing") == 0.0


class TestScipyBackend:
    def test_simple_optimum(self):
        result = solve_scipy(_simple_program())
        assert result.is_optimal
        assert result.objective == pytest.approx(2.8)
        assert result.backend == "scipy-highs"

    def test_infeasible(self):
        program = LinearProgram()
        program.add_variable("x")
        program.set_objective({"x": 1.0})
        program.add_constraint("a", {"x": 1.0}, ">=", 2.0)
        program.add_constraint("b", {"x": 1.0}, "<=", 1.0)
        assert solve_scipy(program).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        program = LinearProgram()
        program.add_variable("x")
        program.add_variable("y")
        program.set_objective({"x": 1.0})
        program.add_constraint("c", {"y": 1.0}, "<=", 1.0)
        assert solve_scipy(program).status is LPStatus.UNBOUNDED

    def test_rejects_empty_program(self):
        with pytest.raises(SolverError):
            solve_scipy(LinearProgram())

    def test_upper_bounds(self):
        program = LinearProgram()
        program.add_variable("x", upper=3.0)
        program.set_objective({"x": 2.0})
        program.add_constraint("c", {"x": 1.0}, "<=", 10.0)
        assert solve_scipy(program).objective == pytest.approx(6.0)


class TestSolverRegistry:
    def test_get_solver_by_name(self):
        assert isinstance(get_solver("exact"), ExactSimplexSolver)
        assert isinstance(get_solver("simplex"), ExactSimplexSolver)
        assert isinstance(get_solver("scipy"), ScipySolver)
        assert isinstance(get_solver("highs"), ScipySolver)
        assert isinstance(get_solver(None), ScipySolver)
        assert isinstance(default_solver(), ScipySolver)

    def test_get_solver_passthrough_instance(self):
        solver = ExactSimplexSolver()
        assert get_solver(solver) is solver

    def test_get_solver_unknown_name(self):
        with pytest.raises(SolverError):
            get_solver("cplex")

    def test_get_solver_rejects_non_solver_object(self):
        with pytest.raises(SolverError):
            get_solver(42)  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# agreement between the two backends on random (feasible, bounded) programs
# --------------------------------------------------------------------------- #
@st.composite
def bounded_programs(draw: st.DrawFn) -> LinearProgram:
    """Random programs that are always feasible (x=0) and bounded.

    Every variable receives a positive coefficient in at least one row, so the
    objective cannot grow without bound.
    """
    num_vars = draw(st.integers(min_value=1, max_value=5))
    num_rows = draw(st.integers(min_value=1, max_value=6))
    coeff = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
    positive = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
    program = LinearProgram("random")
    names = [f"x{i}" for i in range(num_vars)]
    for name in names:
        program.add_variable(name)
    program.set_objective({name: draw(positive) for name in names})
    for row in range(num_rows):
        coefficients = {name: draw(coeff) for name in names}
        if all(value == 0.0 for value in coefficients.values()):
            coefficients[names[0]] = 1.0
        program.add_constraint(f"r{row}", coefficients, "<=", draw(positive))
    # guarantee boundedness: cap every variable by one extra row
    for index, name in enumerate(names):
        program.add_constraint(f"cap{index}", {name: 1.0}, "<=", 10.0)
    return program


class TestBackendAgreement:
    @settings(max_examples=40, deadline=None)
    @given(bounded_programs())
    def test_exact_and_scipy_agree(self, program):
        exact = solve_exact(program)
        scipy_result = solve_scipy(program)
        assert exact.is_optimal and scipy_result.is_optimal
        assert exact.objective == pytest.approx(scipy_result.objective, rel=1e-6, abs=1e-8)
        # both solutions must be feasible for the model
        assert program.is_feasible(exact.values, tol=1e-6)
        assert program.is_feasible(scipy_result.values, tol=1e-6)
