"""Tests for the workload and platform generators (:mod:`repro.workloads`)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import (
    DEFAULT_WORKERS,
    FACTOR_RANGE,
    PlatformFactors,
    campaign_factors,
    hetero_computation_factors,
    hetero_star_factors,
    homogeneous_factors,
    participation_platform,
    random_factors,
)


class TestMatrixWorkload:
    def test_volumes_and_z(self):
        workload = MatrixProductWorkload(100)
        assert workload.input_bytes == pytest.approx(2 * 100 * 100 * 8)
        assert workload.output_bytes == pytest.approx(100 * 100 * 8)
        assert workload.flops == pytest.approx(2 * 100**3)
        assert workload.z == pytest.approx(0.5)

    def test_base_costs_scale_with_rates(self):
        slow = MatrixProductWorkload(100, bandwidth=1e6, flop_rate=1e8)
        fast = MatrixProductWorkload(100, bandwidth=2e6, flop_rate=2e8)
        assert slow.base_c == pytest.approx(2 * fast.base_c)
        assert slow.base_w == pytest.approx(2 * fast.base_w)

    def test_computation_grows_faster_than_communication(self):
        small = MatrixProductWorkload(50)
        large = MatrixProductWorkload(200)
        assert large.base_w / small.base_w == pytest.approx(64.0)
        assert large.base_c / small.base_c == pytest.approx(16.0)

    def test_worker_factory_applies_factors(self):
        workload = MatrixProductWorkload(100)
        worker = workload.worker("X", comm_factor=4.0, comp_factor=2.0)
        assert worker.c == pytest.approx(workload.base_c / 4.0)
        assert worker.d == pytest.approx(workload.base_d / 4.0)
        assert worker.w == pytest.approx(workload.base_w / 2.0)
        assert worker.z == pytest.approx(0.5)

    def test_platform_factory(self):
        workload = MatrixProductWorkload(100)
        platform = workload.platform([1.0, 2.0], [1.0, 3.0])
        assert platform.worker_names == ["P1", "P2"]
        assert platform.z == pytest.approx(0.5)

    def test_transfer_time_is_linear(self):
        workload = MatrixProductWorkload(100)
        assert workload.transfer_time(2.0) == pytest.approx(2 * workload.transfer_time(1.0))
        assert workload.transfer_time(1.0, comm_factor=2.0) == pytest.approx(
            workload.transfer_time(1.0) / 2.0
        )

    def test_validation(self):
        with pytest.raises(ExperimentError):
            MatrixProductWorkload(0)
        with pytest.raises(ExperimentError):
            MatrixProductWorkload(10, bandwidth=0)
        workload = MatrixProductWorkload(100)
        with pytest.raises(ExperimentError):
            workload.worker("X", comm_factor=0.0)
        with pytest.raises(ExperimentError):
            workload.platform([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            workload.platform([], [])
        with pytest.raises(ExperimentError):
            workload.transfer_time(-1.0)


class TestPlatformFactors:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            PlatformFactors(comm=(1.0,), comp=(1.0, 2.0))
        with pytest.raises(ExperimentError):
            PlatformFactors(comm=(), comp=())
        with pytest.raises(ExperimentError):
            PlatformFactors(comm=(0.0,), comp=(1.0,))

    def test_scaled(self):
        factors = PlatformFactors(comm=(1.0, 2.0), comp=(3.0, 4.0))
        scaled = factors.scaled(comm=10.0)
        assert scaled.comm == (10.0, 20.0)
        assert scaled.comp == (3.0, 4.0)
        with pytest.raises(ExperimentError):
            factors.scaled(comm=0.0)

    def test_platform_instantiation(self):
        workload = MatrixProductWorkload(80)
        factors = PlatformFactors(comm=(2.0, 1.0), comp=(1.0, 5.0), label="demo")
        platform = factors.platform(workload)
        assert platform.name == "demo"
        assert platform["P1"].c == pytest.approx(workload.base_c / 2.0)
        assert factors.size == 2

    def test_random_factors_respect_range_and_flags(self, rng):
        factors = random_factors(rng, size=20)
        assert all(FACTOR_RANGE[0] <= f <= FACTOR_RANGE[1] for f in factors.comm + factors.comp)
        homogeneous_comm = random_factors(rng, size=5, heterogeneous_comm=False)
        assert homogeneous_comm.comm == (1.0,) * 5
        assert homogeneous_factors(3).comm == (1.0, 1.0, 1.0)

    def test_named_generators(self, rng):
        assert hetero_computation_factors(rng, size=4).comm == (1.0,) * 4
        star = hetero_star_factors(rng, size=4)
        assert len(set(star.comm)) > 1


class TestCampaigns:
    def test_campaign_sizes_and_determinism(self):
        first = campaign_factors("hetero-star", 5, seed=3)
        second = campaign_factors("hetero-star", 5, seed=3)
        assert len(first) == 5
        assert all(f.size == DEFAULT_WORKERS for f in first)
        assert [f.comm for f in first] == [f.comm for f in second]

    def test_campaign_seeds_differ(self):
        a = campaign_factors("hetero-star", 3, seed=1)
        b = campaign_factors("hetero-star", 3, seed=2)
        assert [f.comm for f in a] != [f.comm for f in b]

    def test_homogeneous_campaign_is_identical_platforms(self):
        campaign = campaign_factors("homogeneous", 3)
        assert all(f.comm == (1.0,) * DEFAULT_WORKERS for f in campaign)

    def test_unknown_kind_and_bad_count(self):
        with pytest.raises(ExperimentError):
            campaign_factors("weird", 3)
        with pytest.raises(ExperimentError):
            campaign_factors("homogeneous", 0)


class TestParticipationPlatform:
    def test_full_table(self):
        workload = MatrixProductWorkload(400)
        platform = participation_platform(3.0, workload)
        assert len(platform) == 4
        # worker 4 is the slow one: comm factor x, comp factor 1
        assert platform["P4"].c == pytest.approx(workload.base_c / 3.0)
        assert platform["P4"].w == pytest.approx(workload.base_w)
        assert platform["P1"].c == pytest.approx(workload.base_c / 10.0)

    def test_available_workers_prefix(self):
        workload = MatrixProductWorkload(400)
        platform = participation_platform(1.0, workload, available_workers=2)
        assert platform.worker_names == ["P1", "P2"]

    def test_validation(self):
        workload = MatrixProductWorkload(400)
        with pytest.raises(ExperimentError):
            participation_platform(0.0, workload)
        with pytest.raises(ExperimentError):
            participation_platform(1.0, workload, available_workers=5)


class TestFixedDistribution:
    """The ``fixed`` kind: explicit per-worker factors, no random stream."""

    def test_sampling_tiles_the_vector(self):
        from repro.workloads.sampling import Distribution, PlatformFamily, sample_factors

        family = PlatformFamily(
            workers=3, count=4, seed=0,
            comm=Distribution.of("fixed", values=(1.0, 2.0, 3.0)),
        )
        table = sample_factors(family)
        assert table.comm.tolist() == [[1.0, 2.0, 3.0]] * 4
        assert table.comp.tolist() == [[1.0, 1.0, 1.0]] * 4

    def test_fixed_consumes_no_random_stream(self):
        """A fixed dimension must not shift the draws of the random one."""
        from repro.workloads.sampling import (
            PAPER_UNIFORM, Distribution, PlatformFamily, sample_factors,
        )

        fixed = PlatformFamily(
            workers=3, count=2, seed=7,
            comm=Distribution.of("fixed", values=(1.0, 2.0, 3.0)), comp=PAPER_UNIFORM,
        )
        constant = PlatformFamily(workers=3, count=2, seed=7, comp=PAPER_UNIFORM)
        assert sample_factors(fixed).comp.tolist() == sample_factors(constant).comp.tolist()

    def test_length_must_match_the_worker_count(self):
        from repro.workloads.sampling import Distribution, PlatformFamily

        with pytest.raises(ExperimentError, match="3 values for 4 workers"):
            PlatformFamily(
                workers=4, count=1, seed=0,
                comm=Distribution.of("fixed", values=(1.0, 2.0, 3.0)),
            )

    def test_values_must_be_positive_and_non_empty(self):
        from repro.workloads.sampling import Distribution

        with pytest.raises(ExperimentError):
            Distribution.of("fixed", values=())
        with pytest.raises(ExperimentError):
            Distribution.of("fixed", values=(1.0, -2.0))
        with pytest.raises(ExperimentError, match="'values' must be a list"):
            Distribution.of("fixed", values=3.0)
        with pytest.raises(ExperimentError, match="'low' must be a single number"):
            Distribution.of("uniform", low=[1.0], high=2.0)

    def test_json_round_trip_keeps_the_vector(self):
        from repro.workloads.sampling import Distribution

        dist = Distribution.of("fixed", values=[1, 2, 3])
        assert dist.param("values") == (1.0, 2.0, 3.0)
        assert Distribution.from_dict(dist.as_dict()) == dist
        assert dist.as_dict()["params"]["values"] == [1.0, 2.0, 3.0]
