"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.platform import StarPlatform, Worker, bus_platform, homogeneous_platform


# --------------------------------------------------------------------------- #
# deterministic example platforms
# --------------------------------------------------------------------------- #
@pytest.fixture
def three_workers() -> StarPlatform:
    """A small fully heterogeneous platform with z = 1/2."""
    return StarPlatform(
        [
            Worker("P1", c=1.0, w=5.0, d=0.5),
            Worker("P2", c=2.0, w=3.0, d=1.0),
            Worker("P3", c=1.5, w=4.0, d=0.75),
        ],
        name="three",
    )


@pytest.fixture
def four_workers() -> StarPlatform:
    """A slightly larger heterogeneous platform with z = 1/2."""
    return StarPlatform(
        [
            Worker("A", c=0.8, w=6.0, d=0.4),
            Worker("B", c=1.6, w=2.5, d=0.8),
            Worker("C", c=1.1, w=4.0, d=0.55),
            Worker("D", c=2.4, w=1.5, d=1.2),
        ],
        name="four",
    )


@pytest.fixture
def bus_three() -> StarPlatform:
    """A three-worker bus platform (c=1, d=0.5)."""
    return bus_platform([5.0, 3.0, 4.0], c=1.0, d=0.5, name="bus-three")


@pytest.fixture
def homogeneous_five() -> StarPlatform:
    """A five-worker fully homogeneous platform."""
    return homogeneous_platform(5, c=1.0, w=4.0, d=0.5, name="homog-five")


@pytest.fixture
def z_greater_one() -> StarPlatform:
    """A platform whose return messages are larger than the initial ones (z=2)."""
    return StarPlatform(
        [
            Worker("P1", c=1.0, w=5.0, d=2.0),
            Worker("P2", c=2.0, w=3.0, d=4.0),
            Worker("P3", c=1.5, w=4.0, d=3.0),
        ],
        name="z2",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded numpy generator for deterministic randomised tests."""
    return np.random.default_rng(20060501)


# --------------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------------- #
def worker_costs(min_value: float = 0.05, max_value: float = 20.0) -> st.SearchStrategy[float]:
    """Positive, finite, well-scaled cost values."""
    return st.floats(
        min_value=min_value, max_value=max_value, allow_nan=False, allow_infinity=False
    )


@st.composite
def platforms(
    draw: st.DrawFn,
    min_size: int = 1,
    max_size: int = 5,
    z: float | None = 0.5,
) -> StarPlatform:
    """Random star platforms; when ``z`` is given, ``d = z * c`` for every worker."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    workers = []
    for index in range(size):
        c = draw(worker_costs())
        w = draw(worker_costs())
        if z is None:
            d = draw(worker_costs())
        else:
            d = z * c
        workers.append(Worker(name=f"P{index + 1}", c=c, w=w, d=d))
    return StarPlatform(workers, name="hypothesis")


@st.composite
def bus_platforms(
    draw: st.DrawFn, min_size: int = 1, max_size: int = 6
) -> StarPlatform:
    """Random bus platforms (shared c and d, heterogeneous w)."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    c = draw(worker_costs())
    d = draw(worker_costs())
    compute = [draw(worker_costs()) for _ in range(size)]
    return bus_platform(compute, c=c, d=d, name="hypothesis-bus")
