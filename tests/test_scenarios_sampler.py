"""Tests for the array-native sampler (:mod:`repro.workloads.sampling`).

The load-bearing assertions are the bit-identity pins: the vectorised
factor draws must reproduce the historical sequential generator stream of
the paper's campaigns exactly, and the stacked cost tables must equal the
object path's worker costs bit for bit — that is what makes sampler-fed
campaigns interchangeable with ``StarPlatform``-object campaigns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heuristics import compare_heuristics
from repro.core.order_rules import (
    ORDER_RULES,
    lifo_chain_values,
    sorted_indices,
    worker_names,
)
from repro.workloads.sampling import (
    base_costs,
    cost_table,
    family_cost_tables,
    sample_factors,
)
from repro.scenarios.spec import Distribution, PlatformFamily, named_space
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import (
    campaign_factors,
    hetero_computation_factors,
    hetero_star_factors,
    homogeneous_factors,
)


def sequential_factors(kind: str, count: int, size: int, seed: int):
    """The historical object path: one platform drawn at a time from a
    single shared generator (what ``campaign_factors`` did before it was
    lifted onto the sampler)."""
    rng = np.random.default_rng(seed)
    factories = {
        "homogeneous": lambda: homogeneous_factors(size),
        "hetero-comp": lambda: hetero_computation_factors(rng, size),
        "hetero-star": lambda: hetero_star_factors(rng, size),
    }
    return [factories[kind]() for _ in range(count)]


#: (named space, campaign kind) pairs tying the spec library to the
#: paper's factor-set generators.
PAPER_SPACES = (
    ("fig10", "homogeneous"),
    ("fig11", "hetero-comp"),
    ("fig12", "hetero-star"),
    ("fig13a", "hetero-star"),
    ("fig13b", "hetero-star"),
)


class TestPaperFactorParity:
    @pytest.mark.parametrize("space, kind", PAPER_SPACES)
    def test_draws_bit_identical_to_sequential_object_path(self, space, kind):
        spec = named_space(space)
        table = sample_factors(spec.family)
        sequential = sequential_factors(kind, spec.family.count, spec.family.workers,
                                        spec.family.seed)
        scale = spec.family.comm_scale, spec.family.comp_scale
        for index, factors in enumerate(sequential):
            if scale != (1.0, 1.0):
                factors = factors.scaled(comm=scale[0], comp=scale[1])
            assert (np.array(factors.comm) == table.comm[index]).all()
            assert (np.array(factors.comp) == table.comp[index]).all()

    @pytest.mark.parametrize("kind", ["homogeneous", "hetero-comp", "hetero-star"])
    def test_campaign_factors_matches_sequential_path(self, kind):
        """The public generator (now sampler-backed) keeps its old stream."""
        vectorised = campaign_factors(kind, 7, size=11, seed=5)
        sequential = sequential_factors(kind, 7, 11, 5)
        for new, old in zip(vectorised, sequential):
            assert new.comm == old.comm
            assert new.comp == old.comp
        assert [f.label for f in vectorised] == [f"{kind}-{i}" for i in range(7)]

    def test_prefix_property(self):
        """A smaller count draws a prefix of the larger count's platforms."""
        spec = named_space("fig12")
        small = sample_factors(spec.derive(count=5).family)
        large = sample_factors(spec.family)
        assert (small.comm == large.comm[:5]).all()
        assert (small.comp == large.comp[:5]).all()


class TestCostTables:
    def test_bit_identical_to_platform_cost_vectors(self):
        spec = named_space("fig12").derive(count=6)
        table = sample_factors(spec.family)
        for size in (40, 120, 200):
            c, w, d = family_cost_tables(table, size)
            workload = MatrixProductWorkload(size)
            for index in range(spec.family.count):
                platform = workload.platform(
                    tuple(table.comm[index].tolist()), tuple(table.comp[index].tolist())
                )
                oc, ow, od = platform.cost_vectors(platform.worker_names)
                assert (c[index] == oc).all()
                assert (w[index] == ow).all()
                assert (d[index] == od).all()

    def test_base_costs_match_workload(self):
        workload = MatrixProductWorkload(120)
        assert base_costs(120) == (workload.base_c, workload.base_w, workload.base_d)

    def test_return_comm_drives_d_only(self):
        family = PlatformFamily(
            workers=4,
            count=3,
            seed=1,
            comm=Distribution.of("uniform", low=1.0, high=10.0),
            comp=Distribution.of("constant", value=1.0),
            return_comm=Distribution.of("uniform", low=1.0, high=4.0),
        )
        table = sample_factors(family)
        assert table.ret is not None
        assert not (table.ret == table.comm).all()
        base = base_costs(100)
        c, w, d = cost_table(base, table.comm, table.comp, table.ret)
        assert (c == base[0] / table.comm).all()
        assert (d == base[2] / table.ret).all()
        assert (w == base[1]).all()


class TestNewFamilies:
    def test_bimodal_values_are_two_clusters(self):
        spec = named_space("bimodal")
        table = sample_factors(spec.family)
        assert set(np.unique(table.comm)) <= {1.0, 10.0}
        assert set(np.unique(table.comp)) <= {1.0, 8.0}
        # both clusters actually appear at this family size
        assert len(np.unique(table.comm)) == 2

    def test_powerlaw_support(self):
        spec = named_space("power-law")
        table = sample_factors(spec.family)
        assert (table.comp >= 1.0).all()
        assert (table.comp <= 100.0).all()
        # Pareto tails: some draws land well above the uniform range
        assert table.comp.max() > 10.0

    def test_correlated_family(self):
        spec = named_space("bandwidth-correlated")
        table = sample_factors(spec.family)
        low, high = 1.0, 10.0
        assert (table.comm >= low).all() and (table.comm <= high).all()
        assert (table.comp >= low).all() and (table.comp <= high).all()
        correlation = np.corrcoef(table.comm.ravel(), table.comp.ravel())[0, 1]
        assert correlation > 0.7

    def test_correlation_preserves_uniform_marginals(self):
        """The Gaussian copula couples the dimensions without distorting
        the declared uniform(1, 10) marginals."""
        family = named_space("bandwidth-correlated").derive(count=2000).family
        table = sample_factors(family)
        uniform_mean = 5.5
        uniform_std = 9.0 / np.sqrt(12.0)
        for draws in (table.comm, table.comp):
            assert abs(draws.mean() - uniform_mean) < 0.1
            assert abs(draws.std() - uniform_std) < 0.05
            # tails are populated, not squeezed toward the middle
            assert (draws < 1.9).mean() > 0.07
            assert (draws > 9.1).mean() > 0.07

    def test_negative_correlation(self):
        family = named_space("bandwidth-correlated").family
        negative = sample_factors(
            PlatformFamily(
                workers=family.workers, count=family.count, seed=family.seed,
                comm=family.comm, comp=family.comp, correlation=-0.85,
            )
        )
        correlation = np.corrcoef(negative.comm.ravel(), negative.comp.ravel())[0, 1]
        assert correlation < -0.7

    def test_rows_view(self):
        table = sample_factors(named_space("fig12").family)
        view = table.rows(10, 20)
        assert view.count == 10
        assert (view.comm == table.comm[10:20]).all()


class TestHeuristicMirrors:
    def test_order_rules_match_object_heuristics(self):
        """Sampler tables + ORDER_RULES + kernel == compare_heuristics."""
        spec = named_space("fig12").derive(count=4)
        table = sample_factors(spec.family)
        size = 120
        c, w, d = family_cost_tables(table, size)
        workload = MatrixProductWorkload(size)
        names = worker_names(spec.family.workers)
        for index in range(spec.family.count):
            platform = workload.platform(
                tuple(table.comm[index].tolist()), tuple(table.comp[index].tolist())
            )
            results = compare_heuristics(platform, ("INC_C", "INC_W", "LIFO"))
            row_c, row_w, row_d = c[index].tolist(), w[index].tolist(), d[index].tolist()
            for name in ("INC_C", "INC_W"):
                order = ORDER_RULES[name](names, row_c, row_w, row_d)
                assert [names[i] for i in order] == list(results[name].schedule.sigma1)
            lifo_order = sorted_indices(names, row_c)
            values = lifo_chain_values(row_c, row_w, row_d, lifo_order)
            reference = [
                results["LIFO"].schedule.load(names[i]) for i in lifo_order
            ]
            assert values == reference
            assert sum(values) == results["LIFO"].throughput
