"""Tests for the LIFO baseline (:mod:`repro.core.lifo`)."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import best_lifo_by_enumeration
from repro.core.lifo import (
    lifo_closed_form_loads,
    lifo_schedule_for_order,
    optimal_lifo_order,
    optimal_lifo_schedule,
)
from repro.core.platform import StarPlatform, Worker
from repro.exceptions import ScheduleError


class TestClosedForm:
    def test_single_worker(self):
        platform = StarPlatform([Worker("P1", c=1.0, w=2.0, d=0.5)])
        loads = lifo_closed_form_loads(platform, ["P1"])
        assert loads["P1"] == pytest.approx(1.0 / 3.5)

    def test_chain_recurrence(self, three_workers):
        order = optimal_lifo_order(three_workers)
        loads = lifo_closed_form_loads(three_workers, order)
        # alpha_1 (c1 + d1 + w1) = 1
        first = three_workers[order[0]]
        assert loads[order[0]] * (first.c + first.d + first.w) == pytest.approx(1.0)
        # alpha_i (ci + di + wi) = alpha_{i-1} w_{i-1}
        for previous, current in zip(order, order[1:]):
            prev_spec = three_workers[previous]
            cur_spec = three_workers[current]
            assert loads[current] * (cur_spec.c + cur_spec.d + cur_spec.w) == pytest.approx(
                loads[previous] * prev_spec.w
            )

    def test_deadline_scales_linearly(self, three_workers):
        order = optimal_lifo_order(three_workers)
        unit = lifo_closed_form_loads(three_workers, order, deadline=1.0)
        double = lifo_closed_form_loads(three_workers, order, deadline=2.0)
        for name in order:
            assert double[name] == pytest.approx(2.0 * unit[name])

    def test_rejects_empty_order_and_bad_deadline(self, three_workers):
        with pytest.raises(ScheduleError):
            lifo_closed_form_loads(three_workers, [])
        with pytest.raises(ScheduleError):
            lifo_closed_form_loads(three_workers, ["P1"], deadline=0.0)


class TestOptimalLifo:
    def test_order_is_non_decreasing_c(self, three_workers):
        assert optimal_lifo_order(three_workers) == ["P1", "P3", "P2"]

    def test_closed_form_matches_lp(self, three_workers):
        closed = optimal_lifo_schedule(three_workers, method="closed-form")
        lp = optimal_lifo_schedule(three_workers, method="lp")
        assert closed.throughput == pytest.approx(lp.throughput, rel=1e-7)
        for name in three_workers.worker_names:
            assert closed.loads[name] == pytest.approx(lp.loads[name], rel=1e-6, abs=1e-9)

    def test_closed_form_matches_lp_four_workers(self, four_workers):
        closed = optimal_lifo_schedule(four_workers, method="closed-form")
        lp = optimal_lifo_schedule(four_workers, method="lp")
        assert closed.throughput == pytest.approx(lp.throughput, rel=1e-7)

    def test_matches_brute_force_ordering(self, three_workers):
        best = best_lifo_by_enumeration(three_workers)
        closed = optimal_lifo_schedule(three_workers)
        assert closed.throughput == pytest.approx(best.throughput, rel=1e-7)

    def test_schedule_is_lifo_feasible_and_without_idle(self, four_workers):
        solution = optimal_lifo_schedule(four_workers)
        schedule = solution.schedule
        assert schedule.is_lifo
        schedule.verify()
        # no worker idles in the optimal LIFO schedule
        for name, idle in schedule.idle_times().items():
            assert idle == pytest.approx(0.0, abs=1e-9)

    def test_all_workers_participate(self, four_workers):
        solution = optimal_lifo_schedule(four_workers)
        assert solution.participants == list(solution.order)
        assert len(solution.participants) == len(four_workers)

    def test_one_port_constraint_is_implied(self, four_workers):
        """The LIFO chain automatically satisfies the one-port coupling bound."""
        solution = optimal_lifo_schedule(four_workers)
        total_comm = sum(
            solution.loads[w.name] * w.round_trip for w in four_workers
        )
        assert total_comm <= 1.0 + 1e-9

    def test_unknown_method_rejected(self, three_workers):
        with pytest.raises(ScheduleError):
            optimal_lifo_schedule(three_workers, method="magic")

    def test_method_metadata(self, three_workers):
        assert optimal_lifo_schedule(three_workers).method == "closed-form"
        lp = optimal_lifo_schedule(three_workers, method="lp")
        assert lp.method == "lp"
        assert lp.scenario is not None


class TestFixedOrderLifo:
    def test_fixed_order(self, three_workers):
        solution = lifo_schedule_for_order(three_workers, ["P2", "P1", "P3"])
        assert solution.order == ("P2", "P1", "P3")
        assert solution.schedule.is_lifo
        solution.schedule.verify()

    def test_optimal_order_beats_arbitrary_orders(self, four_workers):
        import itertools

        best = optimal_lifo_schedule(four_workers).throughput
        for order in itertools.permutations(four_workers.worker_names):
            other = lifo_schedule_for_order(four_workers, order).throughput
            assert best >= other - 1e-9
