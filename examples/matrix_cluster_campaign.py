#!/usr/bin/env python3
"""Matrix-product campaign on a simulated heterogeneous cluster.

A compact version of the paper's Section 5 experiments: random 11-worker
platforms, ``M`` matrix products of size ``s``, and a comparison of the
``INC_C`` / ``INC_W`` / ``LIFO`` strategies — both their LP-predicted
completion times and the times measured on the (noisy) simulated cluster.

Run with::

    python examples/matrix_cluster_campaign.py [--platforms 10] [--tasks 1000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.heuristics import compare_heuristics
from repro.experiments.common import default_noise
from repro.simulation.executor import measure_heuristic
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import campaign_factors


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platforms", type=int, default=10, help="number of random platforms")
    parser.add_argument("--tasks", type=int, default=1000, help="matrix products per campaign")
    parser.add_argument("--matrix-size", type=int, default=160, help="matrix dimension")
    parser.add_argument("--seed", type=int, default=2006, help="campaign seed")
    args = parser.parse_args()

    workload = MatrixProductWorkload(args.matrix_size)
    heuristics = ("INC_C", "INC_W", "LIFO")
    predicted: dict[str, list[float]] = {name: [] for name in heuristics}
    measured: dict[str, list[float]] = {name: [] for name in heuristics}

    for index, factors in enumerate(
        campaign_factors("hetero-star", args.platforms, seed=args.seed)
    ):
        platform = factors.platform(workload)
        results = compare_heuristics(platform, heuristics)
        noise = default_noise(args.seed + index)
        for name, heuristic in results.items():
            report = measure_heuristic(heuristic, args.tasks, noise=noise)
            predicted[name].append(report.predicted_makespan)
            measured[name].append(report.measured_makespan)

    print(
        f"{args.platforms} random heterogeneous platforms, "
        f"{args.tasks} products of {args.matrix_size}x{args.matrix_size} matrices"
    )
    print(f"{'strategy':>10s}  {'LP time (s)':>12s}  {'measured (s)':>12s}  {'meas/LP':>8s}")
    reference = np.mean(predicted["INC_C"])
    for name in heuristics:
        lp_time = float(np.mean(predicted[name]))
        real_time = float(np.mean(measured[name]))
        print(
            f"{name:>10s}  {lp_time:12.3f}  {real_time:12.3f}  {real_time / lp_time:8.3f}"
            + ("   <- normalisation reference" if name == "INC_C" else "")
        )
    print(
        "\nTheorem 1 in action: INC_C (serve fast links first) never loses to INC_W "
        f"in LP time ({np.mean(predicted['INC_C']):.3f} vs {np.mean(predicted['INC_W']):.3f} s)."
    )
    print(f"Normalised to the INC_C LP prediction ({reference:.3f} s), as in Figures 10-13.")


if __name__ == "__main__":
    main()
