#!/usr/bin/env python3
"""Theorem 2 in practice: the closed-form optimal FIFO throughput on a bus.

Sweeps the computation-to-communication ratio on a homogeneous-link (bus)
platform and shows, for every point:

* the one-port FIFO optimum from the closed form of Theorem 2,
* the same value recomputed by the scenario linear program (they agree),
* the two-port FIFO optimum (the term rho~ of the theorem),
* the one-port port-capacity bound 1/(c+d),
* whether the constructive Figure 7 transformation had to insert a gap.

Run with::

    python examples/bus_closed_form.py
"""

from __future__ import annotations

from repro import (
    bus_platform,
    fifo_schedule_for_order,
    optimal_bus_fifo_schedule,
    optimal_bus_throughput,
    two_port_bus_throughput,
)
from repro.simulation import execute_schedule


def main() -> None:
    c, d = 1.0, 0.5  # z = 1/2, as for the matrix-product application
    workers = 8
    port_bound = 1.0 / (c + d)

    print(f"Bus platform: {workers} workers, c = {c}, d = {d} (port bound 1/(c+d) = {port_bound:.4f})")
    print()
    header = (
        f"{'w/c':>6s}  {'closed form':>11s}  {'scenario LP':>11s}  "
        f"{'two-port':>9s}  {'regime':>14s}  {'gap':>7s}"
    )
    print(header)
    print("-" * len(header))

    for ratio in (0.5, 1, 2, 4, 8, 12, 16, 24, 40, 80):
        w = ratio * c
        platform = bus_platform([w] * workers, c=c, d=d, name=f"bus-w{ratio}")
        closed = optimal_bus_throughput(platform)
        lp = fifo_schedule_for_order(platform, platform.worker_names).throughput
        two_port = two_port_bus_throughput(platform)
        construction = optimal_bus_fifo_schedule(platform)
        regime = "port-saturated" if construction.saturated else "compute-bound"
        print(
            f"{ratio:6.1f}  {closed:11.4f}  {lp:11.4f}  {two_port:9.4f}  "
            f"{regime:>14s}  {construction.gap:7.4f}"
        )
        # The constructed schedule really is one-port feasible: simulate it.
        report = execute_schedule(construction.schedule)
        assert report.measured_makespan <= 1.0 + 1e-9

    print()
    print("When computation is cheap the master's port is the bottleneck and the optimum")
    print("sticks to 1/(c+d); the Figure 7 transformation then inserts a uniform gap so the")
    print("return messages wait for the distribution phase to finish.  When computation is")
    print("expensive the two-port optimum is already one-port feasible and no gap is needed.")


if __name__ == "__main__":
    main()
