#!/usr/bin/env python3
"""Resource selection: when is a slow worker worth enrolling?

Reproduces and extends the participation study of Section 5.3.4: on a
platform with three fast workers and one slow worker whose link speed ``x``
varies, the optimal one-port FIFO schedule sometimes leaves the slow worker
out entirely — the phenomenon that distinguishes the return-message problem
from the classical divisible-load theory, where every worker is always used.

The final section asks the same questions through the query service
(:mod:`repro.api`) — the production front door that answers them from a
content-addressed cache at high QPS, bit-identical to the direct solver
calls used above.

Run with::

    python examples/resource_selection.py
"""

from __future__ import annotations

from repro import optimal_fifo_schedule, predicted_makespan
from repro.api import QueryService
from repro.workloads.matrices import MatrixProductWorkload
from repro.workloads.platforms import participation_platform


def main() -> None:
    workload = MatrixProductWorkload(400)
    total_tasks = 1000

    print("Platform of Section 5.3.4 (three fast workers + one slow worker):")
    print("  communication speed-ups: 10, 8, 8, x")
    print("  computation   speed-ups:  9, 9, 10, 1")
    print()

    print("Sweep of the slow worker's link speed x:")
    print(f"{'x':>6s}  {'enrolled':>9s}  {'P4 load %':>9s}  {'makespan for 1000 tasks (s)':>28s}")
    for x in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0, 10.0):
        platform = participation_platform(x, workload)
        solution = optimal_fifo_schedule(platform)
        share = solution.loads["P4"] / solution.schedule.total_load * 100.0
        makespan = predicted_makespan(solution.schedule, total_tasks)
        print(
            f"{x:6.1f}  {len(solution.participants):9d}  {share:9.2f}  {makespan:28.2f}"
        )

    print()
    print("As in the paper: for x = 1 the slow worker is never used (enrolling it")
    print("would delay the three fast workers' return messages more than it helps),")
    print("while for x = 3 it is enrolled and shaves a little off the completion time.")

    print()
    print("Availability study (Figure 14): number of workers the LP actually uses")
    print("when 1, 2, 3 or 4 workers are made available:")
    for x in (1.0, 3.0):
        row = []
        for available in range(1, 5):
            platform = participation_platform(x, workload, available_workers=available)
            solution = optimal_fifo_schedule(platform)
            makespan = predicted_makespan(solution.schedule, total_tasks)
            row.append(f"{available} avail -> {len(solution.participants)} used ({makespan:7.2f} s)")
        print(f"  x = {x:g}: " + " | ".join(row))

    print()
    print("Same question through the query service (repro.api) — answers are")
    print("bit-identical to the direct solver calls above and cache on repeat:")
    service = QueryService()
    for x in (1.0, 3.0):
        platform = participation_platform(x, workload)
        reference = optimal_fifo_schedule(platform)
        answer = service.query(platform, total_tasks=total_tasks)
        opt = answer.result("OPT_FIFO")
        assert opt.throughput == reference.throughput
        assert opt.predicted_makespan == predicted_makespan(reference.schedule, total_tasks)
        again = service.query(platform, total_tasks=total_tasks)
        assert again.cached and again == answer
        print(
            f"  x = {x:g}: best={answer.best} enrolled={len(opt.participants)} "
            f"makespan={answer.result('OPT_FIFO').predicted_makespan:7.2f} s "
            f"(second ask: cache hit)"
        )


if __name__ == "__main__":
    main()
