#!/usr/bin/env python3
"""Quickstart: optimal one-port FIFO scheduling with return messages.

Builds a small heterogeneous star platform, computes the optimal FIFO
schedule of Theorem 1 (including resource selection), compares it with the
LIFO baseline, and executes both on the simulated one-port cluster.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    StarPlatform,
    Worker,
    optimal_fifo_schedule,
    optimal_lifo_schedule,
)
from repro.simulation import ascii_gantt, execute_schedule


def main() -> None:
    # A star platform: per-unit initial-message cost c, computation cost w,
    # return-message cost d (here d = c / 2, i.e. z = 1/2 as for the paper's
    # matrix-product application).
    platform = StarPlatform(
        [
            Worker("fast-link", c=1.0, w=6.0, d=0.5),
            Worker("balanced", c=1.5, w=4.0, d=0.75),
            Worker("fast-cpu", c=2.5, w=2.0, d=1.25),
            Worker("slow", c=4.0, w=8.0, d=2.0),
        ],
        name="quickstart",
    )
    print(platform.describe())
    print()

    # Optimal FIFO schedule (Theorem 1): serve workers by non-decreasing c,
    # let the linear program pick the loads and the participating workers.
    fifo = optimal_fifo_schedule(platform)
    print(f"optimal FIFO order        : {' -> '.join(fifo.order)}")
    print(f"optimal FIFO throughput   : {fifo.throughput:.4f} load units / time unit")
    print(f"enrolled workers          : {', '.join(fifo.participants)}")
    for name, load in fifo.loads.items():
        print(f"    {name:>10s}: alpha = {load:.4f}")
    fifo.schedule.verify()  # raises if the schedule violated the one-port model

    # LIFO baseline (closed form): all workers, no idle time.
    lifo = optimal_lifo_schedule(platform)
    print(f"\noptimal LIFO throughput   : {lifo.throughput:.4f} load units / time unit")

    # Execute both schedules on the simulated one-port cluster and show the
    # FIFO run as a Gantt chart.
    fifo_report = execute_schedule(fifo.schedule, heuristic="FIFO")
    lifo_report = execute_schedule(lifo.schedule, heuristic="LIFO")
    print(f"\nsimulated FIFO makespan   : {fifo_report.measured_makespan:.4f} (deadline 1.0)")
    print(f"simulated LIFO makespan   : {lifo_report.measured_makespan:.4f} (deadline 1.0)")
    print("\nGantt chart of the FIFO execution (one-port master):")
    print(ascii_gantt(fifo_report.run.trace, width=72))


if __name__ == "__main__":
    main()
