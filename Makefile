PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-smoke bench-check

## Tier-1 correctness suite (what CI gates on).
test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

## Full benchmark harness (all figure and solver benchmarks).
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q

## Fast perf-trajectory smoke run: the Figure 10-13 + crossover campaign
## benchmarks, the scenario/batch kernel benchmarks and the two-port
## scenario campaign (the one_port:false evaluation chain) at a reduced
## platform count.  The raw record goes to BENCH_campaign.json (overwritten,
## as before); a compact per-run summary (git sha, wall-clocks incl. the
## two-port campaign, the query service's cold/cached p50 latency,
## speedup vs the PR-1 reference, and the telemetry subsystem's measured
## overhead_pct) is APPENDED to
## BENCH_TRAJECTORY.jsonl so successive PRs accumulate a perf trajectory.
## REPRO_BENCH_PLATFORM_COUNT=50 reproduces the paper-scale acceptance
## measurement.
bench-smoke:
	$(PYTHONPATH_SRC) REPRO_BENCH_PLATFORM_COUNT=$(or $(REPRO_BENCH_PLATFORM_COUNT),5) \
	    $(PYTHON) -m pytest \
	    benchmarks/test_bench_scenario_kernel.py benchmarks/test_bench_batch_kernel.py \
	    benchmarks/test_bench_scenarios.py benchmarks/test_bench_query_service.py -q \
	    --benchmark-json=BENCH_campaign.json
	@$(PYTHONPATH_SRC) $(PYTHON) benchmarks/trajectory.py BENCH_campaign.json BENCH_TRAJECTORY.jsonl

## Bench-regression gate: compare the newest BENCH_TRAJECTORY.jsonl row
## against the most recent comparable one (same platform_count/cpu_count)
## and fail if any wall-clock regressed by more than 25% — or if the
## newest row's telemetry_overhead_pct exceeds 2%.
bench-check:
	$(PYTHON) benchmarks/check_trajectory.py BENCH_TRAJECTORY.jsonl
