PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-smoke

## Tier-1 correctness suite (what CI gates on).
test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

## Full benchmark harness (all figure and solver benchmarks).
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q

## Fast perf-trajectory smoke run: the Figure 10-13 campaign benchmark at a
## reduced platform count, with timings + regenerated series dumped to
## BENCH_campaign.json so successive PRs can compare wall-clocks.
bench-smoke:
	$(PYTHONPATH_SRC) REPRO_BENCH_PLATFORM_COUNT=5 $(PYTHON) -m pytest \
	    benchmarks/test_bench_scenario_kernel.py -q \
	    --benchmark-json=BENCH_campaign.json
	@$(PYTHON) -c "import json; d=json.load(open('BENCH_campaign.json')); \
	    [print(b['name'], round(b['stats']['mean'],4), 's') for b in d['benchmarks']]"
