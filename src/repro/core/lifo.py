"""Optimal one-port LIFO schedules (companion-paper baseline).

In a LIFO schedule the return order is the reverse of the send order: the
first worker served is the last to send its results back.  The paper uses the
optimal LIFO schedule (characterised in the two-port companion report
[7, 8]) as a baseline in the MPI experiments, and observes that it is
*naturally one-port feasible*: every return message necessarily starts after
the last initial message has been sent.

Characterisation used here (and cross-checked against the scenario LP and
against brute force in the test-suite):

* all workers participate;
* workers are served by non-decreasing ``c_i``;
* no worker has any idle time, so every deadline constraint is tight::

      sum_{j <= i} alpha_j (c_j + d_j) + alpha_i w_i = T

  which yields the closed-form chain::

      alpha_1 = T / (c_1 + d_1 + w_1)
      alpha_i = alpha_{i-1} * w_{i-1} / (c_i + d_i + w_i)

The one-port coupling constraint is implied by the last chain equation, so
the two-port LIFO optimum *is* the one-port LIFO optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.linear_program import ScenarioSolution, solve_lifo_scenario
from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError
from repro.lp import Solver

__all__ = [
    "LifoSolution",
    "optimal_lifo_order",
    "lifo_closed_form_loads",
    "optimal_lifo_schedule",
    "lifo_schedule_for_order",
]


@dataclass(frozen=True)
class LifoSolution:
    """Optimal LIFO schedule together with its construction method."""

    schedule: Schedule
    order: tuple[str, ...]
    throughput: float
    method: str
    scenario: ScenarioSolution | None = None

    @property
    def participants(self) -> list[str]:
        """Enrolled workers (all of them, for the optimal LIFO)."""
        return self.schedule.participants

    @property
    def loads(self) -> dict[str, float]:
        """Load assigned to each worker."""
        return self.schedule.loads


def optimal_lifo_order(platform: StarPlatform) -> list[str]:
    """Service order of the optimal LIFO schedule: non-decreasing ``c_i``."""
    return platform.ordered_by_c(descending=False)


def lifo_closed_form_loads(
    platform: StarPlatform,
    order: Sequence[str],
    deadline: float = 1.0,
) -> dict[str, float]:
    """Closed-form LIFO loads for a given send order.

    Solves the triangular system obtained by making every per-worker
    deadline constraint tight (no idle time)::

        alpha_1 (c_1 + d_1 + w_1) = T
        alpha_i (c_i + d_i + w_i) = alpha_{i-1} w_{i-1}
    """
    order = list(order)
    if not order:
        raise ScheduleError("LIFO closed form needs at least one worker")
    if deadline <= 0:
        raise ScheduleError("deadline must be positive")
    loads: dict[str, float] = {}
    previous_load = None
    previous_worker = None
    for name in order:
        spec = platform[name]
        denominator = spec.c + spec.d + spec.w
        if previous_load is None:
            load = deadline / denominator
        else:
            load = previous_load * platform[previous_worker].w / denominator
        loads[name] = load
        previous_load = load
        previous_worker = name
    return loads


def optimal_lifo_schedule(
    platform: StarPlatform,
    deadline: float = 1.0,
    method: str = "closed-form",
    solver: str | Solver | None = None,
) -> LifoSolution:
    """Compute the optimal one-port LIFO schedule.

    Parameters
    ----------
    method:
        ``"closed-form"`` (default) uses the tight-constraint chain above;
        ``"lp"`` solves the scenario LP instead.  Both agree (this is one of
        the library's property tests); the LP variant is kept as an
        independent check and for platforms where callers want solver
        diagnostics.
    """
    order = optimal_lifo_order(platform)
    if method == "closed-form":
        loads = lifo_closed_form_loads(platform, order, deadline=deadline)
        # The chain's loads cover exactly `order` with positive values and
        # the order is a valid permutation, so the checked constructor of
        # lifo_schedule() is redundant on this hot path.
        schedule = Schedule.from_trusted(
            platform, loads, tuple(order), tuple(reversed(order)), deadline
        )
        return LifoSolution(
            schedule=schedule,
            order=tuple(order),
            throughput=schedule.total_load / deadline,
            method=method,
        )
    if method == "lp":
        scenario = solve_lifo_scenario(
            platform, order, deadline=deadline, one_port=True, solver=solver
        )
        return LifoSolution(
            schedule=scenario.schedule,
            order=tuple(order),
            throughput=scenario.throughput,
            method=method,
            scenario=scenario,
        )
    raise ScheduleError(f"unknown LIFO construction method {method!r}")


def lifo_schedule_for_order(
    platform: StarPlatform,
    order: Sequence[str],
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> LifoSolution:
    """Optimal loads for a *given* LIFO send order (ablation helper)."""
    order = list(order)
    scenario = solve_lifo_scenario(
        platform, order, deadline=deadline, one_port=True, solver=solver
    )
    return LifoSolution(
        schedule=scenario.schedule,
        order=tuple(order),
        throughput=scenario.throughput,
        method="lp",
        scenario=scenario,
    )
