"""Two-port model baselines (companion report RR-2005-21).

Under the *two-port* model the master may send to one worker and receive
from another simultaneously; the scenario LP is the same as under the
one-port model minus the coupling constraint (2b).  The paper uses two-port
results in two ways:

* as an upper bound in the proof of Theorem 2 (any one-port schedule is a
  valid two-port schedule, so the one-port throughput can never exceed the
  two-port optimum);
* as the source of the LIFO baseline of the experiments (the optimal
  two-port LIFO schedule is naturally one-port feasible).

This module exposes the two-port variants of the FIFO/LIFO optimisations so
that the bounds can be computed — and tested — explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.linear_program import ScenarioSolution, solve_scenario
from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule
from repro.lp import Solver

__all__ = [
    "TwoPortSolution",
    "optimal_two_port_fifo_schedule",
    "optimal_two_port_lifo_schedule",
    "two_port_fifo_for_order",
]


@dataclass(frozen=True)
class TwoPortSolution:
    """Optimal two-port schedule for a fixed communication discipline."""

    schedule: Schedule
    order: tuple[str, ...]
    throughput: float
    scenario: ScenarioSolution

    @property
    def participants(self) -> list[str]:
        """Workers with a strictly positive load."""
        return self.schedule.participants

    @property
    def loads(self) -> dict[str, float]:
        """Optimal loads per worker."""
        return self.schedule.loads


def two_port_fifo_for_order(
    platform: StarPlatform,
    order: Sequence[str],
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> TwoPortSolution:
    """Optimal two-port FIFO loads for a given send order."""
    order = list(order)
    scenario = solve_scenario(
        platform,
        sigma1=order,
        sigma2=order,
        deadline=deadline,
        one_port=False,
        solver=solver,
    )
    return TwoPortSolution(
        schedule=scenario.schedule,
        order=tuple(order),
        throughput=scenario.throughput,
        scenario=scenario,
    )


def optimal_two_port_fifo_schedule(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> TwoPortSolution:
    """Optimal two-port FIFO schedule.

    The companion report shows the optimal two-port FIFO order serves
    workers by non-decreasing ``c_i`` (for ``z <= 1``; the mirrored rule
    otherwise), exactly as in Theorem 1; the loads then come from the
    two-port scenario LP.
    """
    z = platform.z
    descending = z is not None and z > 1.0
    order = platform.ordered_by_c(descending=descending)
    return two_port_fifo_for_order(platform, order, deadline=deadline, solver=solver)


def optimal_two_port_lifo_schedule(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> TwoPortSolution:
    """Optimal two-port LIFO schedule (serve by non-decreasing ``c_i``)."""
    order = platform.ordered_by_c(descending=False)
    scenario = solve_scenario(
        platform,
        sigma1=order,
        sigma2=list(reversed(order)),
        deadline=deadline,
        one_port=False,
        solver=solver,
    )
    return TwoPortSolution(
        schedule=scenario.schedule,
        order=tuple(order),
        throughput=scenario.throughput,
        scenario=scenario,
    )
