"""Scenario linear programs (system (2) of the report).

Given a *scenario* — a set of enrolled workers together with the permutation
``sigma1`` of initial messages and the permutation ``sigma2`` of return
messages — the optimal loads maximising the throughput within a deadline
``T`` are the solution of a small linear program.  For a FIFO scenario with
workers ``P1 .. Pq`` (in ``sigma1`` order) the constraints are::

    for every i:   sum_{j <= i} alpha_j c_j  +  alpha_i w_i  +  x_i
                   + sum_{j >= i} alpha_j d_j                      <= T      (2a)
    one-port:      sum_j alpha_j c_j + sum_j alpha_j d_j           <= T      (2b)
    alpha_i >= 0, x_i >= 0                                                   (2c, 2d)

and the objective is ``maximise sum_i alpha_i``.

Two remarks, both recorded in DESIGN.md:

* the printed form of (2a) in the report sums ``alpha_j w_j`` over the prefix,
  which double-counts the computation time of predecessors; the textual
  derivation in Section 2.3 gives the constraint implemented here
  (only ``alpha_i w_i`` for the worker under consideration);
* the idle times ``x_i`` only tighten (2a), so the optimal loads do not
  depend on them; they are kept (optionally) as explicit LP variables to
  mirror the paper's program and support the vertex-counting argument of
  Lemma 1, and are otherwise recovered from the schedule timeline.

The same builder handles an arbitrary permutation pair (the generalisation is
immediate: the prefix of (2a) follows ``sigma1`` and the suffix follows
``sigma2``), and the two-port variant simply drops constraint (2b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.fast_scenario import FastScenarioResult, solve_scenario_fast
from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError, SolverError
from repro.lp import LinearProgram, LPResult, LPStatus, Solver, get_solver

__all__ = [
    "ScenarioSolution",
    "build_scenario_program",
    "solve_scenario",
    "solve_scenarios",
    "solve_fifo_scenario",
    "solve_lifo_scenario",
]


def _alpha(name: str) -> str:
    return f"alpha[{name}]"


def _idle(name: str) -> str:
    return f"x[{name}]"


@dataclass(frozen=True)
class ScenarioSolution:
    """Outcome of optimising the loads of a fixed scenario.

    Attributes
    ----------
    schedule:
        The optimal schedule (loads filled in, orders as requested).
    throughput:
        Load units processed per time unit, ``sum alpha_i / T``.
    lp_result:
        Raw solver result (objective equals ``throughput * T``).
    program:
        The linear program that was solved, for inspection or re-solving
        with another backend.  When the scenario went through the array
        fast path no modelling-layer program exists yet; it is rebuilt on
        first access (the arrays the kernel solved are its exact dense
        export).
    """

    schedule: Schedule
    throughput: float
    lp_result: LPResult
    _program: LinearProgram | None = None
    _one_port: bool = field(default=True, repr=False)

    @property
    def program(self) -> LinearProgram:
        """The scenario's linear program (built lazily on the fast path)."""
        if self._program is None:
            program = build_scenario_program(
                self.schedule.platform,
                self.schedule.sigma1,
                self.schedule.sigma2,
                deadline=self.schedule.deadline,
                one_port=self._one_port,
            )
            object.__setattr__(self, "_program", program)
        return self._program

    @property
    def loads(self) -> dict[str, float]:
        """Optimal loads per worker."""
        return self.schedule.loads

    @property
    def participants(self) -> list[str]:
        """Workers receiving a strictly positive load."""
        return self.schedule.participants

    @property
    def total_load(self) -> float:
        """Total load processed within the deadline."""
        return self.schedule.total_load


def build_scenario_program(
    platform: StarPlatform,
    sigma1: Sequence[str],
    sigma2: Sequence[str] | None = None,
    deadline: float = 1.0,
    one_port: bool = True,
    include_idle_variables: bool = False,
    name: str | None = None,
) -> LinearProgram:
    """Build the LP of system (2) for an arbitrary scenario.

    Parameters
    ----------
    platform:
        The target star platform.
    sigma1:
        Order of the initial messages (worker names); the candidate set of
        enrolled workers.  Workers may end up with a zero load — that is how
        resource selection happens (Proposition 1).
    sigma2:
        Order of the return messages; defaults to ``sigma1`` (FIFO).
    deadline:
        Time horizon ``T``.
    one_port:
        Include the coupling constraint (2b).  Setting it to ``False`` gives
        the two-port program of the companion report.
    include_idle_variables:
        Add the explicit ``x_i`` variables of the paper's formulation.  They
        do not change the optimal loads but allow inspecting a vertex of the
        full polyhedron (Lemma 1).
    """
    sigma1 = list(sigma1)
    sigma2 = list(sigma2) if sigma2 is not None else list(sigma1)
    if not sigma1:
        raise ScheduleError("a scenario needs at least one worker")
    if sorted(sigma1) != sorted(sigma2):
        raise ScheduleError("sigma2 must be a permutation of sigma1")
    if len(set(sigma1)) != len(sigma1):
        raise ScheduleError("sigma1 contains duplicated workers")
    for worker in sigma1:
        if worker not in platform:
            raise ScheduleError(f"unknown worker {worker!r} in scenario")
    if deadline <= 0:
        raise ScheduleError("deadline must be positive")

    rank1 = {worker: i for i, worker in enumerate(sigma1)}
    rank2 = {worker: i for i, worker in enumerate(sigma2)}

    program = LinearProgram(
        name=name
        or f"scenario[{platform.name}|{'1port' if one_port else '2port'}|q={len(sigma1)}]"
    )
    for worker in sigma1:
        program.add_variable(_alpha(worker))
    if include_idle_variables:
        for worker in sigma1:
            program.add_variable(_idle(worker))
    program.set_objective({_alpha(worker): 1.0 for worker in sigma1})

    # Per-worker deadline constraints (2a), generalised to any (sigma1, sigma2).
    for worker in sigma1:
        coefficients: dict[str, float] = {}
        for other in sigma1:
            spec = platform[other]
            coefficient = 0.0
            if rank1[other] <= rank1[worker]:
                coefficient += spec.c
            if other == worker:
                coefficient += spec.w
            if rank2[other] >= rank2[worker]:
                coefficient += spec.d
            if coefficient:
                coefficients[_alpha(other)] = coefficient
        if include_idle_variables:
            coefficients[_idle(worker)] = 1.0
        program.add_constraint(
            name=f"deadline[{worker}]",
            coefficients=coefficients,
            sense="<=",
            rhs=deadline,
        )

    # One-port coupling constraint (2b): all communications share the master port.
    if one_port:
        program.add_constraint(
            name="one-port",
            coefficients={
                _alpha(worker): platform[worker].round_trip for worker in sigma1
            },
            sense="<=",
            rhs=deadline,
        )
    return program


def _solution_from_kernel(
    platform: StarPlatform,
    sigma1: Sequence[str],
    sigma2: Sequence[str],
    deadline: float,
    one_port: bool,
    kernel: FastScenarioResult,
) -> ScenarioSolution:
    """Wrap a raw kernel result into the public :class:`ScenarioSolution`.

    Shared by the scalar fast path of :func:`solve_scenario` and the batched
    path of :func:`solve_scenarios`, so both produce identical objects for
    identical kernel outputs.
    """
    loads = {worker: float(alpha) for worker, alpha in zip(sigma1, kernel.loads)}
    result = LPResult(
        status=LPStatus.OPTIMAL,
        objective=kernel.objective,
        values={_alpha(worker): load for worker, load in loads.items()},
        backend="fast-kernel",
        iterations=kernel.iterations,
    )
    # The kernel paths validate sigma1/sigma2 before solving and the loads
    # are non-negative by construction, so the checked constructor is
    # redundant here.
    schedule = Schedule.from_trusted(
        platform, loads, tuple(sigma1), tuple(sigma2), deadline
    )
    return ScenarioSolution(
        schedule=schedule,
        throughput=schedule.total_load / deadline,
        lp_result=result,
        _program=None,
        _one_port=one_port,
    )


def solve_scenarios(
    scenarios: Sequence[tuple[StarPlatform, Sequence[str], Sequence[str] | None]],
    deadline: float = 1.0,
    one_port: bool = True,
) -> list[ScenarioSolution]:
    """Solve a whole chunk of scenario LPs through the batched kernel.

    ``scenarios`` is a sequence of ``(platform, sigma1, sigma2)`` triples
    (``sigma2=None`` means FIFO).  Same-size scenarios are stacked and
    solved as one vectorised simplex (see
    :mod:`repro.core.batch_scenario`); the returned solutions are, element
    for element, identical to ``solve_scenario(platform, sigma1, sigma2)``
    with the default fast path — the batched kernel is bit-identical to the
    scalar one, and the wrapping is shared.
    """
    from repro.core.batch_scenario import solve_scenarios_fast

    kernels = solve_scenarios_fast(scenarios, deadline=deadline, one_port=one_port)
    solutions: list[ScenarioSolution] = []
    for (platform, sigma1, sigma2), kernel in zip(scenarios, kernels):
        sigma1 = list(sigma1)
        sigma2 = list(sigma2) if sigma2 is not None else list(sigma1)
        solutions.append(
            _solution_from_kernel(platform, sigma1, sigma2, deadline, one_port, kernel)
        )
    return solutions


def solve_scenario(
    platform: StarPlatform,
    sigma1: Sequence[str],
    sigma2: Sequence[str] | None = None,
    deadline: float = 1.0,
    one_port: bool = True,
    solver: str | Solver | None = None,
    include_idle_variables: bool = False,
    fast: bool | None = None,
) -> ScenarioSolution:
    """Solve the scenario LP and return the optimal schedule.

    ``fast`` selects the array-level kernel of
    :mod:`repro.core.fast_scenario`, which builds system (2) directly as
    NumPy arrays and solves it with a specialised dense simplex — bypassing
    the :class:`LinearProgram` modelling layer entirely.  The default
    (``None``) uses the kernel whenever no explicit backend was requested
    and no idle variables are needed; the two paths agree to well below
    ``1e-9``.  Pass ``fast=False`` to force the reference modelling layer.

    Raises
    ------
    SolverError
        If the backend does not prove optimality (a well-formed scenario is
        always feasible — the all-zero load is feasible — and bounded).
    """
    sigma1 = list(sigma1)
    sigma2 = list(sigma2) if sigma2 is not None else list(sigma1)
    if fast is None:
        fast = solver is None and not include_idle_variables
    elif fast and include_idle_variables:
        raise SolverError(
            "the fast scenario kernel has no explicit idle variables; "
            "use the modelling layer (fast=False) to inspect them"
        )
    elif fast and solver is not None:
        raise SolverError("fast=True and an explicit solver backend are mutually exclusive")

    if fast:
        kernel = solve_scenario_fast(
            platform, sigma1, sigma2, deadline=deadline, one_port=one_port
        )
        return _solution_from_kernel(platform, sigma1, sigma2, deadline, one_port, kernel)

    program = build_scenario_program(
        platform,
        sigma1,
        sigma2,
        deadline=deadline,
        one_port=one_port,
        include_idle_variables=include_idle_variables,
    )
    backend = get_solver(solver)
    result = backend.solve(program)
    if not result.is_optimal:
        raise SolverError(
            f"scenario LP did not reach optimality (status={result.status.value}); "
            "this should never happen for a well-formed platform"
        )
    loads = {worker: max(0.0, result.value(_alpha(worker))) for worker in sigma1}
    schedule = Schedule(
        platform=platform,
        loads=loads,
        sigma1=sigma1,
        sigma2=sigma2,
        deadline=deadline,
    )
    return ScenarioSolution(
        schedule=schedule,
        throughput=schedule.total_load / deadline,
        lp_result=result,
        _program=program,
        _one_port=one_port,
    )


def solve_fifo_scenario(
    platform: StarPlatform,
    order: Sequence[str],
    deadline: float = 1.0,
    one_port: bool = True,
    solver: str | Solver | None = None,
    fast: bool | None = None,
) -> ScenarioSolution:
    """Solve the FIFO scenario for a given send order (``sigma2 = sigma1``)."""
    return solve_scenario(
        platform,
        sigma1=order,
        sigma2=order,
        deadline=deadline,
        one_port=one_port,
        solver=solver,
        fast=fast,
    )


def solve_lifo_scenario(
    platform: StarPlatform,
    order: Sequence[str],
    deadline: float = 1.0,
    one_port: bool = True,
    solver: str | Solver | None = None,
    fast: bool | None = None,
) -> ScenarioSolution:
    """Solve the LIFO scenario for a given send order (``sigma2 = reversed``)."""
    order = list(order)
    return solve_scenario(
        platform,
        sigma1=order,
        sigma2=list(reversed(order)),
        deadline=deadline,
        one_port=one_port,
        solver=solver,
        fast=fast,
    )


def idle_times_from_result(
    result: LPResult, sigma1: Sequence[str]
) -> dict[str, float]:
    """Extract the explicit idle-time variables from an LP result.

    Only meaningful when the program was built with
    ``include_idle_variables=True``; otherwise every idle time reads 0.
    """
    return {worker: result.value(_idle(worker)) for worker in sigma1}
