"""Fast-path kernel for the scenario linear programs (system (2)).

The experiment campaigns solve thousands of *tiny* scenario LPs: for the
paper-scale Figures 10-13 sweep alone, every (matrix size, random platform,
heuristic) triple builds and solves one instance of system (2).  Routing each
of them through the generic modelling layer (:class:`~repro.lp.model.
LinearProgram` + :func:`scipy.optimize.linprog`) spends far more time in
dictionary bookkeeping, argument validation and solver set-up than in the
actual solve.

This module is the array-level fast path:

* :func:`scenario_arrays` builds the constraint matrix of system (2)
  directly as dense NumPy arrays from the platform cost vectors
  (``c``, ``w``, ``d``) using prefix/suffix masks — no per-worker dict loops
  and no :class:`LinearProgram` instance;
* :func:`solve_scenario_arrays` maximises ``sum(alpha)`` over
  ``A alpha <= b, alpha >= 0`` with a small dense primal simplex specialised
  to this structure (``b > 0``, ``A >= 0``: the slack basis is feasible and
  the optimum is finite, so no phase 1 is ever needed);
* :func:`solve_scenario_fast` glues the two together for a
  (platform, sigma1, sigma2) scenario.

:func:`repro.core.linear_program.solve_scenario` dispatches here by default
(``fast=None`` resolves to the kernel whenever no explicit backend was
requested); the modelling layer remains the reference implementation and the
two paths agree to well below 1e-9 (asserted by the test-suite).

For cross-checking and benchmarking, :func:`solve_scenario_arrays_linprog`
solves the same arrays through SciPy's HiGHS — the kernel, the modelling
layer and HiGHS all land on the same optimal vertex (system (2) instances
built from positive costs have a unique optimum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.platform import StarPlatform
from repro.exceptions import ScheduleError, SolverError

__all__ = [
    "FastScenarioResult",
    "scenario_arrays",
    "solve_scenario_arrays",
    "solve_scenario_arrays_linprog",
    "solve_scenario_fast",
    "validate_scenario",
]


#: Reduced costs and pivot elements below this magnitude are treated as zero.
_TOLERANCE = 1e-11

#: Pivot count after which the kernel switches from Dantzig to Bland pricing
#: (anti-cycling safety net; never reached on well-formed scenarios).
_BLAND_AFTER_FACTOR = 8


#: Cached (prefix, suffix) triangular masks per scenario size.
_MASK_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _triangular_masks(q: int) -> tuple[np.ndarray, np.ndarray]:
    """The (lower, upper) triangular FIFO masks for ``q`` workers, cached."""
    masks = _MASK_CACHE.get(q)
    if masks is None:
        lower = np.tri(q)
        masks = _MASK_CACHE[q] = (lower, np.ascontiguousarray(lower.T))
    return masks


@dataclass(frozen=True)
class FastScenarioResult:
    """Raw outcome of the dense kernel for one scenario.

    Attributes
    ----------
    loads:
        Optimal ``alpha`` per worker, in ``sigma1`` order.
    objective:
        ``sum(loads)`` — the total load processed within the deadline.
    iterations:
        Simplex pivots performed.
    """

    loads: np.ndarray
    objective: float
    iterations: int


def scenario_arrays(
    platform: StarPlatform,
    sigma1: Sequence[str],
    sigma2: Sequence[str] | None = None,
    deadline: float = 1.0,
    one_port: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the ``A x <= b`` arrays of system (2) for a scenario.

    Row ``i`` is the deadline constraint (2a) of the worker in position ``i``
    of ``sigma1``; with ``one_port`` a final coupling row (2b) is appended.
    Column ``j`` corresponds to ``alpha`` of the worker in position ``j`` of
    ``sigma1``.

    The entries are exactly those of
    :func:`repro.core.linear_program.build_scenario_program`::

        A[i, j] = c_j * [rank1(j) <= rank1(i)]
                + w_j * [i == j]
                + d_j * [rank2(j) >= rank2(i)]

    built here with triangular/suffix masks over the platform cost vectors
    instead of per-worker dictionary loops.
    """
    sigma1 = list(sigma1)
    q = len(sigma1)
    if q == 0:
        raise ScheduleError("a scenario needs at least one worker")

    c, w, d = platform.cost_vectors(sigma1)

    prefix, fifo_suffix = _triangular_masks(q)
    if sigma2 is None or list(sigma2) == sigma1:
        # FIFO: the return suffix mask is the transpose of the prefix mask.
        suffix = fifo_suffix
    else:
        sigma2 = list(sigma2)
        position = {name: pos for pos, name in enumerate(sigma2)}
        try:
            rank2 = np.array([position[name] for name in sigma1])
        except KeyError as missing:
            raise ScheduleError(f"sigma2 is missing worker {missing}") from None
        # suffix mask (2a): alpha_j's return is sent at or after worker i's.
        suffix = rank2[None, :] >= rank2[:, None]

    a = np.empty((q + 1 if one_port else q, q))
    # prefix mask (2a): alpha_j's forward message precedes worker i's start.
    np.multiply(prefix, c, out=a[:q])
    a[:q] += suffix * d
    diagonal = np.arange(q)
    a[diagonal, diagonal] += w
    if one_port:
        np.add(c, d, out=a[q])
    b = np.full(a.shape[0], float(deadline))
    return a, b


def solve_scenario_arrays(a: np.ndarray, b: np.ndarray) -> FastScenarioResult:
    """Maximise ``sum(x)`` subject to ``a x <= b`` and ``x >= 0``.

    Specialised dense primal simplex: because every scenario matrix is
    non-negative with a strictly positive right-hand side, the slack basis is
    feasible (no phase 1) and the optimum is finite.  Dantzig pricing with a
    Bland fallback keeps the pivot count at roughly one per variable while
    guaranteeing termination on degenerate instances.
    """
    m, n = a.shape
    if b.shape != (m,):
        raise SolverError("right-hand side length does not match row count")
    if np.any(b <= 0):
        raise SolverError("scenario right-hand sides must be positive")

    # Tableau [A | I | b] with the maximisation z-row appended last.
    width = n + m + 1
    tableau = np.zeros((m + 1, width))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[m, :n] = 1.0  # objective: maximise sum(x)
    basis = np.arange(n, n + m)
    reduced = tableau[m, : n + m]
    rhs = tableau[:m, -1]
    ratios = np.empty(m)
    update = np.empty((m + 1, width))  # reused rank-1 pivot buffer

    max_iterations = 50 * (n + m) + 50
    bland_after = _BLAND_AFTER_FACTOR * (n + m)
    iterations = 0
    while True:
        if iterations <= bland_after:
            entering = int(np.argmax(reduced))
            if reduced[entering] <= _TOLERANCE:
                break
        else:  # Bland: smallest improving index, guaranteed to terminate
            improving = np.nonzero(reduced > _TOLERANCE)[0]
            if improving.size == 0:
                break
            entering = int(improving[0])
        if iterations > max_iterations:
            raise SolverError(
                f"scenario kernel exceeded {max_iterations} pivots; "
                "this indicates a malformed scenario"
            )

        column = tableau[:m, entering]
        positive = column > _TOLERANCE
        if not positive.any():
            raise SolverError("scenario kernel hit an unbounded direction")
        ratios.fill(np.inf)
        np.divide(rhs, column, out=ratios, where=positive)
        leaving = int(np.argmin(ratios))
        best = ratios[leaving]
        # deterministic tie-break: smallest basic index among the minimisers
        ties = np.flatnonzero(ratios == best)
        if ties.size > 1:
            leaving = int(ties[np.argmin(basis[ties])])

        pivot_row = tableau[leaving]
        pivot_value = pivot_row[entering]
        if pivot_value != 1.0:
            pivot_row /= pivot_value
        factors = tableau[:, entering].copy()
        factors[leaving] = 0.0
        np.multiply(factors[:, None], pivot_row[None, :], out=update)
        tableau -= update
        basis[leaving] = entering
        iterations += 1

    solution = np.zeros(n + m)
    solution[basis] = tableau[:m, -1]
    loads = np.maximum(solution[:n], 0.0)
    objective = -float(tableau[m, -1])
    # Degenerate bases can leave O(eps)-sized dust on variables that are
    # exactly zero at the vertex; snap it so participant sets (load > 0)
    # agree with the exact backends.
    loads[loads <= 1e-11 * objective] = 0.0
    return FastScenarioResult(
        loads=loads,
        objective=objective,
        iterations=iterations,
    )


def solve_scenario_arrays_linprog(a: np.ndarray, b: np.ndarray) -> FastScenarioResult:
    """Solve the same arrays through SciPy's HiGHS (cross-check path).

    Used by the benchmark harness and the agreement tests to pin the kernel
    against an independent solver without rebuilding a modelling-layer
    program.
    """
    from scipy.optimize import linprog

    result = linprog(
        c=-np.ones(a.shape[1]),
        A_ub=a,
        b_ub=b,
        bounds=(0.0, None),
        method="highs",
    )
    if result.status != 0:
        raise SolverError(f"HiGHS failed on a scenario program (status={result.status})")
    return FastScenarioResult(
        loads=np.maximum(result.x, 0.0),
        objective=float(-result.fun),
        iterations=int(getattr(result, "nit", 0) or 0),
    )


def validate_scenario(
    platform: StarPlatform,
    sigma1: Sequence[str],
    sigma2: Sequence[str] | None,
    deadline: float,
) -> tuple[list[str], list[str]]:
    """Validate one (sigma1, sigma2) scenario and return it as lists.

    Mirrors :func:`~repro.core.linear_program.build_scenario_program` so
    that every kernel entry point — scalar and batched — raises
    identically on malformed scenarios.
    """
    sigma1 = list(sigma1)
    if not sigma1:
        raise ScheduleError("a scenario needs at least one worker")
    if sigma2 is None:
        sigma2 = list(sigma1)
    else:
        sigma2 = list(sigma2)
        if sorted(sigma1) != sorted(sigma2):
            raise ScheduleError("sigma2 must be a permutation of sigma1")
    if len(set(sigma1)) != len(sigma1):
        raise ScheduleError("sigma1 contains duplicated workers")
    for worker in sigma1:
        if worker not in platform:
            raise ScheduleError(f"unknown worker {worker!r} in scenario")
    if deadline <= 0:
        raise ScheduleError("deadline must be positive")
    return sigma1, sigma2


def solve_scenario_fast(
    platform: StarPlatform,
    sigma1: Sequence[str],
    sigma2: Sequence[str] | None = None,
    deadline: float = 1.0,
    one_port: bool = True,
) -> FastScenarioResult:
    """Build and solve one scenario entirely on the array fast path.

    Input validation (see :func:`validate_scenario`) mirrors
    :func:`~repro.core.linear_program.build_scenario_program` so that the
    two paths raise identically on malformed scenarios.
    """
    sigma1, sigma2 = validate_scenario(platform, sigma1, sigma2, deadline)
    a, b = scenario_arrays(platform, sigma1, sigma2, deadline=deadline, one_port=one_port)
    return solve_scenario_arrays(a, b)
