"""Closed-form results on bus networks (Theorem 2 and Figure 7).

On a bus network every link has the same costs (``c_i = c``, ``d_i = d``).
Theorem 2 of the paper gives the optimal one-port FIFO throughput in closed
form::

    u_i     = 1 / (d + w_i) * prod_{j <= i} (d + w_j) / (c + w_j)
    rho~    = sum_i u_i / (1 + d * sum_i u_i)          (two-port FIFO optimum)
    rho_opt = min( 1 / (c + d),  rho~ )                (one-port FIFO optimum)

with every worker enrolled.  ``rho~`` is the optimal two-port FIFO throughput
of the companion report, whose loads are proportional to the ``u_i``
(``alpha_i = u_i / (1 + d * sum u)``); the proof of Theorem 2 converts this
two-port schedule into a one-port schedule by rescaling every load by
``1 / (rho~ (c + d))`` and inserting a uniform gap — the construction shown
in Figure 7 — whenever the two kinds of communication would otherwise
overlap.  Both the closed forms and the constructive transformation are
implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule, fifo_schedule
from repro.exceptions import PlatformError

__all__ = [
    "BusFifoSolution",
    "u_sequence",
    "two_port_bus_throughput",
    "two_port_bus_loads",
    "optimal_bus_throughput",
    "optimal_bus_fifo_schedule",
]


def _require_bus(platform: StarPlatform) -> tuple[float, float]:
    """Return the shared ``(c, d)``, raising when the platform is not a bus."""
    if not platform.is_bus:
        raise PlatformError(
            f"platform {platform.name!r} is not a bus network; "
            "Theorem 2 only applies when all links are identical"
        )
    return platform.bus_costs


@dataclass(frozen=True)
class BusFifoSolution:
    """Optimal one-port FIFO schedule on a bus, with its analytic pedigree."""

    schedule: Schedule
    throughput: float
    two_port_throughput: float
    saturated: bool
    """``True`` when the one-port bound ``1/(c+d)`` is the binding term."""
    gap: float
    """Uniform idle gap inserted by the Figure 7 transformation (0 if none)."""

    @property
    def loads(self) -> dict[str, float]:
        """Load of each worker in the one-port schedule."""
        return self.schedule.loads


def u_sequence(platform: StarPlatform, order: Sequence[str] | None = None) -> list[float]:
    """Compute the ``u_i`` sequence of Theorem 2 for the given service order.

    The order defaults to the platform order; Theorem 2 holds for any order
    (on a bus all FIFO orderings achieve the same throughput), so the order
    only matters for mapping ``u_i`` values back to workers.
    """
    c, d = _require_bus(platform)
    names = list(order) if order is not None else platform.worker_names
    values: list[float] = []
    running_product = 1.0
    for name in names:
        w = platform[name].w
        running_product *= (d + w) / (c + w)
        values.append(running_product / (d + w))
    return values


def two_port_bus_throughput(platform: StarPlatform, order: Sequence[str] | None = None) -> float:
    """Optimal two-port FIFO throughput ``rho~`` on a bus (companion report)."""
    c, d = _require_bus(platform)
    total_u = sum(u_sequence(platform, order))
    return total_u / (1.0 + d * total_u)


def two_port_bus_loads(
    platform: StarPlatform, order: Sequence[str] | None = None, deadline: float = 1.0
) -> dict[str, float]:
    """Optimal two-port FIFO loads on a bus: ``alpha_i = T u_i / (1 + d sum u)``."""
    c, d = _require_bus(platform)
    names = list(order) if order is not None else platform.worker_names
    u = u_sequence(platform, names)
    scale = deadline / (1.0 + d * sum(u))
    return {name: scale * value for name, value in zip(names, u)}


def optimal_bus_throughput(platform: StarPlatform) -> float:
    """Optimal one-port FIFO throughput on a bus (Theorem 2)."""
    c, d = _require_bus(platform)
    return min(1.0 / (c + d), two_port_bus_throughput(platform))


def optimal_bus_fifo_schedule(
    platform: StarPlatform,
    order: Sequence[str] | None = None,
    deadline: float = 1.0,
) -> BusFifoSolution:
    """Build the optimal one-port FIFO schedule on a bus constructively.

    Follows the proof of Theorem 2 (Figure 7): start from the optimal
    two-port schedule; if its throughput does not exceed ``1/(c+d)`` it is
    already one-port feasible, otherwise rescale every load by
    ``1 / (rho~ (c + d))`` — which inserts a uniform gap between computation
    and return transfer — so that forward and return communications exactly
    fill the deadline without overlapping.
    """
    c, d = _require_bus(platform)
    names = list(order) if order is not None else platform.worker_names
    two_port_loads = two_port_bus_loads(platform, names, deadline=deadline)
    rho_two_port = sum(two_port_loads.values()) / deadline

    one_port_bound = 1.0 / (c + d)
    if rho_two_port <= one_port_bound:
        loads = two_port_loads
        gap = 0.0
        saturated = False
    else:
        scale = 1.0 / (rho_two_port * (c + d))
        loads = {name: load * scale for name, load in two_port_loads.items()}
        gap = deadline * (1.0 - scale)
        saturated = True

    schedule = fifo_schedule(platform, loads, names, deadline=deadline)
    return BusFifoSolution(
        schedule=schedule,
        throughput=schedule.total_load / deadline,
        two_port_throughput=rho_two_port,
        saturated=saturated,
        gap=gap,
    )
