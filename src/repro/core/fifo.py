"""Optimal one-port FIFO schedules (Theorem 1 and Proposition 1).

Theorem 1 of the paper: assuming ``d_i = z * c_i`` with ``0 < z < 1``, there
exists an optimal one-port FIFO schedule in which

* the enrolled workers are served by non-decreasing ``c_i``, and
* only the last enrolled worker may have idle time.

The case ``z > 1`` is handled by the mirroring argument of Section 3: solve
the problem on the mirrored platform (``c`` and ``d`` swapped, ``1/z < 1``)
and read the schedule backwards in time, which amounts to serving workers by
*non-increasing* ``c_i``.  When ``z = 1`` the order is irrelevant.

Proposition 1 turns the theorem into a polynomial algorithm, including the
resource-selection step that distinguishes this problem from the classical
no-return-message theory: sort all ``p`` workers by the rule above, solve the
scenario LP over all of them, and enrol exactly the workers that receive a
positive load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.linear_program import ScenarioSolution, solve_fifo_scenario
from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule
from repro.lp import Solver

__all__ = ["FifoSolution", "optimal_fifo_order", "optimal_fifo_schedule", "fifo_schedule_for_order"]


@dataclass(frozen=True)
class FifoSolution:
    """Optimal FIFO schedule together with solver diagnostics."""

    schedule: Schedule
    order: tuple[str, ...]
    throughput: float
    scenario: ScenarioSolution

    @property
    def participants(self) -> list[str]:
        """Workers enrolled by the resource-selection step."""
        return self.schedule.participants

    @property
    def loads(self) -> dict[str, float]:
        """Optimal load of every candidate worker (zero when not enrolled)."""
        return self.schedule.loads

    def idle_times(self) -> dict[str, float]:
        """Idle time of every worker under the late-return convention."""
        return self.schedule.idle_times()


def optimal_fifo_order(platform: StarPlatform) -> list[str]:
    """Return the FIFO service order prescribed by Theorem 1.

    Non-decreasing ``c_i`` when the common ratio ``z = d/c`` is at most 1
    (or when the ratio is not constant, in which case the theorem does not
    apply and the ``z < 1`` rule is used as a heuristic), non-increasing
    ``c_i`` when ``z > 1``.  Ties are broken by worker name so that the
    order — and therefore every downstream experiment — is deterministic.
    """
    z = platform.z
    descending = z is not None and z > 1.0
    return platform.ordered_by_c(descending=descending)


def optimal_fifo_schedule(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> FifoSolution:
    """Compute the optimal one-port FIFO schedule with resource selection.

    This is the algorithm of Proposition 1: order the workers according to
    Theorem 1, solve one LP over all of them, and let the LP decide which
    workers participate (those with ``alpha_i > 0``).

    The returned schedule keeps *all* candidate workers in its permutations
    (with zero load for the non-enrolled ones) so that callers can inspect
    the selection; use :meth:`Schedule.restricted_to_participants` to drop
    them.
    """
    order = optimal_fifo_order(platform)
    scenario = solve_fifo_scenario(
        platform, order, deadline=deadline, one_port=True, solver=solver
    )
    return FifoSolution(
        schedule=scenario.schedule,
        order=tuple(order),
        throughput=scenario.throughput,
        scenario=scenario,
    )


def fifo_schedule_for_order(
    platform: StarPlatform,
    order: Sequence[str],
    deadline: float = 1.0,
    one_port: bool = True,
    solver: str | Solver | None = None,
) -> FifoSolution:
    """Optimal loads for a *given* FIFO order (used by the heuristics).

    Unlike :func:`optimal_fifo_schedule`, the order is not chosen by
    Theorem 1 — this is how the ``INC_W`` heuristic of Section 5, or any
    ordering ablation, is evaluated.
    """
    order = list(order)
    scenario = solve_fifo_scenario(
        platform, order, deadline=deadline, one_port=one_port, solver=solver
    )
    return FifoSolution(
        schedule=scenario.schedule,
        order=tuple(order),
        throughput=scenario.throughput,
        scenario=scenario,
    )
