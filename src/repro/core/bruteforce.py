"""Exhaustive search over scheduling scenarios (verification tool).

The space of scenarios is exponential: a subset of enrolled workers, a send
permutation ``sigma1`` and a return permutation ``sigma2``.  The paper could
not settle the complexity of the general problem; what it *does* prove is the
structure of the optimal FIFO schedule (Theorem 1).  This module provides a
brute-force optimiser over small platforms used by the test-suite to confirm
the structural results empirically:

* the best FIFO order is non-decreasing ``c_i`` (``z < 1``);
* the resource-selection LP over all workers matches the best over every
  subset/ordering of FIFO scenarios;
* the LIFO closed form matches the best LIFO scenario;
* FIFO and LIFO are in general both dominated by the best unconstrained
  permutation pair (the problem the paper leaves open).

Because every subset is implicitly explored by letting the LP assign zero
load, the search enumerates permutations only, not subsets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.linear_program import ScenarioSolution, solve_scenario
from repro.core.platform import StarPlatform
from repro.exceptions import ScheduleError
from repro.lp import Solver

__all__ = [
    "BruteForceResult",
    "best_fifo_by_enumeration",
    "best_lifo_by_enumeration",
    "best_schedule_by_enumeration",
]

#: Hard cap on the platform size accepted by the enumerations.  7! = 5040
#: permutations (25 M permutation pairs) is already expensive; the library's
#: tests stay at or below 5 workers.
MAX_ENUMERATION_SIZE = 7


@dataclass(frozen=True)
class BruteForceResult:
    """Best scenario found by exhaustive enumeration."""

    throughput: float
    sigma1: tuple[str, ...]
    sigma2: tuple[str, ...]
    solution: ScenarioSolution
    scenarios_explored: int

    @property
    def loads(self) -> dict[str, float]:
        """Loads of the best scenario."""
        return self.solution.loads


def _check_size(platform: StarPlatform, limit: int = MAX_ENUMERATION_SIZE) -> None:
    if len(platform) > limit:
        raise ScheduleError(
            f"brute-force enumeration limited to {limit} workers "
            f"(platform has {len(platform)}); use the polynomial algorithms instead"
        )


def best_fifo_by_enumeration(
    platform: StarPlatform,
    deadline: float = 1.0,
    one_port: bool = True,
    solver: str | Solver | None = None,
) -> BruteForceResult:
    """Best FIFO scenario over every send order (``sigma2 = sigma1``)."""
    _check_size(platform)
    best: BruteForceResult | None = None
    count = 0
    for order in itertools.permutations(platform.worker_names):
        solution = solve_scenario(
            platform,
            sigma1=order,
            sigma2=order,
            deadline=deadline,
            one_port=one_port,
            solver=solver,
        )
        count += 1
        if best is None or solution.throughput > best.throughput:
            best = BruteForceResult(
                throughput=solution.throughput,
                sigma1=tuple(order),
                sigma2=tuple(order),
                solution=solution,
                scenarios_explored=count,
            )
    assert best is not None
    return BruteForceResult(
        throughput=best.throughput,
        sigma1=best.sigma1,
        sigma2=best.sigma2,
        solution=best.solution,
        scenarios_explored=count,
    )


def best_lifo_by_enumeration(
    platform: StarPlatform,
    deadline: float = 1.0,
    one_port: bool = True,
    solver: str | Solver | None = None,
) -> BruteForceResult:
    """Best LIFO scenario over every send order (``sigma2`` reversed)."""
    _check_size(platform)
    best: BruteForceResult | None = None
    count = 0
    for order in itertools.permutations(platform.worker_names):
        solution = solve_scenario(
            platform,
            sigma1=order,
            sigma2=tuple(reversed(order)),
            deadline=deadline,
            one_port=one_port,
            solver=solver,
        )
        count += 1
        if best is None or solution.throughput > best.throughput:
            best = BruteForceResult(
                throughput=solution.throughput,
                sigma1=tuple(order),
                sigma2=tuple(reversed(order)),
                solution=solution,
                scenarios_explored=count,
            )
    assert best is not None
    return BruteForceResult(
        throughput=best.throughput,
        sigma1=best.sigma1,
        sigma2=best.sigma2,
        solution=best.solution,
        scenarios_explored=count,
    )


def best_schedule_by_enumeration(
    platform: StarPlatform,
    deadline: float = 1.0,
    one_port: bool = True,
    solver: str | Solver | None = None,
    max_size: int = 5,
) -> BruteForceResult:
    """Best scenario over every permutation *pair* (``sigma1``, ``sigma2``).

    This explores the full combinatorial space the paper describes as open;
    it is quadratically more expensive than the FIFO/LIFO enumerations and is
    therefore capped at ``max_size`` workers by default.
    """
    _check_size(platform, limit=min(max_size, MAX_ENUMERATION_SIZE))
    best: BruteForceResult | None = None
    count = 0
    names = platform.worker_names
    for sigma1 in itertools.permutations(names):
        for sigma2 in itertools.permutations(names):
            solution = solve_scenario(
                platform,
                sigma1=sigma1,
                sigma2=sigma2,
                deadline=deadline,
                one_port=one_port,
                solver=solver,
            )
            count += 1
            if best is None or solution.throughput > best.throughput:
                best = BruteForceResult(
                    throughput=solution.throughput,
                    sigma1=tuple(sigma1),
                    sigma2=tuple(sigma2),
                    solution=solution,
                    scenarios_explored=count,
                )
    assert best is not None
    return BruteForceResult(
        throughput=best.throughput,
        sigma1=best.sigma1,
        sigma2=best.sigma2,
        solution=best.solution,
        scenarios_explored=count,
    )
