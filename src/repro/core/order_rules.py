"""Array-level mirrors of the heuristic order rules and the LIFO chain.

The campaign machinery evaluates heuristics on raw ``(c, w, d)`` cost
tables — no :class:`~repro.core.platform.StarPlatform` or
:class:`~repro.core.schedule.Schedule` objects on the hot path.  This
module holds the array-level mirrors of :mod:`repro.core.heuristics` that
make that possible:

* :func:`sorted_indices` / :func:`optimal_fifo_indices` — the ordering
  rules of the FIFO heuristics on plain cost vectors, ties broken exactly
  like :meth:`StarPlatform.ordered_by_c` / ``ordered_by_w`` (same
  ``(cost, name)`` sort keys, pinned by the test-suite);
* :data:`ORDER_RULES` — the per-heuristic one-port FIFO order rules (the
  mirror of ``repro.core.heuristics._FIFO_ORDERS``);
* :func:`lifo_chain_values` — the closed-form optimal one-port LIFO loads,
  operation for operation the computation of
  :func:`repro.core.lifo.lifo_closed_form_loads`;
* :data:`TWO_PORT_ORDER_RULES` / :data:`TWO_PORT_REVERSED_RETURN` — the
  *two-port* mirrors (companion report RR-2005-21, see
  :mod:`repro.core.twoport`): the FIFO rules are unchanged — dropping the
  coupling constraint does not change Theorem 1's ordering — while LIFO
  loses its closed form and becomes an LP-backed rule (serve by
  non-decreasing ``c_i``, collect in reverse order).

It sits below :mod:`repro.workloads` in the import hierarchy so that the
workload generators, the campaign engine and the scenario subsystem can
all share one implementation without cycles.  (These helpers lived in
``repro.scenarios.sampler`` before; the sampler re-exports them.)
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.platform import _RATIO_TOLERANCE

__all__ = [
    "ORDER_RULES",
    "TWO_PORT_ORDER_RULES",
    "TWO_PORT_REVERSED_RETURN",
    "lifo_chain_values",
    "optimal_fifo_indices",
    "sorted_indices",
    "worker_names",
]


#: Cached ``("P1", ..., "Pq")`` name tuples (the names the matrix workload
#: gives its platform's workers).
_WORKER_NAMES: dict[int, tuple[str, ...]] = {}


def worker_names(q: int) -> tuple[str, ...]:
    """The canonical worker names of a ``q``-worker matrix platform."""
    names = _WORKER_NAMES.get(q)
    if names is None:
        names = _WORKER_NAMES[q] = tuple(f"P{i + 1}" for i in range(q))
    return names


def sorted_indices(
    names: Sequence[str], costs: Sequence[float], descending: bool = False
) -> list[int]:
    """Worker indices sorted by cost, ties broken by name.

    Mirrors :meth:`StarPlatform.ordered_by_c` / ``ordered_by_w`` exactly
    (same ``(cost, name)`` sort keys), which the test-suite pins.
    """
    return sorted(
        range(len(names)), key=lambda i: (costs[i], names[i]), reverse=descending
    )


def optimal_fifo_indices(names, c, w, d) -> list[int]:
    """Theorem 1's order on a cost table (mirrors ``optimal_fifo_order``)."""
    ratios = [d[i] / c[i] for i in range(len(names))]
    first = ratios[0]
    z = first if all(
        math.isclose(r, first, rel_tol=_RATIO_TOLERANCE, abs_tol=_RATIO_TOLERANCE)
        for r in ratios
    ) else None
    return sorted_indices(names, c, descending=z is not None and z > 1.0)


#: Per-heuristic FIFO order rules on a (names, c, w, d) cost table —
#: the array-level mirror of ``repro.core.heuristics._FIFO_ORDERS``
#: (asserted equal by the test-suite).
ORDER_RULES = {
    "INC_C": lambda names, c, w, d: sorted_indices(names, c),
    "INC_W": lambda names, c, w, d: sorted_indices(names, w),
    "DEC_C": lambda names, c, w, d: sorted_indices(names, c, descending=True),
    "PLATFORM_ORDER": lambda names, c, w, d: list(range(len(names))),
    "OPT_FIFO": optimal_fifo_indices,
}


#: Per-heuristic *two-port* send-order rules (mirror of
#: :mod:`repro.core.twoport`).  The FIFO heuristics keep their one-port
#: orders — removing coupling constraint (2b) does not change the optimal
#: permutation of Theorem 1 — and ``LIFO``, which has no two-port closed
#: form, becomes an LP-backed rule serving workers by non-decreasing
#: ``c_i`` exactly like ``optimal_two_port_lifo_schedule``.
TWO_PORT_ORDER_RULES = {
    **ORDER_RULES,
    "LIFO": lambda names, c, w, d: sorted_indices(names, c),
}

#: Heuristics whose two-port return order is the *reverse* of the send
#: order (``sigma2 = reversed(sigma1)``); every other rule is FIFO
#: (``sigma2 = sigma1``).
TWO_PORT_REVERSED_RETURN = frozenset({"LIFO"})


def lifo_chain_values(c, w, d, order, deadline: float = 1.0) -> list[float]:
    """Closed-form LIFO loads on a cost table, in ``order``.

    Mirrors :func:`repro.core.lifo.lifo_closed_form_loads` operation for
    operation (same additions, multiplications and divisions).
    """
    values: list[float] = []
    previous_load = None
    previous = None
    for index in order:
        denominator = c[index] + d[index] + w[index]
        if previous_load is None:
            load = deadline / denominator
        else:
            load = previous_load * w[previous] / denominator
        values.append(load)
        previous_load = load
        previous = index
    return values
