"""Batched kernel for whole chunks of *two-port* scenario linear programs.

Under the two-port model (companion report RR-2005-21, see
:mod:`repro.core.twoport`) the master sends and receives on independent
ports, so the scenario LP is system (2) **minus the coupling constraint
(2b)**: ``q`` deadline rows instead of ``q + 1``.  This module is the
two-port twin of :mod:`repro.core.batch_scenario` — the stacked-LP trick
applied to the uncoupled system:

* :func:`two_port_arrays_batch` stacks the uncoupled constraint matrices
  of ``B`` scenarios into one ``(B, q, q)`` tensor (the same masked build
  as the one-port kernel with the coupling row dropped — bit-identical
  entries to the scalar :func:`~repro.core.fast_scenario.scenario_arrays`
  with ``one_port=False``);
* :func:`solve_two_port_batch` runs them through the shared masked dense
  simplex (:func:`~repro.core.batch_scenario.solve_scenario_arrays_batch`:
  one vectorised Dantzig iteration for every still-active problem, with
  per-problem termination masks and the scalar-kernel fallback for
  degenerate stragglers) — so every result is bit-identical to solving
  each scenario with the scalar kernel;
* :func:`solve_two_port_scenarios` is the mixed-scenario front end
  (grouping by worker count, results in input order);
* :func:`optimal_two_port_fifo_batch` / :func:`optimal_two_port_lifo_batch`
  evaluate the companion report's optimal two-port FIFO / LIFO schedules
  for a whole chunk of platforms at once, element for element identical to
  :func:`repro.core.twoport.optimal_two_port_fifo_schedule` /
  :func:`~repro.core.twoport.optimal_two_port_lifo_schedule` (pinned by
  the test-suite over the paper's fig10-13 factor sets).

The campaign engine's two-port cells
(:func:`repro.experiments.campaign_engine.prepare_cells` with
``one_port=False``) feed cost tables straight into
:func:`two_port_arrays_batch` — the scenario subsystem's ``one_port:
false`` axis runs entirely on this kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.batch_scenario import (
    BatchScenarioResult,
    scenario_arrays_batch,
    solve_scenario_arrays_batch,
    solve_scenarios_fast,
)
from repro.core.fast_scenario import FastScenarioResult
from repro.core.platform import StarPlatform
from repro.core.twoport import TwoPortSolution

__all__ = [
    "optimal_two_port_fifo_batch",
    "optimal_two_port_lifo_batch",
    "solve_two_port_batch",
    "solve_two_port_scenarios",
    "two_port_arrays_batch",
]


def two_port_arrays_batch(
    c: np.ndarray,
    w: np.ndarray,
    d: np.ndarray,
    rank2: np.ndarray | None = None,
    deadline: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the stacked ``A x <= b`` arrays of the uncoupled system.

    ``c``, ``w``, ``d`` are ``(B, q)`` cost matrices in each scenario's
    ``sigma1`` order; ``rank2`` gives the return-permutation ranks exactly
    as in :func:`~repro.core.batch_scenario.scenario_arrays_batch`
    (``None`` for FIFO, a ``(q,)`` shared permutation — e.g. the two-port
    LIFO's ``q-1 .. 0`` — or a ``(B, q)`` per-scenario matrix).  The
    result has ``q`` rows per scenario: the per-worker deadline rows (2a)
    only, the two-port model having no port to couple.
    """
    return scenario_arrays_batch(c, w, d, rank2=rank2, deadline=deadline, one_port=False)


def solve_two_port_batch(
    c: np.ndarray,
    w: np.ndarray,
    d: np.ndarray,
    rank2: np.ndarray | None = None,
    deadline: float = 1.0,
) -> BatchScenarioResult:
    """Build and solve a stacked batch of two-port scenarios.

    One masked vectorised simplex call for the whole batch; loads,
    objectives and iteration counts are bit-identical to the scalar kernel
    on each scenario (shared solver, shared fallback).
    """
    a, b = two_port_arrays_batch(c, w, d, rank2=rank2, deadline=deadline)
    return solve_scenario_arrays_batch(a, b, kernel="batch_twoport")


def solve_two_port_scenarios(
    scenarios: Sequence[tuple[StarPlatform, Sequence[str], Sequence[str] | None]],
    deadline: float = 1.0,
    validate: bool = True,
) -> list[FastScenarioResult]:
    """Solve a mixed chunk of two-port scenarios through the batched kernel.

    ``scenarios`` is a sequence of ``(platform, sigma1, sigma2)`` triples
    (``sigma2=None`` meaning FIFO), grouped by worker count into stacked
    kernel calls; results come back in input order, each bit-identical to
    :func:`~repro.core.fast_scenario.solve_scenario_fast` with
    ``one_port=False`` on the same triple.
    """
    return solve_scenarios_fast(
        scenarios, deadline=deadline, one_port=False, validate=validate
    )


def _two_port_solutions(
    scenarios: list[tuple[StarPlatform, list[str], list[str] | None]],
    orders: list[list[str]],
    deadline: float,
) -> list[TwoPortSolution]:
    """Wrap batched kernel results as :class:`TwoPortSolution` objects."""
    from repro.core.linear_program import solve_scenarios

    solutions = solve_scenarios(scenarios, deadline=deadline, one_port=False)
    return [
        TwoPortSolution(
            schedule=solution.schedule,
            order=tuple(order),
            throughput=solution.throughput,
            scenario=solution,
        )
        for order, solution in zip(orders, solutions)
    ]


def optimal_two_port_fifo_batch(
    platforms: Sequence[StarPlatform],
    deadline: float = 1.0,
) -> list[TwoPortSolution]:
    """Optimal two-port FIFO schedules for a whole chunk of platforms.

    Element for element identical to
    :func:`repro.core.twoport.optimal_two_port_fifo_schedule` (same
    Theorem-1 order rule, loads from the batched two-port LP — the batched
    kernel being bit-identical to the scalar fast path).
    """
    scenarios: list[tuple[StarPlatform, list[str], list[str] | None]] = []
    orders: list[list[str]] = []
    for platform in platforms:
        z = platform.z
        order = platform.ordered_by_c(descending=z is not None and z > 1.0)
        scenarios.append((platform, list(order), list(order)))
        orders.append(list(order))
    return _two_port_solutions(scenarios, orders, deadline)


def optimal_two_port_lifo_batch(
    platforms: Sequence[StarPlatform],
    deadline: float = 1.0,
) -> list[TwoPortSolution]:
    """Optimal two-port LIFO schedules for a whole chunk of platforms.

    Element for element identical to
    :func:`repro.core.twoport.optimal_two_port_lifo_schedule` (serve by
    non-decreasing ``c_i``, collect in reverse, loads from the batched
    two-port LP).
    """
    scenarios: list[tuple[StarPlatform, list[str], list[str] | None]] = []
    orders: list[list[str]] = []
    for platform in platforms:
        order = platform.ordered_by_c(descending=False)
        scenarios.append((platform, list(order), list(reversed(order))))
        orders.append(list(order))
    return _two_port_solutions(scenarios, orders, deadline)
