"""Makespan view of the divisible-load problem.

The paper optimises the *throughput* (load processed within ``T = 1``), and
notes that, thanks to the linear cost model, this is equivalent to minimising
the *makespan* for a fixed total load ``M`` — which is what the experiments
of Section 5 actually measure (time to complete ``M = 1000`` matrix
products).  This module holds the conversion helpers used by the experiment
harness:

* :func:`makespan_for_load` — the time needed to process ``M`` units with a
  schedule of known throughput;
* :func:`schedule_for_total_load` — rescale a unit-deadline schedule so that
  it processes exactly ``M`` units (its deadline then *is* the predicted
  makespan);
* :func:`predicted_makespan` — one-call helper combining a heuristic result
  and a workload size.
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError

__all__ = ["makespan_for_load", "schedule_for_total_load", "predicted_makespan"]


def makespan_for_load(throughput: float, total_load: float) -> float:
    """Time needed to process ``total_load`` units at the given throughput.

    Under the linear model a schedule processing ``rho`` units per time unit
    processes ``M`` units in ``M / rho`` time units (all events scale by the
    same factor).
    """
    if throughput <= 0:
        raise ScheduleError("throughput must be positive to compute a makespan")
    if total_load < 0:
        raise ScheduleError("total_load must be non-negative")
    return total_load / throughput


def schedule_for_total_load(schedule: Schedule, total_load: float) -> Schedule:
    """Rescale ``schedule`` so that it processes exactly ``total_load`` units.

    The returned schedule's ``deadline`` equals the predicted makespan for
    that load; every event of its timeline is the original event multiplied
    by ``total_load / schedule.total_load``.
    """
    return schedule.scaled_to_total_load(total_load)


def predicted_makespan(schedule: Schedule, total_load: float) -> float:
    """Predicted completion time of ``total_load`` units for ``schedule``."""
    if schedule.total_load <= 0:
        raise ScheduleError("schedule processes no load; cannot predict a makespan")
    return makespan_for_load(schedule.throughput, total_load)
