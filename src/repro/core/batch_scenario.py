"""Batched kernel for whole chunks of scenario linear programs.

:mod:`repro.core.fast_scenario` made a *single* system-(2) LP cheap; the
campaigns still paid one Python call — array build, tableau set-up, pivot
loop — per scenario, thousands of times per figure.  This module lifts the
same kernel to a *batch* of same-size scenarios solved as one array-level
problem, the stacked-formulation trick that makes LP solvers practical for
large batches of small problems:

* :func:`scenario_arrays_batch` stacks the system-(2) constraint matrices of
  ``B`` scenarios into one ``(B, m, n)`` tensor (the per-scenario build of
  :func:`~repro.core.fast_scenario.scenario_arrays`, broadcast over the
  batch dimension — same masks, same elementwise operations, bit-identical
  entries);
* :func:`solve_scenario_arrays_batch` runs the dense primal simplex
  *vectorised over the batch dimension*: every iteration performs one
  Dantzig pricing, one ratio test and one rank-1 tableau update for **all**
  still-active problems at once, with a per-problem termination mask.
  Problems converge independently and drop out of the active set;
* stragglers fall back to the scalar kernel: any problem still unfinished
  when the scalar kernel would switch to Bland pricing (degenerate cycling
  territory, never reached on well-formed scenarios) — or whose pivot column
  looks unbounded — is re-solved from scratch by
  :func:`~repro.core.fast_scenario.solve_scenario_arrays`, so its result
  (or its diagnostic) is the scalar kernel's by construction.

Because the batched iterations perform exactly the scalar kernel's
floating-point operations in the same order (Dantzig ``argmax``, masked
ratio ``divide``, smallest-basis tie-break, rank-1 update), the returned
loads, objectives and iteration counts are **bit-identical** to calling
:func:`~repro.core.fast_scenario.solve_scenario_arrays` once per scenario —
asserted over all campaign scenario families by the test-suite.

:func:`solve_scenarios_fast` is the convenience front end used by the
experiment layer: it takes an arbitrary mix of (platform, sigma1, sigma2)
scenarios, groups them by worker count, and returns one
:class:`~repro.core.fast_scenario.FastScenarioResult` per scenario in input
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

import repro.obs as obs
from repro.core.fast_scenario import (
    _BLAND_AFTER_FACTOR,
    _TOLERANCE,
    _triangular_masks,
    FastScenarioResult,
    solve_scenario_arrays,
    validate_scenario,
)
from repro.core.platform import StarPlatform
from repro.exceptions import ScheduleError, SolverError

__all__ = [
    "BatchScenarioResult",
    "scenario_arrays_batch",
    "solve_scenario_arrays_batch",
    "solve_scenarios_fast",
]


@dataclass(frozen=True)
class BatchScenarioResult:
    """Raw outcome of the batched kernel for a chunk of scenarios.

    Attributes
    ----------
    loads:
        Optimal ``alpha`` per scenario and worker, shape ``(B, n)``, in
        each scenario's ``sigma1`` order.
    objectives:
        ``loads.sum(axis=1)`` per scenario — total load within the deadline.
    iterations:
        Simplex pivots per scenario.
    fallbacks:
        Boolean mask of the scenarios that were re-solved by the scalar
        kernel (stragglers/degenerate cases); useful for diagnostics and
        asserted to stay empty on the campaign families.
    """

    loads: np.ndarray
    objectives: np.ndarray
    iterations: np.ndarray
    fallbacks: np.ndarray

    def __len__(self) -> int:
        return self.loads.shape[0]

    def result(self, index: int) -> FastScenarioResult:
        """The scalar-kernel view of one scenario of the batch."""
        return FastScenarioResult(
            loads=self.loads[index],
            objective=float(self.objectives[index]),
            iterations=int(self.iterations[index]),
        )


def scenario_arrays_batch(
    c: np.ndarray,
    w: np.ndarray,
    d: np.ndarray,
    rank2: np.ndarray | None = None,
    deadline: float = 1.0,
    one_port: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the stacked ``A x <= b`` arrays of system (2) for ``B`` scenarios.

    ``c``, ``w``, ``d`` are ``(B, q)`` cost matrices in each scenario's
    ``sigma1`` order.  ``rank2`` gives the return-permutation ranks of each
    ``sigma1`` position: ``None`` for FIFO (``sigma2 == sigma1``), a ``(q,)``
    vector for a shared permutation (e.g. LIFO's ``q-1 .. 0``), or a
    ``(B, q)`` matrix for per-scenario permutations.

    Every entry equals the scalar build of
    :func:`~repro.core.fast_scenario.scenario_arrays` bit-for-bit — the
    batched expressions broadcast the same masks over the same cost vectors.
    """
    c = np.asarray(c, dtype=float)
    w = np.asarray(w, dtype=float)
    d = np.asarray(d, dtype=float)
    if c.ndim != 2 or c.shape != w.shape or c.shape != d.shape:
        raise SolverError("c, w, d must be (batch, q) arrays of one shape")
    batch, q = c.shape
    if q == 0:
        raise ScheduleError("a scenario needs at least one worker")
    if deadline <= 0:
        raise ScheduleError("deadline must be positive")

    prefix, fifo_suffix = _triangular_masks(q)
    if rank2 is None:
        suffix = fifo_suffix
    else:
        rank2 = np.asarray(rank2)
        if rank2.ndim == 1:
            suffix = rank2[None, :] >= rank2[:, None]
        elif rank2.ndim == 2 and rank2.shape == (batch, q):
            suffix = rank2[:, None, :] >= rank2[:, :, None]
        else:
            raise SolverError("rank2 must be a (q,) or (batch, q) array")

    rows = q + 1 if one_port else q
    a = np.empty((batch, rows, q))
    np.multiply(prefix, c[:, None, :], out=a[:, :q])
    a[:, :q] += suffix * d[:, None, :]
    diagonal = np.arange(q)
    a[:, diagonal, diagonal] += w
    if one_port:
        np.add(c, d, out=a[:, q])
    b = np.full((batch, rows), float(deadline))
    return a, b


def solve_scenario_arrays_batch(
    a: np.ndarray, b: np.ndarray, kernel: str = "batch_scenario"
) -> BatchScenarioResult:
    """Maximise ``sum(x)`` s.t. ``a[i] x <= b[i], x >= 0`` for every ``i``.

    One vectorised Dantzig simplex drives all problems simultaneously; a
    per-problem active mask retires converged problems, and any problem
    that reaches the scalar kernel's Bland switch-over (or hits a
    non-positive pivot column) is delegated to
    :func:`~repro.core.fast_scenario.solve_scenario_arrays` so that its
    result — or its error — is exactly the scalar kernel's.

    ``kernel`` labels the call for the telemetry profile (the two-port
    wrappers pass ``"batch_twoport"``): when a telemetry is active the
    kernel reports batch size, total pivot iterations, termination-mask
    occupancy (active slots over priced slots) and scalar-fallback count
    per call.  The bookkeeping is pure integer accumulation outside the
    float pipeline, so solved values are bit-identical either way.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 3:
        raise SolverError("batched scenario solver expects a (batch, m, n) tensor")
    batch, m, n = a.shape
    if b.shape != (batch, m):
        raise SolverError("right-hand side shape does not match the batch")
    if np.any(b <= 0):
        raise SolverError("scenario right-hand sides must be positive")

    width = n + m + 1
    tableau = np.zeros((batch, m + 1, width))
    tableau[:, :m, :n] = a
    tableau[:, :m, n : n + m] = np.eye(m)
    tableau[:, :m, -1] = b
    tableau[:, m, :n] = 1.0
    basis = np.broadcast_to(np.arange(n, n + m), (batch, m)).copy()
    iterations = np.zeros(batch, dtype=np.int64)
    active = np.ones(batch, dtype=bool)
    fallback = np.zeros(batch, dtype=bool)

    bland_after = _BLAND_AFTER_FACTOR * (n + m)
    row_index = np.arange(m)
    # A basis entry can never exceed n + m; used as the +inf of the
    # smallest-basic-index tie-break below.
    basis_sentinel = n + m + 1

    # Telemetry bookkeeping (plain ints, outside the float pipeline):
    # how many batch slots were priced in total and how many of those
    # were still active — the termination-mask occupancy of the run.
    priced_iterations = 0
    active_slots = 0

    pivot = 0
    while pivot <= bland_after:
        index = np.flatnonzero(active)
        if index.size == 0:
            break
        priced_iterations += 1
        active_slots += index.size
        k = index.size
        rows_k = np.arange(k)

        # Dantzig pricing: first maximiser of the reduced costs, exactly
        # like the scalar kernel's np.argmax over tableau[m, :n+m].
        reduced = tableau[index, m, : n + m]
        entering = np.argmax(reduced, axis=1)
        improving = reduced[rows_k, entering] > _TOLERANCE
        active[index[~improving]] = False
        index = index[improving]
        entering = entering[improving]
        if index.size == 0:
            continue
        k = index.size
        rows_k = np.arange(k)

        # Ratio test on the entering columns.
        column = tableau[index[:, None], row_index[None, :], entering[:, None]]
        positive = column > _TOLERANCE
        unbounded = ~positive.any(axis=1)
        if unbounded.any():
            # Delegate to the scalar kernel, which raises the scalar
            # diagnostic for genuinely unbounded directions.
            fallback[index[unbounded]] = True
            active[index[unbounded]] = False
            keep = ~unbounded
            index, entering = index[keep], entering[keep]
            column, positive = column[keep], positive[keep]
            if index.size == 0:
                continue
            k = index.size
            rows_k = np.arange(k)
        rhs = tableau[index, :m, -1]
        ratios = np.full((k, m), np.inf)
        np.divide(rhs, column, out=ratios, where=positive)
        best = ratios[rows_k, np.argmin(ratios, axis=1)]
        # Deterministic tie-break: smallest basic index among the
        # minimisers (identical to the scalar kernel for unique minima,
        # since every problem's basis entries are distinct).
        tie_key = np.where(ratios == best[:, None], basis[index], basis_sentinel)
        leaving = np.argmin(tie_key, axis=1)

        # Rank-1 update: normalise each pivot row, subtract the outer
        # product everywhere else (the pivot row's factor is zeroed, so it
        # keeps exactly the normalised values — as in the scalar kernel).
        # Inactive problems get zero factors and zero pivot rows, so the
        # full-batch subtraction leaves their tableaus untouched bit for
        # bit (x - 0.0*0.0 == x) while avoiding a gather/scatter of the
        # whole active block every iteration.
        pivot_rows = tableau[index, leaving, :]
        pivot_values = pivot_rows[rows_k, entering]
        pivot_rows = pivot_rows / pivot_values[:, None]
        factors = tableau[index[:, None], np.arange(m + 1)[None, :], entering[:, None]]
        factors[rows_k, leaving] = 0.0
        factors_full = np.zeros((batch, m + 1))
        factors_full[index] = factors
        rows_full = np.zeros((batch, width))
        rows_full[index] = pivot_rows
        tableau -= factors_full[:, :, None] * rows_full[:, None, :]
        tableau[index, leaving, :] = pivot_rows
        basis[index, leaving] = entering
        iterations[index] += 1
        pivot += 1

    # Stragglers: anything still active after the Dantzig-phase budget is
    # degenerate-cycling territory; the scalar kernel (with its Bland
    # safety net) re-solves them from the original arrays.
    fallback |= active

    loads = np.zeros((batch, n))
    solution = np.zeros((batch, n + m))
    np.put_along_axis(solution, basis, tableau[:, :m, -1], axis=1)
    np.maximum(solution[:, :n], 0.0, out=loads)
    objectives = -tableau[:, m, -1]
    # Same degenerate-dust snap as the scalar kernel.
    loads[loads <= 1e-11 * objectives[:, None]] = 0.0

    for i in np.flatnonzero(fallback):
        scalar = solve_scenario_arrays(a[i], b[i])
        loads[i] = scalar.loads
        objectives[i] = scalar.objective
        iterations[i] = scalar.iterations

    telemetry = obs.active()
    if telemetry.enabled:
        telemetry.kernel_call(
            kernel,
            problems=batch,
            pivots=int(iterations.sum()),
            active_slots=active_slots,
            mask_slots=priced_iterations * batch,
            fallbacks=int(np.count_nonzero(fallback)),
        )

    return BatchScenarioResult(
        loads=loads,
        objectives=objectives,
        iterations=iterations,
        fallbacks=fallback,
    )


def solve_scenarios_fast(
    scenarios: Sequence[tuple[StarPlatform, Sequence[str], Sequence[str] | None]],
    deadline: float = 1.0,
    one_port: bool = True,
    validate: bool = True,
) -> list[FastScenarioResult]:
    """Solve a mixed chunk of scenarios through the batched kernel.

    ``scenarios`` is a sequence of ``(platform, sigma1, sigma2)`` triples
    (``sigma2=None`` meaning FIFO).  Scenarios are grouped by worker count —
    each group becomes one stacked kernel call — and the results come back
    in input order, each bit-identical to
    :func:`~repro.core.fast_scenario.solve_scenario_fast` on the same triple.

    ``validate=False`` skips the per-scenario permutation checks for
    callers whose sigmas come straight from a platform ordering (always
    valid); the solved values are identical.
    """
    groups: dict[int, list[int]] = {}
    parsed: list[tuple[StarPlatform, list[str], list[str]]] = []
    for position, (platform, sigma1, sigma2) in enumerate(scenarios):
        if validate:
            sigma1, sigma2 = validate_scenario(platform, sigma1, sigma2, deadline)
        else:
            sigma1 = list(sigma1)
            sigma2 = list(sigma2) if sigma2 is not None else sigma1
        parsed.append((platform, sigma1, sigma2))
        groups.setdefault(len(sigma1), []).append(position)

    results: list[FastScenarioResult | None] = [None] * len(parsed)
    for q, positions in groups.items():
        size = len(positions)
        c = np.empty((size, q))
        w = np.empty((size, q))
        d = np.empty((size, q))
        rank2 = np.empty((size, q), dtype=np.int64)
        identity = np.arange(q)
        fifo = True
        for row, position in enumerate(positions):
            platform, sigma1, sigma2 = parsed[position]
            c[row], w[row], d[row] = platform.cost_vectors(sigma1)
            if sigma2 == sigma1:
                rank2[row] = identity
            else:
                fifo = False
                position_of = {name: pos for pos, name in enumerate(sigma2)}
                rank2[row] = [position_of[name] for name in sigma1]
        a, b = scenario_arrays_batch(
            c, w, d,
            rank2=None if fifo else rank2,
            deadline=deadline,
            one_port=one_port,
        )
        solved = solve_scenario_arrays_batch(
            a, b, kernel="batch_scenario" if one_port else "batch_twoport"
        )
        for row, position in enumerate(positions):
            results[position] = solved.result(row)
    return results  # type: ignore[return-value]
