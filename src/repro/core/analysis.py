"""Regime analysis utilities.

The relative merit of the FIFO and LIFO disciplines — and the number of
workers worth enrolling — depends on where the platform sits between two
regimes:

* **port-saturated**: the master's one-port NIC is the bottleneck
  (``sum alpha_i (c_i + d_i) = T`` in the optimal schedule); every extra
  worker is useless and every ordering that saturates the port is optimal;
* **compute-bound**: the workers' aggregate speed is the bottleneck; the
  ordering of the messages and the choice of enrolled workers matter.

The paper's evaluation implicitly sweeps this axis by changing the matrix
size (computation grows as ``s^3`` against ``s^2`` for communication) and by
scaling communication or computation by 10 (Figure 13).  This module makes
the regime explicit and provides the comparison utilities used by the
crossover experiment, the ablation benchmarks and the examples:

* :func:`port_utilisation` — fraction of the deadline the master spends
  communicating in a schedule;
* :func:`is_port_saturated` — whether the optimal FIFO schedule saturates
  the port;
* :func:`strategy_comparison` — optimal FIFO vs optimal LIFO vs the
  two-port upper bound on one platform;
* :func:`fifo_lifo_crossover` — bisect the computation/communication ratio
  at which the optimal LIFO overtakes the optimal FIFO (if it does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.fifo import FifoSolution, optimal_fifo_order, optimal_fifo_schedule
from repro.core.lifo import LifoSolution, optimal_lifo_schedule
from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule
from repro.core.twoport import TwoPortSolution, optimal_two_port_fifo_schedule
from repro.exceptions import ScheduleError

__all__ = [
    "StrategyComparison",
    "port_utilisation",
    "is_port_saturated",
    "strategy_comparison",
    "strategy_comparison_batch",
    "fifo_lifo_crossover",
]


_SATURATION_TOLERANCE = 1e-6


def port_utilisation(schedule: Schedule) -> float:
    """Fraction of the deadline the master's port is busy in ``schedule``.

    Under the one-port model this is ``sum alpha_i (c_i + d_i) / T`` and can
    never exceed 1 for a feasible schedule.
    """
    busy = sum(
        schedule.load(name) * schedule.platform[name].round_trip for name in schedule.sigma1
    )
    return busy / schedule.deadline


def is_port_saturated(platform: StarPlatform, tol: float = _SATURATION_TOLERANCE) -> bool:
    """``True`` when the optimal FIFO schedule saturates the master's port.

    In the saturated regime all reasonable strategies achieve the port bound
    and both resource selection and message ordering stop mattering; outside
    it, Theorem 1's ordering and the FIFO/LIFO choice have measurable impact.
    """
    solution = optimal_fifo_schedule(platform)
    return port_utilisation(solution.schedule) >= 1.0 - tol


@dataclass(frozen=True)
class StrategyComparison:
    """Throughputs of the main disciplines on one platform."""

    platform_name: str
    fifo_throughput: float
    lifo_throughput: float
    two_port_throughput: float
    fifo_participants: int
    lifo_participants: int
    port_saturated: bool

    @property
    def lifo_over_fifo(self) -> float:
        """LIFO/FIFO throughput ratio (> 1 means LIFO processes more load)."""
        return self.lifo_throughput / self.fifo_throughput

    @property
    def one_port_penalty(self) -> float:
        """Two-port over one-port FIFO throughput (>= 1): the cost of the model."""
        return self.two_port_throughput / self.fifo_throughput

    def winner(self, tol: float = 1e-9) -> str:
        """``"FIFO"``, ``"LIFO"`` or ``"tie"``."""
        if self.fifo_throughput > self.lifo_throughput + tol:
            return "FIFO"
        if self.lifo_throughput > self.fifo_throughput + tol:
            return "LIFO"
        return "tie"


def _comparison(
    platform: StarPlatform,
    fifo: FifoSolution,
    lifo: LifoSolution,
    two_port: TwoPortSolution,
) -> StrategyComparison:
    """Assemble a :class:`StrategyComparison` from the three solutions."""
    return StrategyComparison(
        platform_name=platform.name,
        fifo_throughput=fifo.throughput,
        lifo_throughput=lifo.throughput,
        two_port_throughput=two_port.throughput,
        fifo_participants=len(fifo.participants),
        lifo_participants=len(lifo.participants),
        port_saturated=port_utilisation(fifo.schedule) >= 1.0 - _SATURATION_TOLERANCE,
    )


def strategy_comparison(platform: StarPlatform, deadline: float = 1.0) -> StrategyComparison:
    """Compare the optimal FIFO, optimal LIFO and two-port FIFO on ``platform``."""
    fifo = optimal_fifo_schedule(platform, deadline=deadline)
    lifo = optimal_lifo_schedule(platform, deadline=deadline)
    two_port = optimal_two_port_fifo_schedule(platform, deadline=deadline)
    return _comparison(platform, fifo, lifo, two_port)


def strategy_comparison_batch(
    platforms: Sequence[StarPlatform], deadline: float = 1.0
) -> list[StrategyComparison]:
    """:func:`strategy_comparison` for a whole chunk of platforms at once.

    The one-port FIFO LPs and the two-port FIFO LPs of every platform are
    each stacked into one batched scenario-kernel call; the optimal LIFO is
    the closed-form chain as usual.  The result matches
    ``[strategy_comparison(p, deadline) for p in platforms]`` exactly — this
    is what lets the crossover sweep solve its whole (size, platform) grid
    in a handful of vectorised calls.
    """
    from repro.core.linear_program import solve_scenarios

    orders = [optimal_fifo_order(platform) for platform in platforms]
    # optimal_two_port_fifo_schedule picks the same Theorem 1 order.
    one_port = solve_scenarios(
        [(platform, order, None) for platform, order in zip(platforms, orders)],
        deadline=deadline,
        one_port=True,
    )
    two_port = solve_scenarios(
        [(platform, order, None) for platform, order in zip(platforms, orders)],
        deadline=deadline,
        one_port=False,
    )
    comparisons: list[StrategyComparison] = []
    for platform, order, fifo_scenario, two_scenario in zip(
        platforms, orders, one_port, two_port
    ):
        fifo = FifoSolution(
            schedule=fifo_scenario.schedule,
            order=tuple(order),
            throughput=fifo_scenario.throughput,
            scenario=fifo_scenario,
        )
        lifo = optimal_lifo_schedule(platform, deadline=deadline)
        two = TwoPortSolution(
            schedule=two_scenario.schedule,
            order=tuple(order),
            throughput=two_scenario.throughput,
            scenario=two_scenario,
        )
        comparisons.append(_comparison(platform, fifo, lifo, two))
    return comparisons


def fifo_lifo_crossover(
    platform_factory: Callable[[float], StarPlatform],
    low: float = 0.1,
    high: float = 100.0,
    iterations: int = 60,
) -> float | None:
    """Find the parameter value where optimal LIFO overtakes optimal FIFO.

    ``platform_factory`` maps a scalar parameter (typically a computation-to-
    communication ratio, or a matrix size) to a platform.  The function
    assumes the sign of ``lifo - fifo`` changes at most once over
    ``[low, high]`` and bisects for the crossover; it returns ``None`` when
    the winner is the same at both ends (no crossover in the interval).
    """
    if low >= high:
        raise ScheduleError("fifo_lifo_crossover needs low < high")

    def gap(value: float) -> float:
        comparison = strategy_comparison(platform_factory(value))
        return comparison.lifo_throughput - comparison.fifo_throughput

    gap_low = gap(low)
    gap_high = gap(high)
    if (gap_low > 0) == (gap_high > 0):
        return None
    for _ in range(iterations):
        middle = 0.5 * (low + high)
        gap_middle = gap(middle)
        if (gap_middle > 0) == (gap_low > 0):
            low, gap_low = middle, gap_middle
        else:
            high, gap_high = middle, gap_middle
    return 0.5 * (low + high)
