"""Scheduling heuristics compared in the paper's experiments (Section 5).

The MPI campaigns of the paper compare three strategies, all of which enrol
every worker and compute their loads with the scenario LP:

* ``INC_C`` — FIFO, workers served by non-decreasing ``c_i`` (faster
  communicating workers first).  By Theorem 1 this is the optimal FIFO
  ordering (for ``z < 1``).
* ``INC_W`` — FIFO, workers served by non-decreasing ``w_i`` (faster
  computing workers first).  A natural but sub-optimal ordering, kept as a
  foil.
* ``LIFO``  — the optimal one-port LIFO schedule (all workers, served by
  non-decreasing ``c_i``, no idle time).

This module also provides a few additional orderings (``DEC_C``, platform
order, explicit order) used by the ablation benchmarks, and a comparison
helper that evaluates a set of heuristics on one platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.fifo import fifo_schedule_for_order, optimal_fifo_order, optimal_fifo_schedule
from repro.core.lifo import optimal_lifo_schedule
from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError
from repro.lp import Solver

__all__ = [
    "HeuristicResult",
    "inc_c",
    "inc_w",
    "dec_c",
    "platform_order_fifo",
    "fifo_with_order",
    "lifo",
    "optimal_fifo",
    "HEURISTICS",
    "compare_heuristics",
    "compare_heuristics_batch",
]


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of running one heuristic on one platform."""

    name: str
    schedule: Schedule
    throughput: float

    @property
    def participants(self) -> list[str]:
        """Workers actually enrolled by the heuristic."""
        return self.schedule.participants

    @property
    def loads(self) -> dict[str, float]:
        """Load assigned to each candidate worker."""
        return self.schedule.loads

    def makespan_for(self, total_load: float) -> float:
        """Time needed to process ``total_load`` units with this schedule."""
        if self.throughput <= 0:
            raise ScheduleError(f"heuristic {self.name!r} has zero throughput")
        return total_load / self.throughput


def inc_c(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> HeuristicResult:
    """``INC_C``: FIFO over all workers, served by non-decreasing ``c_i``."""
    solution = fifo_schedule_for_order(
        platform, platform.ordered_by_c(), deadline=deadline, solver=solver
    )
    return HeuristicResult(name="INC_C", schedule=solution.schedule, throughput=solution.throughput)


def inc_w(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> HeuristicResult:
    """``INC_W``: FIFO over all workers, served by non-decreasing ``w_i``."""
    solution = fifo_schedule_for_order(
        platform, platform.ordered_by_w(), deadline=deadline, solver=solver
    )
    return HeuristicResult(name="INC_W", schedule=solution.schedule, throughput=solution.throughput)


def dec_c(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> HeuristicResult:
    """``DEC_C``: FIFO with workers served by non-increasing ``c_i``.

    This is the optimal ordering when ``z > 1`` and a deliberately bad one
    when ``z < 1``; it is used by the ordering-ablation benchmark.
    """
    solution = fifo_schedule_for_order(
        platform, platform.ordered_by_c(descending=True), deadline=deadline, solver=solver
    )
    return HeuristicResult(name="DEC_C", schedule=solution.schedule, throughput=solution.throughput)


def platform_order_fifo(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> HeuristicResult:
    """FIFO in plain platform order (an "as declared" baseline)."""
    solution = fifo_schedule_for_order(
        platform, platform.worker_names, deadline=deadline, solver=solver
    )
    return HeuristicResult(
        name="PLATFORM_ORDER", schedule=solution.schedule, throughput=solution.throughput
    )


def fifo_with_order(
    platform: StarPlatform,
    order: Sequence[str],
    deadline: float = 1.0,
    solver: str | Solver | None = None,
    name: str = "FIFO",
) -> HeuristicResult:
    """FIFO with an explicit, caller-chosen order."""
    solution = fifo_schedule_for_order(platform, order, deadline=deadline, solver=solver)
    return HeuristicResult(name=name, schedule=solution.schedule, throughput=solution.throughput)


def lifo(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> HeuristicResult:
    """Optimal one-port LIFO schedule (the paper's ``LIFO`` baseline)."""
    solution = optimal_lifo_schedule(platform, deadline=deadline, method="closed-form")
    return HeuristicResult(name="LIFO", schedule=solution.schedule, throughput=solution.throughput)


def optimal_fifo(
    platform: StarPlatform,
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> HeuristicResult:
    """The provably optimal FIFO schedule of Theorem 1 (with selection)."""
    solution = optimal_fifo_schedule(platform, deadline=deadline, solver=solver)
    return HeuristicResult(
        name="OPT_FIFO", schedule=solution.schedule, throughput=solution.throughput
    )


#: Name → callable registry of the heuristics used by experiments and benches.
HEURISTICS: dict[str, Callable[..., HeuristicResult]] = {
    "INC_C": inc_c,
    "INC_W": inc_w,
    "DEC_C": dec_c,
    "PLATFORM_ORDER": platform_order_fifo,
    "LIFO": lifo,
    "OPT_FIFO": optimal_fifo,
}


def compare_heuristics(
    platform: StarPlatform,
    names: Iterable[str] = ("INC_C", "INC_W", "LIFO"),
    deadline: float = 1.0,
    solver: str | Solver | None = None,
) -> dict[str, HeuristicResult]:
    """Evaluate several heuristics on ``platform`` and return them by name.

    The default selection matches the paper's experimental comparison.
    """
    results: dict[str, HeuristicResult] = {}
    for name in names:
        try:
            heuristic = HEURISTICS[name]
        except KeyError:
            raise ScheduleError(
                f"unknown heuristic {name!r}; available: {sorted(HEURISTICS)}"
            ) from None
        results[name] = heuristic(platform, deadline=deadline, solver=solver)
    return results


#: FIFO send order chosen by each LP-backed heuristic (used to batch their
#: scenario LPs; the LIFO heuristic is closed-form and needs no LP).
_FIFO_ORDERS: dict[str, Callable[[StarPlatform], Sequence[str]]] = {
    "INC_C": lambda platform: platform.ordered_by_c(),
    "INC_W": lambda platform: platform.ordered_by_w(),
    "DEC_C": lambda platform: platform.ordered_by_c(descending=True),
    "PLATFORM_ORDER": lambda platform: platform.worker_names,
    "OPT_FIFO": optimal_fifo_order,
}


def compare_heuristics_batch(
    platforms: Sequence[StarPlatform],
    names: Iterable[str] = ("INC_C", "INC_W", "LIFO"),
    deadline: float = 1.0,
) -> list[dict[str, HeuristicResult]]:
    """Evaluate several heuristics on a whole chunk of platforms at once.

    The LP-backed heuristics of every platform are stacked into one batched
    scenario-kernel call (see :func:`repro.core.linear_program.
    solve_scenarios`); the closed-form LIFO is computed per platform as
    usual.  The returned list matches ``[compare_heuristics(p, names) for p
    in platforms]`` exactly — same schedules, loads and throughputs — the
    batched kernel being bit-identical to the scalar fast path.
    """
    from repro.core.linear_program import solve_scenarios

    names = tuple(names)
    for name in names:
        if name not in HEURISTICS:
            raise ScheduleError(
                f"unknown heuristic {name!r}; available: {sorted(HEURISTICS)}"
            )

    scenarios: list[tuple[StarPlatform, Sequence[str], None]] = []
    slots: list[tuple[int, str]] = []
    for index, platform in enumerate(platforms):
        for name in names:
            if name in _FIFO_ORDERS:
                scenarios.append((platform, list(_FIFO_ORDERS[name](platform)), None))
                slots.append((index, name))
    solutions = solve_scenarios(scenarios, deadline=deadline, one_port=True)
    solved: dict[tuple[int, str], HeuristicResult] = {}
    for (index, name), solution in zip(slots, solutions):
        solved[(index, name)] = HeuristicResult(
            name=name, schedule=solution.schedule, throughput=solution.throughput
        )

    results: list[dict[str, HeuristicResult]] = []
    for index, platform in enumerate(platforms):
        evaluated: dict[str, HeuristicResult] = {}
        for name in names:
            if name in _FIFO_ORDERS:
                evaluated[name] = solved[(index, name)]
            else:
                evaluated[name] = HEURISTICS[name](platform, deadline=deadline)
        results.append(evaluated)
    return results
