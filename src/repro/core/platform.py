"""Platform model: heterogeneous master-worker star and bus networks.

The paper targets a star network ``S = {P0, P1, ..., Pp}`` (Figure 1 of the
report): a master ``P0`` with no processing capability and ``p`` workers.
Under the linear cost model each worker ``Pi`` is described by three per-unit
costs:

* ``ci`` — time to send one unit of load from the master to ``Pi``;
* ``wi`` — time for ``Pi`` to process one unit of load;
* ``di`` — time to return the results of one unit of load to the master.

A *bus* network is the special case where every link has the same
characteristics (``ci = c`` and ``di = d`` for all workers).  The paper's
analysis assumes ``di = z * ci`` with an application-dependent constant ``z``
(``z = 1/2`` for the matrix-product experiments of Section 5); the model here
keeps independent ``ci``/``di`` values, exposes the ratio when it is constant,
and the algorithms state explicitly when they rely on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import PlatformError

__all__ = ["Worker", "StarPlatform", "bus_platform", "homogeneous_platform"]


_RATIO_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Worker:
    """A single worker of the star platform.

    Attributes
    ----------
    name:
        Unique identifier (used in schedules and traces).
    c:
        Per-unit communication cost for the initial (forward) message.
    w:
        Per-unit computation cost.
    d:
        Per-unit communication cost for the return message.
    """

    name: str
    c: float
    w: float
    d: float

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("worker name must be a non-empty string")
        for field_name, value in (("c", self.c), ("w", self.w), ("d", self.d)):
            if not math.isfinite(value):
                raise PlatformError(f"worker {self.name!r}: {field_name} must be finite")
            if value <= 0:
                raise PlatformError(
                    f"worker {self.name!r}: {field_name} must be positive (got {value})"
                )

    @classmethod
    def trusted(cls, name: str, c: float, w: float, d: float) -> "Worker":
        """Build a worker from already-validated costs, skipping the checks.

        For hot construction paths (campaigns instantiate one platform per
        (factor set, matrix size) pair) whose costs are positive and finite
        by construction.
        """
        worker = object.__new__(cls)
        object.__setattr__(worker, "name", name)
        object.__setattr__(worker, "c", c)
        object.__setattr__(worker, "w", w)
        object.__setattr__(worker, "d", d)
        return worker

    @property
    def z(self) -> float:
        """Return-message ratio ``d / c`` of this worker."""
        return self.d / self.c

    @property
    def round_trip(self) -> float:
        """Communication cost of a full unit round trip (``c + d``)."""
        return self.c + self.d

    def scaled(self, *, comm: float = 1.0, comp: float = 1.0) -> "Worker":
        """Return a copy with communication costs divided by ``comm`` and
        computation cost divided by ``comp``.

        Speed-up factors mirror the paper's Section 5.2 methodology, where a
        worker "k times faster" is emulated by dividing the corresponding
        per-unit cost by ``k``.
        """
        if comm <= 0 or comp <= 0:
            raise PlatformError("speed-up factors must be positive")
        return replace(self, c=self.c / comm, d=self.d / comm, w=self.w / comp)

    def with_ratio(self, z: float) -> "Worker":
        """Return a copy whose return cost is ``d = z * c``."""
        if z <= 0:
            raise PlatformError("the return ratio z must be positive")
        return replace(self, d=self.c * z)


class StarPlatform:
    """A heterogeneous master-worker star network.

    The platform is an immutable ordered collection of :class:`Worker`
    objects.  Worker order in the platform is purely presentational —
    schedules carry their own permutations — but a stable order keeps
    campaign results reproducible.
    """

    def __init__(self, workers: Iterable[Worker], name: str = "star") -> None:
        workers = list(workers)
        if not workers:
            raise PlatformError("a platform needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise PlatformError(f"duplicate worker names: {duplicates}")
        self._workers: tuple[Worker, ...] = tuple(workers)
        self._by_name = {w.name: w for w in self._workers}
        self.name = name
        # (order tuple) -> (c, w, d) arrays; filled by cost_vectors().
        self._cost_cache: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    def __getitem__(self, key: int | str) -> Worker:
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise PlatformError(f"unknown worker {key!r}") from None
        return self._workers[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StarPlatform):
            return NotImplemented
        return self._workers == other._workers

    def __hash__(self) -> int:
        return hash(self._workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StarPlatform({self.name!r}, p={len(self)}, z={self.z})"

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> tuple[Worker, ...]:
        """Workers in platform order."""
        return self._workers

    @property
    def worker_names(self) -> list[str]:
        """Worker names in platform order."""
        return [w.name for w in self._workers]

    @property
    def size(self) -> int:
        """Number of workers ``p``."""
        return len(self._workers)

    @property
    def z(self) -> float | None:
        """The common ratio ``d/c`` when it is constant, ``None`` otherwise.

        The paper assumes ``di = z * ci`` for every worker; campaigns built by
        :mod:`repro.workloads` always satisfy this.  Hand-built platforms may
        not, in which case ``None`` is returned and the FIFO ordering rule
        falls back to the ``z < 1`` case (non-decreasing ``ci``).
        """
        ratios = [w.z for w in self._workers]
        first = ratios[0]
        if all(math.isclose(r, first, rel_tol=_RATIO_TOLERANCE, abs_tol=_RATIO_TOLERANCE) for r in ratios):
            return first
        return None

    @property
    def is_bus(self) -> bool:
        """``True`` when every link has identical ``c`` and ``d`` costs."""
        c0, d0 = self._workers[0].c, self._workers[0].d
        return all(
            math.isclose(w.c, c0, rel_tol=_RATIO_TOLERANCE, abs_tol=_RATIO_TOLERANCE)
            and math.isclose(w.d, d0, rel_tol=_RATIO_TOLERANCE, abs_tol=_RATIO_TOLERANCE)
            for w in self._workers
        )

    @property
    def bus_costs(self) -> tuple[float, float]:
        """Return the common ``(c, d)`` of a bus platform.

        Raises
        ------
        PlatformError
            If the platform is not a bus.
        """
        if not self.is_bus:
            raise PlatformError(f"platform {self.name!r} is not a bus network")
        return self._workers[0].c, self._workers[0].d

    # ------------------------------------------------------------------ #
    # derived platforms
    # ------------------------------------------------------------------ #
    def ordered_by_c(self, descending: bool = False) -> list[str]:
        """Worker names sorted by ``ci`` (ties broken by name)."""
        return [
            w.name
            for w in sorted(self._workers, key=lambda w: (w.c, w.name), reverse=descending)
        ]

    def ordered_by_w(self, descending: bool = False) -> list[str]:
        """Worker names sorted by ``wi`` (ties broken by name)."""
        return [
            w.name
            for w in sorted(self._workers, key=lambda w: (w.w, w.name), reverse=descending)
        ]

    def cost_vectors(
        self, order: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(c, w, d)`` cost arrays of the workers in ``order``, cached.

        The batched scenario kernel gathers these vectors once per
        (platform, permutation) pair instead of looking up every worker's
        spec per solve; the returned arrays are shared — treat them as
        read-only.
        """
        key = tuple(order)
        cached = self._cost_cache.get(key)
        if cached is None:
            specs = [self[name] for name in key]
            cached = self._cost_cache[key] = (
                np.array([spec.c for spec in specs]),
                np.array([spec.w for spec in specs]),
                np.array([spec.d for spec in specs]),
            )
        return cached

    def subplatform(self, names: Sequence[str], name: str | None = None) -> "StarPlatform":
        """Return a platform restricted to ``names`` (in the given order)."""
        return StarPlatform(
            [self[n] for n in names],
            name=name if name is not None else f"{self.name}/subset",
        )

    def mirrored(self, name: str | None = None) -> "StarPlatform":
        """Return the platform with forward and return costs swapped.

        This is the ``z > 1`` mirroring device of Section 3: a FIFO schedule
        for the mirrored platform, read backwards in time, is a FIFO schedule
        for the original platform.
        """
        return StarPlatform(
            [Worker(name=w.name, c=w.d, w=w.w, d=w.c) for w in self._workers],
            name=name if name is not None else f"{self.name}/mirrored",
        )

    def scaled(self, *, comm: float = 1.0, comp: float = 1.0, name: str | None = None) -> "StarPlatform":
        """Return a copy with every worker sped up by the given factors."""
        return StarPlatform(
            [w.scaled(comm=comm, comp=comp) for w in self._workers],
            name=name if name is not None else self.name,
        )

    def reordered(self, names: Sequence[str], name: str | None = None) -> "StarPlatform":
        """Return a copy whose presentation order follows ``names``."""
        missing = set(self.worker_names) - set(names)
        if missing or len(names) != len(self):
            raise PlatformError(
                "reordered() needs a permutation of all worker names; "
                f"missing={sorted(missing)}"
            )
        return self.subplatform(names, name=name if name is not None else self.name)

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Return a human-readable multi-line description of the platform."""
        lines = [f"platform {self.name!r} with {len(self)} workers (z={self.z}):"]
        for w in self._workers:
            lines.append(f"  {w.name:>8s}: c={w.c:.6g}  w={w.w:.6g}  d={w.d:.6g}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Return a JSON-friendly description of the platform."""
        return {w.name: {"c": w.c, "w": w.w, "d": w.d} for w in self._workers}


def bus_platform(
    compute_costs: Sequence[float],
    c: float,
    d: float,
    names: Sequence[str] | None = None,
    name: str = "bus",
) -> StarPlatform:
    """Build a bus platform: shared link costs, per-worker compute costs.

    Parameters
    ----------
    compute_costs:
        Per-unit computation cost ``wi`` of each worker.
    c, d:
        Shared forward / return per-unit communication costs.
    names:
        Optional worker names; defaults to ``P1 .. Pp``.
    """
    if names is None:
        names = [f"P{i + 1}" for i in range(len(compute_costs))]
    if len(names) != len(compute_costs):
        raise PlatformError("names and compute_costs must have the same length")
    workers = [Worker(name=n, c=c, w=w, d=d) for n, w in zip(names, compute_costs)]
    return StarPlatform(workers, name=name)


def homogeneous_platform(
    size: int,
    c: float,
    w: float,
    d: float,
    name: str = "homogeneous",
) -> StarPlatform:
    """Build a fully homogeneous platform of ``size`` identical workers."""
    if size <= 0:
        raise PlatformError("size must be positive")
    workers = [Worker(name=f"P{i + 1}", c=c, w=w, d=d) for i in range(size)]
    return StarPlatform(workers, name=name)
