"""One front door over the scalar and batched solvers.

Historically callers had to pick between ~8 near-duplicate entry points:
``solve_scenario`` vs ``solve_scenarios``, ``compare_heuristics`` vs
``compare_heuristics_batch``, and the one-port vs two-port variants of each.
This module collapses them into two dispatching wrappers:

* :func:`solve` — one scenario LP (or a whole batch of them) under either
  port model, with the send order picked by a named heuristic rule or given
  explicitly;
* :func:`compare` — the paper's heuristic comparison, scalar or batched,
  one-port or two-port.

Scalar inputs route to the scalar kernels, sequences to the batched
kernels; the two paths are bit-identical (pinned by the PR-2/PR-4 kernel
tests and re-pinned here), so dispatch never changes a result — only how
many LPs share one stacked simplex call.

Every historical name remains exported from :mod:`repro.core`; the README
API table documents the old → new mapping.

The two-port comparison helpers (:func:`compare_heuristics_two_port` and
its batch twin) fill the one gap the historical surface had: evaluating
the *named* heuristic set under the two-port model.  They mirror
``compare_heuristics`` exactly — same names, same orders, the LP just
drops the coupling constraint (2b).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.heuristics import _FIFO_ORDERS, HEURISTICS, HeuristicResult
from repro.core.heuristics import compare_heuristics, compare_heuristics_batch
from repro.core.linear_program import ScenarioSolution, solve_scenario, solve_scenarios
from repro.core.platform import StarPlatform
from repro.exceptions import ScheduleError

__all__ = [
    "solve",
    "compare",
    "EVALUABLE",
    "heuristic_orders",
    "compare_heuristics_two_port",
    "compare_heuristics_two_port_batch",
]

#: Heuristic names :func:`compare` (and the query service) can evaluate —
#: identical under both port models.
EVALUABLE = tuple(HEURISTICS)


def heuristic_orders(
    platform: StarPlatform, name: str, one_port: bool = True
) -> tuple[list[str], list[str]]:
    """The ``(sigma1, sigma2)`` a named heuristic uses on ``platform``.

    For the FIFO rules the return order equals the send order; ``LIFO``
    reverses it.  The orders are identical under both port models (Theorem 1
    and its two-port companion pick the same permutation — only the LP
    differs), so ``one_port`` is accepted for symmetry but never changes
    the answer.
    """
    if name == "LIFO":
        sigma1 = list(platform.ordered_by_c())
        return sigma1, list(reversed(sigma1))
    try:
        rule = _FIFO_ORDERS[name]
    except KeyError:
        raise ScheduleError(
            f"unknown heuristic {name!r}; available: {sorted(HEURISTICS)}"
        ) from None
    sigma1 = list(rule(platform))
    return sigma1, list(sigma1)


def solve(
    platform: StarPlatform | Sequence[StarPlatform],
    *,
    one_port: bool = True,
    order_rule: str = "OPT_FIFO",
    order: Sequence[str] | None = None,
    return_order: Sequence[str] | None = None,
    deadline: float = 1.0,
) -> ScenarioSolution | list[ScenarioSolution]:
    """Solve the scenario LP for one platform — or a whole batch of them.

    A single :class:`StarPlatform` routes to the scalar fast kernel
    (:func:`repro.core.linear_program.solve_scenario`); any other sequence
    of platforms routes to the stacked batched kernel
    (:func:`~repro.core.linear_program.solve_scenarios`), one simplex call
    per scenario size class.  Both paths return the same
    :class:`ScenarioSolution` objects bit for bit.

    The send order comes from ``order_rule`` (a name from
    :data:`repro.core.heuristics.HEURISTICS`; ``LIFO`` implies a reversed
    return order) unless an explicit ``order`` (and optionally
    ``return_order``) is given.
    """
    if isinstance(platform, StarPlatform):
        sigma1, sigma2 = _solve_orders(platform, order_rule, order, return_order)
        return solve_scenario(
            platform, sigma1=sigma1, sigma2=sigma2, deadline=deadline, one_port=one_port
        )
    platforms = list(platform)
    scenarios = []
    for entry in platforms:
        sigma1, sigma2 = _solve_orders(entry, order_rule, order, return_order)
        scenarios.append((entry, sigma1, sigma2))
    return solve_scenarios(scenarios, deadline=deadline, one_port=one_port)


def _solve_orders(
    platform: StarPlatform,
    order_rule: str,
    order: Sequence[str] | None,
    return_order: Sequence[str] | None,
) -> tuple[list[str], list[str]]:
    if order is not None:
        sigma1 = list(order)
        sigma2 = list(return_order) if return_order is not None else list(sigma1)
        return sigma1, sigma2
    if return_order is not None:
        raise ScheduleError("return_order requires an explicit order")
    return heuristic_orders(platform, order_rule)


def compare(
    platform: StarPlatform | Sequence[StarPlatform],
    names: Iterable[str] = ("INC_C", "INC_W", "LIFO"),
    *,
    one_port: bool = True,
    deadline: float = 1.0,
) -> dict[str, HeuristicResult] | list[dict[str, HeuristicResult]]:
    """Evaluate named heuristics — scalar or batched, either port model.

    Dispatch table (all four cells return identical numbers for the same
    platform; only the batching changes):

    ==========  =========================  ====================================
    input       ``one_port=True``          ``one_port=False``
    ==========  =========================  ====================================
    platform    ``compare_heuristics``     ``compare_heuristics_two_port``
    sequence    ``compare_heuristics_      ``compare_heuristics_two_port_
                batch``                    batch``
    ==========  =========================  ====================================
    """
    if isinstance(platform, StarPlatform):
        if one_port:
            return compare_heuristics(platform, names, deadline=deadline)
        return compare_heuristics_two_port(platform, names, deadline=deadline)
    platforms = list(platform)
    if one_port:
        return compare_heuristics_batch(platforms, names, deadline=deadline)
    return compare_heuristics_two_port_batch(platforms, names, deadline=deadline)


def compare_heuristics_two_port(
    platform: StarPlatform,
    names: Iterable[str] = ("INC_C", "INC_W", "LIFO"),
    deadline: float = 1.0,
) -> dict[str, HeuristicResult]:
    """Two-port twin of :func:`repro.core.heuristics.compare_heuristics`.

    Same heuristic names, same send orders (``OPT_FIFO`` keeps the
    ``z``-mirrored Theorem 1 rule, which is also the optimal two-port FIFO
    order per the companion report); the loads come from the two-port
    scenario LP (no coupling constraint).  ``LIFO`` is LP-backed here —
    the one-port closed form does not apply without constraint (2b).
    """
    results: dict[str, HeuristicResult] = {}
    for name in _validated(names):
        sigma1, sigma2 = heuristic_orders(platform, name, one_port=False)
        solution = solve_scenario(
            platform, sigma1=sigma1, sigma2=sigma2, deadline=deadline, one_port=False
        )
        results[name] = HeuristicResult(
            name=name, schedule=solution.schedule, throughput=solution.throughput
        )
    return results


def compare_heuristics_two_port_batch(
    platforms: Sequence[StarPlatform],
    names: Iterable[str] = ("INC_C", "INC_W", "LIFO"),
    deadline: float = 1.0,
) -> list[dict[str, HeuristicResult]]:
    """Batched two-port comparison: one stacked kernel call for the chunk.

    Matches ``[compare_heuristics_two_port(p, names) for p in platforms]``
    exactly — the batched two-port kernel is bit-identical to the scalar
    fast path and the wrapping is shared.
    """
    names = _validated(names)
    scenarios: list[tuple[StarPlatform, Sequence[str], Sequence[str]]] = []
    slots: list[tuple[int, str]] = []
    for index, platform in enumerate(platforms):
        for name in names:
            sigma1, sigma2 = heuristic_orders(platform, name, one_port=False)
            scenarios.append((platform, sigma1, sigma2))
            slots.append((index, name))
    solutions = solve_scenarios(scenarios, deadline=deadline, one_port=False)
    results: list[dict[str, HeuristicResult]] = [{} for _ in platforms]
    for (index, name), solution in zip(slots, solutions):
        results[index][name] = HeuristicResult(
            name=name, schedule=solution.schedule, throughput=solution.throughput
        )
    return results


def _validated(names: Iterable[str]) -> tuple[str, ...]:
    names = tuple(names)
    for name in names:
        if name not in HEURISTICS:
            raise ScheduleError(
                f"unknown heuristic {name!r}; available: {sorted(HEURISTICS)}"
            )
    return names
