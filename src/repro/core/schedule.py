"""Schedule model for divisible-load schedules with return messages.

A schedule (Section 2.2 of the report) is fully described by:

* the permutation ``sigma1`` giving the order of the initial messages,
* the permutation ``sigma2`` giving the order of the return messages,
* the load ``alpha_i`` assigned to each worker,
* the idle time ``x_i`` a worker may spend between the end of its
  computation and the start of its return transfer.

Following the simplifications justified in the paper, initial messages are
sent back-to-back starting at time 0 in ``sigma1`` order, and return messages
are received back-to-back finishing exactly at the deadline ``T`` in
``sigma2`` order; the idle times are then *derived* quantities.  This module
provides:

* :class:`Schedule` — the immutable description, with the derived event
  timeline, idle times, throughput and makespan;
* feasibility verification under the one-port and two-port models;
* helpers to rescale a unit-deadline schedule to a concrete total load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.platform import StarPlatform
from repro.exceptions import InfeasibleScheduleError, ScheduleError

__all__ = ["WorkerTimeline", "Schedule", "fifo_schedule", "lifo_schedule"]


_DEFAULT_TOL = 1e-7


@dataclass(frozen=True)
class WorkerTimeline:
    """Timeline of a single worker inside a schedule.

    All times are absolute (same clock as the master).  ``idle`` is the gap
    between the end of the computation and the beginning of the return
    transfer (the ``x_i`` of the paper); it is negative when the schedule is
    infeasible, which the verifier reports.
    """

    worker: str
    load: float
    send_start: float
    send_end: float
    compute_start: float
    compute_end: float
    return_start: float
    return_end: float

    @property
    def idle(self) -> float:
        """Idle time ``x_i`` between computation end and return start."""
        return self.return_start - self.compute_end

    @property
    def busy_time(self) -> float:
        """Total time the worker spends receiving, computing or sending."""
        return (
            (self.send_end - self.send_start)
            + (self.compute_end - self.compute_start)
            + (self.return_end - self.return_start)
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly view used by traces and experiment reports."""
        return {
            "worker": self.worker,
            "load": self.load,
            "send_start": self.send_start,
            "send_end": self.send_end,
            "compute_start": self.compute_start,
            "compute_end": self.compute_end,
            "return_start": self.return_start,
            "return_end": self.return_end,
            "idle": self.idle,
        }


class Schedule:
    """A divisible-load schedule with return messages.

    Parameters
    ----------
    platform:
        The star platform the schedule targets.
    loads:
        Mapping worker name → assigned load ``alpha_i`` (non-negative).
        Workers absent from the mapping receive zero load.
    sigma1:
        Order of the initial messages (worker names).  Every worker with a
        positive load must appear exactly once.
    sigma2:
        Order of the return messages; must be a permutation of ``sigma1``.
        Defaults to ``sigma1`` (FIFO).
    deadline:
        The time horizon ``T``; the canonical analysis uses ``T = 1``.
    """

    def __init__(
        self,
        platform: StarPlatform,
        loads: Mapping[str, float],
        sigma1: Sequence[str],
        sigma2: Sequence[str] | None = None,
        deadline: float = 1.0,
    ) -> None:
        if deadline <= 0:
            raise ScheduleError("deadline must be positive")
        sigma1 = tuple(sigma1)
        sigma2 = tuple(sigma2) if sigma2 is not None else sigma1
        if len(set(sigma1)) != len(sigma1):
            raise ScheduleError("sigma1 contains duplicated workers")
        if sorted(sigma1) != sorted(sigma2):
            raise ScheduleError("sigma2 must be a permutation of sigma1")
        unknown = [name for name in sigma1 if name not in platform]
        if unknown:
            raise ScheduleError(f"unknown workers in sigma1: {unknown}")
        stray = [name for name in loads if name not in sigma1]
        if stray:
            raise ScheduleError(f"loads assigned to workers absent from sigma1: {sorted(stray)}")
        cleaned: dict[str, float] = {}
        for name in sigma1:
            value = float(loads.get(name, 0.0))
            if value < 0:
                raise ScheduleError(f"negative load for worker {name!r}: {value}")
            cleaned[name] = value

        self.platform = platform
        self.deadline = float(deadline)
        self.sigma1 = sigma1
        self.sigma2 = sigma2
        self._loads = cleaned

    @classmethod
    def from_trusted(
        cls,
        platform: StarPlatform,
        loads: dict[str, float],
        sigma1: tuple[str, ...],
        sigma2: tuple[str, ...],
        deadline: float,
    ) -> "Schedule":
        """Build a schedule from already-validated components, skipping checks.

        For internal hot paths (the scenario kernels) whose inputs are
        validated upstream: ``sigma1``/``sigma2`` must be duplicate-free
        permutations of each other over known workers, and ``loads`` must
        map *every* ``sigma1`` worker to a non-negative float.  The loads
        dict is adopted without copying.
        """
        schedule = object.__new__(cls)
        schedule.platform = platform
        schedule.deadline = float(deadline)
        schedule.sigma1 = sigma1
        schedule.sigma2 = sigma2
        schedule._loads = loads
        return schedule

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def loads(self) -> dict[str, float]:
        """Copy of the load mapping (every worker of ``sigma1`` present)."""
        return dict(self._loads)

    def load(self, worker: str) -> float:
        """Load assigned to ``worker`` (0.0 when not scheduled)."""
        return self._loads.get(worker, 0.0)

    @property
    def total_load(self) -> float:
        """Total number of load units processed, ``sum alpha_i``."""
        return sum(self._loads.values())

    @property
    def throughput(self) -> float:
        """Load units processed per unit of time, ``total_load / deadline``."""
        return self.total_load / self.deadline

    @property
    def participants(self) -> list[str]:
        """Workers with a strictly positive load, in ``sigma1`` order."""
        return [name for name in self.sigma1 if self._loads[name] > 0]

    @property
    def is_fifo(self) -> bool:
        """``True`` when return order equals send order on participants."""
        active1 = [n for n in self.sigma1 if self._loads[n] > 0]
        active2 = [n for n in self.sigma2 if self._loads[n] > 0]
        return active1 == active2

    @property
    def is_lifo(self) -> bool:
        """``True`` when return order is the reverse of the send order."""
        active1 = [n for n in self.sigma1 if self._loads[n] > 0]
        active2 = [n for n in self.sigma2 if self._loads[n] > 0]
        return active1 == list(reversed(active2))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "FIFO" if self.is_fifo else ("LIFO" if self.is_lifo else "general")
        return (
            f"Schedule({kind}, participants={len(self.participants)}, "
            f"total_load={self.total_load:.6g}, deadline={self.deadline:.6g})"
        )

    # ------------------------------------------------------------------ #
    # timelines
    # ------------------------------------------------------------------ #
    def timelines(self) -> dict[str, WorkerTimeline]:
        """Compute the per-worker event timeline.

        Initial messages are sent consecutively from time 0 in ``sigma1``
        order; return messages are received consecutively and finish exactly
        at the deadline, in ``sigma2`` order.  Workers with zero load get a
        degenerate (zero-length) timeline anchored at their slot.
        """
        timelines: dict[str, WorkerTimeline] = {}

        send_start: dict[str, float] = {}
        send_end: dict[str, float] = {}
        clock = 0.0
        for name in self.sigma1:
            load = self._loads[name]
            worker = self.platform[name]
            send_start[name] = clock
            clock += load * worker.c
            send_end[name] = clock

        return_start: dict[str, float] = {}
        return_end: dict[str, float] = {}
        clock = self.deadline
        for name in reversed(self.sigma2):
            load = self._loads[name]
            worker = self.platform[name]
            return_end[name] = clock
            clock -= load * worker.d
            return_start[name] = clock

        for name in self.sigma1:
            load = self._loads[name]
            worker = self.platform[name]
            compute_start = send_end[name]
            compute_end = compute_start + load * worker.w
            timelines[name] = WorkerTimeline(
                worker=name,
                load=load,
                send_start=send_start[name],
                send_end=send_end[name],
                compute_start=compute_start,
                compute_end=compute_end,
                return_start=return_start[name],
                return_end=return_end[name],
            )
        return timelines

    def idle_times(self) -> dict[str, float]:
        """Per-worker idle time ``x_i`` (may be negative if infeasible)."""
        return {name: tl.idle for name, tl in self.timelines().items()}

    def makespan(self) -> float:
        """Makespan of the *eager* execution of this schedule.

        The eager execution sends initial messages back-to-back from time 0,
        then receives return messages in ``sigma2`` order as early as the
        one-port model and the computations allow.  This is how the simulated
        (and the paper's real MPI) runs behave, and is the natural objective
        when a fixed total load must be completed as fast as possible.
        """
        timelines = self.timelines()
        send_total = sum(self._loads[n] * self.platform[n].c for n in self.sigma1)
        clock = send_total
        for name in self.sigma2:
            load = self._loads[name]
            if load == 0:
                continue
            worker = self.platform[name]
            compute_end = timelines[name].compute_end
            clock = max(clock, compute_end) + load * worker.d
        return clock

    # ------------------------------------------------------------------ #
    # feasibility
    # ------------------------------------------------------------------ #
    def verify(self, one_port: bool = True, tol: float = _DEFAULT_TOL) -> None:
        """Raise :class:`InfeasibleScheduleError` if the schedule is invalid.

        Checks, in order: non-negative idle times (each worker finishes
        computing before its return slot), the deadline, and — under the
        one-port model — that the master is never engaged in two
        communications at once (which, with the back-to-back send /
        back-to-back return convention, reduces to the first return starting
        no earlier than the last send ends).
        """
        problems = self.violations(one_port=one_port, tol=tol)
        if problems:
            raise InfeasibleScheduleError("; ".join(problems))

    def is_feasible(self, one_port: bool = True, tol: float = _DEFAULT_TOL) -> bool:
        """``True`` when :meth:`verify` would not raise."""
        return not self.violations(one_port=one_port, tol=tol)

    def violations(self, one_port: bool = True, tol: float = _DEFAULT_TOL) -> list[str]:
        """Return a list of human-readable constraint violations."""
        problems: list[str] = []
        timelines = self.timelines()

        for name, tl in timelines.items():
            if self._loads[name] == 0:
                continue
            if tl.idle < -tol:
                problems.append(
                    f"worker {name}: computation ends at {tl.compute_end:.6g} but its "
                    f"return slot starts at {tl.return_start:.6g}"
                )
            if tl.return_end > self.deadline + tol:
                problems.append(
                    f"worker {name}: return ends at {tl.return_end:.6g} after the deadline"
                )
            if tl.send_start < -tol:
                problems.append(f"worker {name}: send starts before time 0")

        # Master port occupancy. Sends are disjoint by construction and
        # returns are disjoint by construction; under the one-port model they
        # must additionally not overlap each other.
        if one_port:
            active = [n for n in self.sigma1 if self._loads[n] > 0]
            if active:
                last_send_end = max(timelines[n].send_end for n in active)
                first_return_start = min(timelines[n].return_start for n in active)
                if first_return_start < last_send_end - tol:
                    problems.append(
                        "one-port violation: first return starts at "
                        f"{first_return_start:.6g} before the last send ends at "
                        f"{last_send_end:.6g}"
                    )
        return problems

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def scaled_to_total_load(self, total_load: float) -> "Schedule":
        """Return the same schedule rescaled to process ``total_load`` units.

        Under the linear cost model a schedule for deadline 1 and throughput
        ``rho`` becomes a schedule for ``total_load`` units with makespan
        ``total_load / rho`` by multiplying every load by
        ``total_load / total_load_of_self``.
        """
        if total_load < 0:
            raise ScheduleError("total_load must be non-negative")
        current = self.total_load
        if current <= 0:
            raise ScheduleError("cannot rescale a schedule with zero total load")
        factor = total_load / current
        return Schedule(
            platform=self.platform,
            loads={name: load * factor for name, load in self._loads.items()},
            sigma1=self.sigma1,
            sigma2=self.sigma2,
            deadline=self.deadline * factor,
        )

    def restricted_to_participants(self) -> "Schedule":
        """Return a copy keeping only the workers with positive load."""
        active1 = [n for n in self.sigma1 if self._loads[n] > 0]
        active2 = [n for n in self.sigma2 if self._loads[n] > 0]
        if not active1:
            raise ScheduleError("schedule has no participating worker")
        return Schedule(
            platform=self.platform,
            loads={n: self._loads[n] for n in active1},
            sigma1=active1,
            sigma2=active2,
            deadline=self.deadline,
        )

    def with_loads(self, loads: Mapping[str, float]) -> "Schedule":
        """Return a copy with the same orders but different loads."""
        return Schedule(
            platform=self.platform,
            loads=loads,
            sigma1=self.sigma1,
            sigma2=self.sigma2,
            deadline=self.deadline,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly summary (used by traces and experiment reports)."""
        return {
            "deadline": self.deadline,
            "sigma1": list(self.sigma1),
            "sigma2": list(self.sigma2),
            "loads": dict(self._loads),
            "total_load": self.total_load,
            "participants": self.participants,
            "timelines": {name: tl.as_dict() for name, tl in self.timelines().items()},
        }


def fifo_schedule(
    platform: StarPlatform,
    loads: Mapping[str, float],
    order: Sequence[str],
    deadline: float = 1.0,
) -> Schedule:
    """Build a FIFO schedule (``sigma2 = sigma1 = order``)."""
    return Schedule(platform, loads, sigma1=order, sigma2=order, deadline=deadline)


def lifo_schedule(
    platform: StarPlatform,
    loads: Mapping[str, float],
    order: Sequence[str],
    deadline: float = 1.0,
) -> Schedule:
    """Build a LIFO schedule (``sigma2`` is the reverse of ``order``)."""
    return Schedule(
        platform,
        loads,
        sigma1=order,
        sigma2=list(reversed(list(order))),
        deadline=deadline,
    )
