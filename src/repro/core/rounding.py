"""Integer rounding of rational load assignments (Section 5 policy).

The scenario LPs produce rational loads, but the experiments dispatch an
integer number of matrix products to each worker.  The paper's policy is:

    "We first round down every value to the immediate lower integer, and
     then we distribute the K remaining tasks to the first K workers of the
     schedule in the order of the sending permutation, by giving one more
     matrix to process to each of these workers."

This module implements exactly that policy, plus the small amount of
book-keeping needed to apply it to a :class:`~repro.core.schedule.Schedule`
whose fractional loads have been scaled to a target total ``M``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError

__all__ = ["round_values", "round_loads", "integer_load_schedule"]


def round_loads(
    loads: Mapping[str, float],
    sigma1: Sequence[str],
    total: int,
    tol: float = 1e-6,
    validate: bool = True,
) -> dict[str, int]:
    """Round fractional ``loads`` to integers summing exactly to ``total``.

    Parameters
    ----------
    loads:
        Fractional loads, expected to sum to ``total`` (up to ``tol``); if
        they do not, they are first rescaled proportionally, which is how a
        unit-deadline schedule is applied to a concrete workload.
    sigma1:
        Sending permutation; the ``K`` leftover units go to its first ``K``
        workers, exactly as in the paper's example.
    total:
        Total integer number of load units to distribute.
    validate:
        Check that ``loads`` is consistent with ``sigma1`` (default).
        Internal callers whose inputs come from a :class:`Schedule` — whose
        invariants already guarantee consistency — skip the check; the
        rounded values are identical either way.

    Returns
    -------
    dict
        Worker name → integer load, summing to ``total``.
    """
    if total < 0:
        raise ScheduleError("total must be non-negative")
    sigma1 = list(sigma1)
    if not sigma1:
        raise ScheduleError("sigma1 must not be empty")
    if validate:
        unknown = set(loads) - set(sigma1)
        if unknown:
            raise ScheduleError(f"loads reference workers absent from sigma1: {sorted(unknown)}")
        if any(value < 0 for value in loads.values()):
            raise ScheduleError("loads must be non-negative")

    values = [loads.get(name, 0.0) for name in sigma1]
    return dict(zip(sigma1, round_values(values, total, tol=tol)))


def round_values(values: Sequence[float], total: int, tol: float = 1e-6) -> list[int]:
    """Positional core of :func:`round_loads`: round a load *vector*.

    ``values`` are the fractional loads in sending-permutation order; the
    returned integers sum to ``total`` and follow exactly the same policy
    (proportional rescale, floor, leftovers to the front of the
    permutation).  This is the entry point for hot paths that already hold
    the loads as a vector rather than a mapping.
    """
    if total < 0:
        raise ScheduleError("total must be non-negative")
    if not values:
        raise ScheduleError("sigma1 must not be empty")
    if total == 0:
        return [0] * len(values)
    current_total = sum(values)
    if current_total <= 0:
        raise ScheduleError("cannot round an all-zero load assignment to a positive total")

    if not math.isclose(current_total, total, rel_tol=tol, abs_tol=tol):
        scale = total / current_total
        values = [value * scale for value in values]

    # Degenerate inputs (e.g. a vanishingly small total load) can overflow the
    # rescaling; fall back to an even distribution through the leftover loop.
    if any(not math.isfinite(value) for value in values):
        values = [0.0] * len(values)

    floor = math.floor
    counts = [int(floor(value + tol)) for value in values]
    leftover = total - sum(counts)
    if leftover < 0:
        # Floating-point slack pushed a floor one unit too high; shave the
        # excess from the end of the permutation (largest indices first).
        for index in range(len(counts) - 1, -1, -1):
            while leftover < 0 and counts[index] > 0:
                counts[index] -= 1
                leftover += 1
    # Paper policy: one extra unit to each of the first `leftover` workers of
    # the sending permutation.
    index = 0
    while leftover > 0:
        counts[index % len(counts)] += 1
        leftover -= 1
        index += 1
    return counts


def integer_load_schedule(schedule: Schedule, total: int) -> Schedule:
    """Return ``schedule`` with its loads rounded to integers summing to ``total``.

    The schedule is first rescaled so its fractional loads sum to ``total``
    (keeping proportions), then rounded with :func:`round_loads`; the
    deadline of the returned schedule is the eager makespan of the rounded
    loads, i.e. the completion time a simulator or a real run would achieve.
    """
    if total <= 0:
        raise ScheduleError("total must be positive")
    rounded = round_loads(schedule.loads, schedule.sigma1, total)
    candidate = Schedule(
        platform=schedule.platform,
        loads={name: float(value) for name, value in rounded.items()},
        sigma1=schedule.sigma1,
        sigma2=schedule.sigma2,
        deadline=schedule.deadline,
    )
    makespan = candidate.makespan()
    return Schedule(
        platform=schedule.platform,
        loads={name: float(value) for name, value in rounded.items()},
        sigma1=schedule.sigma1,
        sigma2=schedule.sigma2,
        deadline=makespan if makespan > 0 else schedule.deadline,
    )
