"""Integer rounding of rational load assignments (Section 5 policy).

The scenario LPs produce rational loads, but the experiments dispatch an
integer number of matrix products to each worker.  The paper's policy is:

    "We first round down every value to the immediate lower integer, and
     then we distribute the K remaining tasks to the first K workers of the
     schedule in the order of the sending permutation, by giving one more
     matrix to process to each of these workers."

This module implements exactly that policy, plus the small amount of
book-keeping needed to apply it to a :class:`~repro.core.schedule.Schedule`
whose fractional loads have been scaled to a target total ``M``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError

__all__ = ["round_loads", "integer_load_schedule"]


def round_loads(
    loads: Mapping[str, float],
    sigma1: Sequence[str],
    total: int,
    tol: float = 1e-6,
) -> dict[str, int]:
    """Round fractional ``loads`` to integers summing exactly to ``total``.

    Parameters
    ----------
    loads:
        Fractional loads, expected to sum to ``total`` (up to ``tol``); if
        they do not, they are first rescaled proportionally, which is how a
        unit-deadline schedule is applied to a concrete workload.
    sigma1:
        Sending permutation; the ``K`` leftover units go to its first ``K``
        workers, exactly as in the paper's example.
    total:
        Total integer number of load units to distribute.

    Returns
    -------
    dict
        Worker name → integer load, summing to ``total``.
    """
    if total < 0:
        raise ScheduleError("total must be non-negative")
    sigma1 = list(sigma1)
    if not sigma1:
        raise ScheduleError("sigma1 must not be empty")
    unknown = set(loads) - set(sigma1)
    if unknown:
        raise ScheduleError(f"loads reference workers absent from sigma1: {sorted(unknown)}")
    if any(value < 0 for value in loads.values()):
        raise ScheduleError("loads must be non-negative")

    current_total = sum(loads.get(name, 0.0) for name in sigma1)
    if total == 0:
        return {name: 0 for name in sigma1}
    if current_total <= 0:
        raise ScheduleError("cannot round an all-zero load assignment to a positive total")

    if not math.isclose(current_total, total, rel_tol=tol, abs_tol=tol):
        scale = total / current_total
        scaled = {name: loads.get(name, 0.0) * scale for name in sigma1}
    else:
        scaled = {name: loads.get(name, 0.0) for name in sigma1}

    # Degenerate inputs (e.g. a vanishingly small total load) can overflow the
    # rescaling; fall back to an even distribution through the leftover loop.
    if any(not math.isfinite(value) for value in scaled.values()):
        scaled = {name: 0.0 for name in sigma1}

    floored = {name: int(math.floor(value + tol)) for name, value in scaled.items()}
    leftover = total - sum(floored.values())
    if leftover < 0:
        # Floating-point slack pushed a floor one unit too high; shave the
        # excess from the end of the permutation (largest indices first).
        for name in reversed(sigma1):
            while leftover < 0 and floored[name] > 0:
                floored[name] -= 1
                leftover += 1
    # Paper policy: one extra unit to each of the first `leftover` workers of
    # the sending permutation.
    index = 0
    while leftover > 0:
        floored[sigma1[index % len(sigma1)]] += 1
        leftover -= 1
        index += 1
    return floored


def integer_load_schedule(schedule: Schedule, total: int) -> Schedule:
    """Return ``schedule`` with its loads rounded to integers summing to ``total``.

    The schedule is first rescaled so its fractional loads sum to ``total``
    (keeping proportions), then rounded with :func:`round_loads`; the
    deadline of the returned schedule is the eager makespan of the rounded
    loads, i.e. the completion time a simulator or a real run would achieve.
    """
    if total <= 0:
        raise ScheduleError("total must be positive")
    rounded = round_loads(schedule.loads, schedule.sigma1, total)
    candidate = Schedule(
        platform=schedule.platform,
        loads={name: float(value) for name, value in rounded.items()},
        sigma1=schedule.sigma1,
        sigma2=schedule.sigma2,
        deadline=schedule.deadline,
    )
    makespan = candidate.makespan()
    return Schedule(
        platform=schedule.platform,
        loads={name: float(value) for name, value in rounded.items()},
        sigma1=schedule.sigma1,
        sigma2=schedule.sigma2,
        deadline=makespan if makespan > 0 else schedule.deadline,
    )
