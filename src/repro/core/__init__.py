"""Core algorithms of the reproduction.

This package contains the paper's primary contribution: the platform and
schedule models, the scenario linear programs (system (2)), the optimal
one-port FIFO algorithm (Theorem 1 / Proposition 1), the bus closed forms
(Theorem 2), the LIFO and two-port baselines, the heuristics compared in the
experiments, and the brute-force verifier used by the test-suite.
"""

from __future__ import annotations

from repro.core.analysis import (
    StrategyComparison,
    fifo_lifo_crossover,
    is_port_saturated,
    port_utilisation,
    strategy_comparison,
)
from repro.core.bruteforce import (
    BruteForceResult,
    best_fifo_by_enumeration,
    best_lifo_by_enumeration,
    best_schedule_by_enumeration,
)
from repro.core.bus import (
    BusFifoSolution,
    optimal_bus_fifo_schedule,
    optimal_bus_throughput,
    two_port_bus_loads,
    two_port_bus_throughput,
    u_sequence,
)
from repro.core.dispatch import (
    compare,
    compare_heuristics_two_port,
    compare_heuristics_two_port_batch,
    heuristic_orders,
    solve,
)
from repro.core.fifo import (
    FifoSolution,
    fifo_schedule_for_order,
    optimal_fifo_order,
    optimal_fifo_schedule,
)
from repro.core.heuristics import (
    HEURISTICS,
    HeuristicResult,
    compare_heuristics,
    compare_heuristics_batch,
    dec_c,
    fifo_with_order,
    inc_c,
    inc_w,
    lifo,
    optimal_fifo,
    platform_order_fifo,
)
from repro.core.lifo import (
    LifoSolution,
    lifo_closed_form_loads,
    lifo_schedule_for_order,
    optimal_lifo_order,
    optimal_lifo_schedule,
)
from repro.core.fast_scenario import (
    FastScenarioResult,
    scenario_arrays,
    solve_scenario_arrays,
    solve_scenario_fast,
)
from repro.core.linear_program import (
    ScenarioSolution,
    build_scenario_program,
    solve_fifo_scenario,
    solve_lifo_scenario,
    solve_scenario,
    solve_scenarios,
)
from repro.core.makespan import makespan_for_load, predicted_makespan, schedule_for_total_load
from repro.core.platform import StarPlatform, Worker, bus_platform, homogeneous_platform
from repro.core.rounding import integer_load_schedule, round_loads
from repro.core.schedule import Schedule, WorkerTimeline, fifo_schedule, lifo_schedule
from repro.core.twoport import (
    TwoPortSolution,
    optimal_two_port_fifo_schedule,
    optimal_two_port_lifo_schedule,
    two_port_fifo_for_order,
)
from repro.core.batch_twoport import (
    optimal_two_port_fifo_batch,
    optimal_two_port_lifo_batch,
    solve_two_port_batch,
    solve_two_port_scenarios,
    two_port_arrays_batch,
)

__all__ = [
    # dispatching front door (PR 10) — scalar/batch + one-/two-port routing
    "solve",
    "compare",
    "heuristic_orders",
    "compare_heuristics_two_port",
    "compare_heuristics_two_port_batch",
    # platform & schedule models
    "Worker",
    "StarPlatform",
    "bus_platform",
    "homogeneous_platform",
    "Schedule",
    "WorkerTimeline",
    "fifo_schedule",
    "lifo_schedule",
    # scenario LP
    "ScenarioSolution",
    "build_scenario_program",
    "solve_scenario",
    "solve_scenarios",
    "FastScenarioResult",
    "scenario_arrays",
    "solve_scenario_arrays",
    "solve_scenario_fast",
    "solve_fifo_scenario",
    "solve_lifo_scenario",
    # optimal FIFO (Theorem 1)
    "FifoSolution",
    "optimal_fifo_order",
    "optimal_fifo_schedule",
    "fifo_schedule_for_order",
    # optimal LIFO baseline
    "LifoSolution",
    "optimal_lifo_order",
    "optimal_lifo_schedule",
    "lifo_closed_form_loads",
    "lifo_schedule_for_order",
    # bus closed forms (Theorem 2)
    "BusFifoSolution",
    "u_sequence",
    "two_port_bus_throughput",
    "two_port_bus_loads",
    "optimal_bus_throughput",
    "optimal_bus_fifo_schedule",
    # two-port baselines
    "TwoPortSolution",
    "optimal_two_port_fifo_schedule",
    "optimal_two_port_lifo_schedule",
    "two_port_fifo_for_order",
    # batched two-port kernel
    "two_port_arrays_batch",
    "solve_two_port_batch",
    "solve_two_port_scenarios",
    "optimal_two_port_fifo_batch",
    "optimal_two_port_lifo_batch",
    # heuristics
    "HeuristicResult",
    "HEURISTICS",
    "compare_heuristics",
    "compare_heuristics_batch",
    "inc_c",
    "inc_w",
    "dec_c",
    "lifo",
    "optimal_fifo",
    "platform_order_fifo",
    "fifo_with_order",
    # brute force
    "BruteForceResult",
    "best_fifo_by_enumeration",
    "best_lifo_by_enumeration",
    "best_schedule_by_enumeration",
    # regime analysis
    "StrategyComparison",
    "strategy_comparison",
    "port_utilisation",
    "is_port_saturated",
    "fifo_lifo_crossover",
    # rounding & makespan
    "round_loads",
    "integer_load_schedule",
    "makespan_for_load",
    "schedule_for_total_load",
    "predicted_makespan",
]
