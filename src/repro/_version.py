"""Single source of truth for the package version."""

from __future__ import annotations

__all__ = ["__version__"]

__version__ = "1.0.0"
