"""repro — reproduction of one-port FIFO divisible-load scheduling.

This package reproduces *"FIFO scheduling of divisible loads with return
messages under the one-port model"* (Beaumont, Marchal, Rehn, Robert,
INRIA RR-5738, 2005 / IPDPS 2006):

* :mod:`repro.core` — platform/schedule models, scenario linear programs,
  the optimal one-port FIFO algorithm (Theorem 1), the bus closed forms
  (Theorem 2), LIFO and two-port baselines, heuristics and brute force;
* :mod:`repro.lp` — the linear-programming substrate (exact rational simplex
  and a SciPy/HiGHS backend);
* :mod:`repro.simulation` — a discrete-event master-worker cluster simulator
  enforcing the one-port model (the stand-in for the paper's MPI testbed);
* :mod:`repro.runtime` — a small message-passing façade and the
  matrix-product master-worker application;
* :mod:`repro.workloads` — random platform campaigns and the matrix cost
  model of Section 5;
* :mod:`repro.experiments` — one module per figure of the evaluation
  (Figures 8–14), plus reporting helpers.

The most common entry points are re-exported at the top level, including
the dispatching front door (:func:`repro.solve` / :func:`repro.compare`)
that routes scalar inputs to the scalar kernels and sequences to the
batched kernels, under either port model::

    from repro import StarPlatform, Worker, solve

    platform = StarPlatform([
        Worker("P1", c=1.0, w=5.0, d=0.5),
        Worker("P2", c=2.0, w=3.0, d=1.0),
    ])
    solution = solve(platform, order_rule="OPT_FIFO")
    print(solution.throughput, solution.schedule.participants)

For the cached, batched resource-selection service on top of these
kernels see :mod:`repro.api` (``QueryService``, ``scenarios serve``).
"""

from __future__ import annotations

from repro._version import __version__
from repro.core import (
    HEURISTICS,
    BusFifoSolution,
    FifoSolution,
    HeuristicResult,
    LifoSolution,
    ScenarioSolution,
    Schedule,
    StarPlatform,
    TwoPortSolution,
    Worker,
    WorkerTimeline,
    best_fifo_by_enumeration,
    best_lifo_by_enumeration,
    best_schedule_by_enumeration,
    bus_platform,
    compare,
    compare_heuristics,
    compare_heuristics_batch,
    compare_heuristics_two_port,
    compare_heuristics_two_port_batch,
    fifo_schedule,
    fifo_schedule_for_order,
    homogeneous_platform,
    integer_load_schedule,
    lifo_closed_form_loads,
    lifo_schedule,
    makespan_for_load,
    optimal_bus_fifo_schedule,
    optimal_bus_throughput,
    optimal_fifo_order,
    optimal_fifo_schedule,
    optimal_lifo_order,
    optimal_lifo_schedule,
    optimal_two_port_fifo_schedule,
    optimal_two_port_lifo_schedule,
    predicted_makespan,
    round_loads,
    schedule_for_total_load,
    solve,
    solve_fifo_scenario,
    solve_lifo_scenario,
    solve_scenario,
    solve_scenarios,
    two_port_bus_loads,
    two_port_bus_throughput,
    u_sequence,
)
from repro.exceptions import (
    ExperimentError,
    InfeasibleProblemError,
    InfeasibleScheduleError,
    PlatformError,
    ReproError,
    ScheduleError,
    SimulationError,
    SolverError,
    UnboundedProblemError,
)

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "PlatformError",
    "ScheduleError",
    "InfeasibleScheduleError",
    "SolverError",
    "UnboundedProblemError",
    "InfeasibleProblemError",
    "SimulationError",
    "ExperimentError",
    # platform & schedules
    "Worker",
    "StarPlatform",
    "bus_platform",
    "homogeneous_platform",
    "Schedule",
    "WorkerTimeline",
    "fifo_schedule",
    "lifo_schedule",
    # dispatching front door (scalar/batch + one-/two-port routing)
    "solve",
    "compare",
    # scenario solving
    "ScenarioSolution",
    "solve_scenario",
    "solve_scenarios",
    "solve_fifo_scenario",
    "solve_lifo_scenario",
    # optimal algorithms and baselines
    "FifoSolution",
    "optimal_fifo_order",
    "optimal_fifo_schedule",
    "fifo_schedule_for_order",
    "LifoSolution",
    "optimal_lifo_order",
    "optimal_lifo_schedule",
    "lifo_closed_form_loads",
    "BusFifoSolution",
    "u_sequence",
    "two_port_bus_throughput",
    "two_port_bus_loads",
    "optimal_bus_throughput",
    "optimal_bus_fifo_schedule",
    "TwoPortSolution",
    "optimal_two_port_fifo_schedule",
    "optimal_two_port_lifo_schedule",
    # heuristics & verification
    "HeuristicResult",
    "HEURISTICS",
    "compare_heuristics",
    "compare_heuristics_batch",
    "compare_heuristics_two_port",
    "compare_heuristics_two_port_batch",
    "best_fifo_by_enumeration",
    "best_lifo_by_enumeration",
    "best_schedule_by_enumeration",
    # rounding & makespan view
    "round_loads",
    "integer_load_schedule",
    "makespan_for_load",
    "schedule_for_total_load",
    "predicted_makespan",
]
