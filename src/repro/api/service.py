"""The query service: cached, batched resource-selection answers.

:class:`QueryService` answers the paper's decision problem — *which
workers should participate, in what order, and what makespan should we
expect* — through three layers:

1. the :class:`~repro.api.cache.AnswerCache` (canonical content-hash
   keys, LRU + optional disk tier);
2. the :class:`~repro.api.funnel.BatchingFunnel` (concurrent single
   queries coalesce into one stacked kernel call);
3. the batched scenario kernels themselves
   (:func:`repro.core.linear_program.solve_scenarios`, both port models).

Bit-identity contract: for every heuristic the answer's loads, orders,
throughput and predicted makespan equal the scalar reference path —
``compare_heuristics`` / ``optimal_fifo_schedule`` under one-port,
``two_port_fifo_for_order`` / ``optimal_two_port_{fifo,lifo}_schedule``
under two-port — float for float.  The service is a pure
latency/throughput layer; tests pin this, including through the HTTP
JSON round trip.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import replace
from pathlib import Path
from typing import Mapping, Sequence

from repro.api.cache import AnswerCache, query_key
from repro.api.funnel import BatchingFunnel
from repro.api.schemas import DEFAULT_HEURISTICS, Answer, HeuristicAnswer, Query
from repro.core.dispatch import heuristic_orders
from repro.core.heuristics import HEURISTICS, HeuristicResult
from repro.core.linear_program import solve_scenarios
from repro.core.platform import StarPlatform
from repro.obs import active

__all__ = ["QueryService"]


class QueryService:
    """Thread-safe front door answering resource-selection queries.

    Parameters
    ----------
    cache_size:
        In-memory LRU capacity (answers are small; a few thousand fit in
        single-digit MB).
    cache_dir:
        Optional directory for the persistent answer tier — a restarted
        service reuses its predecessor's answers.
    window:
        Micro-batch latency budget in seconds.  ``0`` solves every miss
        immediately; a couple of milliseconds lets concurrent misses share
        one stacked kernel call.
    max_batch:
        Flush the funnel early once this many queries are waiting.
    """

    def __init__(
        self,
        *,
        cache_size: int = 1024,
        cache_dir: str | Path | None = None,
        window: float = 0.0,
        max_batch: int = 64,
    ) -> None:
        self.cache = AnswerCache(max_entries=cache_size, directory=cache_dir)
        self.funnel = BatchingFunnel(self._solve_queries, window=window, max_batch=max_batch)
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._solved = 0

    # ------------------------------------------------------------------ API

    def query(
        self,
        platform: StarPlatform | Mapping | Query,
        *,
        one_port: bool = True,
        heuristics: Sequence[str] = DEFAULT_HEURISTICS,
        total_tasks: float = 1000.0,
        deadline: float = 1.0,
    ) -> Answer:
        """Answer one query (cache hit, or one — possibly shared — solve)."""
        request = Query.build(
            platform,
            one_port=one_port,
            heuristics=heuristics,
            total_tasks=total_tasks,
            deadline=deadline,
        )
        telemetry = active()
        start = time.perf_counter()
        with telemetry.span("api.query", one_port=request.one_port):
            telemetry.counter("api.queries")
            self._count("_queries")
            key = query_key(request)
            answer = self.cache.get(key)
            if answer is not None:
                telemetry.counter("api.cache.hits")
                self._count("_hits")
                answer = replace(answer, cached=True)
            else:
                telemetry.counter("api.cache.misses")
                self._count("_misses")
                answer = self.funnel.submit(request)
                self.cache.put(answer.key, answer)
        telemetry.observe("api.query.seconds", time.perf_counter() - start)
        return answer

    def query_batch(
        self, queries: Sequence[StarPlatform | Mapping | Query]
    ) -> list[Answer]:
        """Answer many queries: cache hits filtered, misses solved stacked.

        Equivalent to ``[service.query(q) for q in queries]`` answer for
        answer, but every miss of the batch lands in one kernel call per
        (port model, deadline) group — this is the high-QPS entry point
        the HTTP tier's ``/v1/query/batch`` maps to.
        """
        requests = [Query.build(query) for query in queries]
        telemetry = active()
        start = time.perf_counter()
        with telemetry.span("api.query_batch", size=len(requests)):
            telemetry.counter("api.queries", float(len(requests)))
            self._count("_queries", len(requests))
            answers: dict[int, Answer] = {}
            misses: list[int] = []
            for index, request in enumerate(requests):
                hit = self.cache.get(query_key(request))
                if hit is not None:
                    answers[index] = replace(hit, cached=True)
                else:
                    misses.append(index)
            telemetry.counter("api.cache.hits", float(len(answers)))
            telemetry.counter("api.cache.misses", float(len(misses)))
            self._count("_hits", len(answers))
            self._count("_misses", len(misses))
            if misses:
                solved = self._solve_queries(tuple(requests[i] for i in misses))
                for index, answer in zip(misses, solved):
                    self.cache.put(answer.key, answer)
                    answers[index] = answer
        telemetry.observe("api.query.seconds", time.perf_counter() - start)
        return [answers[index] for index in range(len(requests))]

    def stats(self) -> dict[str, int]:
        """Lifetime counters (the health endpoint's payload)."""
        with self._stats_lock:
            return {
                "queries": self._queries,
                "cache_hits": self._hits,
                "cache_misses": self._misses,
                "solved": self._solved,
                "cache_entries": len(self.cache),
                "funnel_batches": self.funnel.batches,
                "funnel_coalesced": self.funnel.coalesced,
            }

    # ---------------------------------------------------------------- solve

    def _count(self, name: str, value: int = 1) -> None:
        with self._stats_lock:
            setattr(self, name, getattr(self, name) + value)

    def _solve_queries(self, queries: Sequence[Query]) -> list[Answer]:
        """Solve a batch of (cache-missed) queries with stacked kernels.

        Identical queries inside the batch are deduplicated and solved
        once; the rest group by (port model, deadline) — one
        ``solve_scenarios`` call per group stacks every heuristic of every
        query of the group.
        """
        keys = [query_key(query) for query in queries]
        unique: dict[str, Query] = {}
        for key, query in zip(keys, queries):
            unique.setdefault(key, query)
        groups: dict[tuple[bool, float], list[tuple[str, Query]]] = defaultdict(list)
        for key, query in unique.items():
            groups[(query.one_port, query.deadline)].append((key, query))
        answers: dict[str, Answer] = {}
        telemetry = active()
        with telemetry.span("api.solve", queries=len(unique), groups=len(groups)):
            for (one_port, deadline), items in groups.items():
                self._solve_group(items, one_port=one_port, deadline=deadline, out=answers)
        self._count("_solved", len(unique))
        telemetry.counter("api.solved", float(len(unique)))
        return [answers[key] for key in keys]

    def _solve_group(
        self,
        items: list[tuple[str, Query]],
        *,
        one_port: bool,
        deadline: float,
        out: dict[str, Answer],
    ) -> None:
        """One stacked kernel call for every LP-backed heuristic of ``items``.

        Mirrors :func:`repro.core.heuristics.compare_heuristics_batch`
        (one-port: FIFO scenarios with ``sigma2=None``, LIFO via the
        closed form) and :func:`repro.core.dispatch.
        compare_heuristics_two_port_batch` (two-port: every heuristic is
        LP-backed, LIFO with a reversed return order) — so each answer is
        bit-identical to the scalar reference for its port model.
        """
        platforms: dict[str, StarPlatform] = {key: query.platform for key, query in items}
        scenarios: list[tuple[StarPlatform, Sequence[str], Sequence[str] | None]] = []
        slots: list[tuple[str, str]] = []
        for key, query in items:
            platform = platforms[key]
            for name in query.heuristics:
                if one_port and name == "LIFO":
                    continue  # closed form, no LP needed
                sigma1, sigma2 = heuristic_orders(platform, name, one_port=one_port)
                scenarios.append((platform, sigma1, sigma2 if not one_port else None))
                slots.append((key, name))
        solutions = solve_scenarios(scenarios, deadline=deadline, one_port=one_port)
        solved: dict[tuple[str, str], HeuristicResult] = {}
        for (key, name), solution in zip(slots, solutions):
            solved[(key, name)] = HeuristicResult(
                name=name, schedule=solution.schedule, throughput=solution.throughput
            )
        for key, query in items:
            results = []
            for name in query.heuristics:
                if one_port and name == "LIFO":
                    result = HEURISTICS["LIFO"](platforms[key], deadline=deadline)
                else:
                    result = solved[(key, name)]
                results.append(HeuristicAnswer.from_result(result, query.total_tasks))
            best = max(results, key=lambda entry: entry.throughput)
            out[key] = Answer(
                key=key,
                one_port=query.one_port,
                heuristics=query.heuristics,
                total_tasks=query.total_tasks,
                deadline=query.deadline,
                platform_rows=query.platform_rows,
                best=best.name,
                results=tuple(results),
            )
