"""Stdlib-only HTTP tier over the query service.

Endpoints (JSON in, JSON out; schemas in :mod:`repro.api.schemas`):

* ``POST /v1/query`` — one :class:`~repro.api.schemas.Query`, one
  :class:`~repro.api.schemas.Answer`;
* ``POST /v1/query/batch`` — ``{"queries": [...]}`` →
  ``{"answers": [...]}``, misses solved in stacked kernel calls;
* ``GET /v1/healthz`` — liveness + the service's lifetime counters.

Concurrency is ``ThreadingHTTPServer``'s thread-per-request over the
thread-safe cache + funnel; with a micro-batch window configured,
concurrent requests genuinely share kernel calls.  Shutdown is a
*drain*: ``shutdown()`` stops accepting, in-flight handlers finish and
are joined (``daemon_threads`` stays off), then the socket closes —
:func:`run_server` wires SIGTERM/SIGINT to exactly that and exits 0.

Malformed requests answer 400 with ``{"error": ...}``; unknown paths 404;
wrong methods 405.  Every request is instrumented through the ambient
:func:`repro.obs.active` telemetry (request spans, latency histogram,
per-status counters) — activate a :class:`repro.obs.Telemetry` around
:func:`run_server` to capture them.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from repro.api.schemas import Query
from repro.api.service import QueryService
from repro.exceptions import ReproError
from repro.obs import active, get_logger

__all__ = ["QueryHTTPServer", "make_server", "run_server"]

_log = get_logger("api.server")

#: Largest accepted request body (a 10k-worker platform is ~600 kB).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _BadRequest(Exception):
    """Client error carrying the message answered as ``{"error": ...}``."""


class QueryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its :class:`QueryService`."""

    # Drain semantics: in-flight handler threads are joined on close.
    daemon_threads = False
    block_on_close = True

    def __init__(self, address: tuple[str, int], service: QueryService) -> None:
        super().__init__(address, _QueryHandler)
        self.service = service
        self.started = time.time()


class _QueryHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-api"

    # Route BaseHTTPRequestHandler's stderr chatter through the structured
    # logger (debug level: per-request lines are telemetry's job).
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        _log.debug("http %s", format % args, client=self.client_address[0])

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/v1/healthz":
            self._send_error(404, f"unknown path {self.path!r}")
            return
        self._instrumented(self._healthz)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/v1/query":
            self._instrumented(self._query)
        elif self.path == "/v1/query/batch":
            self._instrumented(self._query_batch)
        else:
            self._send_error(404, f"unknown path {self.path!r}")

    # ------------------------------------------------------------- handlers

    def _healthz(self) -> None:
        server: QueryHTTPServer = self.server
        payload = {
            "status": "ok",
            "uptime_seconds": time.time() - server.started,
            **server.service.stats(),
        }
        self._send_json(200, payload)

    def _query(self) -> None:
        request = Query.from_dict(self._read_json())
        answer = self.server.service.query(request)
        self._send_json(200, answer.as_dict())

    def _query_batch(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, Mapping) or "queries" not in payload:
            raise _BadRequest("the batch body must be {\"queries\": [...]}")
        queries = payload["queries"]
        if not isinstance(queries, list):
            raise _BadRequest("'queries' must be a list of query objects")
        requests = [Query.from_dict(entry) for entry in queries]
        answers = self.server.service.query_batch(requests)
        self._send_json(200, {"answers": [answer.as_dict() for answer in answers]})

    # ------------------------------------------------------------- plumbing

    def _instrumented(self, handler) -> None:
        telemetry = active()
        start = time.perf_counter()
        status = 500
        with telemetry.span("api.request", path=self.path, method=self.command):
            try:
                handler()
                status = 200
            except _BadRequest as error:
                status = 400
                self._send_error(400, str(error))
            except ReproError as error:
                status = 400
                self._send_error(400, str(error))
            except BrokenPipeError:
                status = 499  # client went away mid-response; nothing to answer
            except Exception as error:  # never kill the handler thread silently
                _log.error("http.internal", error=repr(error), path=self.path)
                self._send_error(500, "internal error")
        telemetry.counter(f"api.http.{status}")
        telemetry.observe("api.request.seconds", time.perf_counter() - start)

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise _BadRequest("missing or malformed Content-Length") from None
        if length <= 0:
            raise _BadRequest("the request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"invalid JSON body: {error}") from None

    def _send_json(self, status: int, payload) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except BrokenPipeError:
            pass  # client hung up after we committed the status line

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})


def make_server(
    service: QueryService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> QueryHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks a free port."""
    return QueryHTTPServer((host, port), service or QueryService())


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    service: QueryService | None = None,
    stop: threading.Event | None = None,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain in-flight requests; exit 0.

    Prints the bound address on startup (``port=0`` reports the actual
    port) so wrappers and smoke tests can scrape it.  ``stop`` lets
    embedders (tests) trigger the drain without a signal.
    """
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port} (POST /v1/query)", flush=True)
    stop = stop or threading.Event()

    def _request_drain(signum, frame) -> None:
        stop.set()

    previous: dict[int, object] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _request_drain)
        except ValueError:
            pass  # not the main thread (embedded use): rely on `stop`
    loop = threading.Thread(target=server.serve_forever, kwargs={"poll_interval": 0.1})
    loop.start()
    try:
        stop.wait()
    finally:
        print("draining in-flight requests ...", flush=True)
        server.shutdown()
        loop.join()
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    stats = server.service.stats()
    print(
        f"served {stats['queries']} queries "
        f"({stats['cache_hits']} cache hits, {stats['solved']} solved); bye",
        flush=True,
    )
    return 0
