"""Request/response schemas of the query service.

Both sides of the wire are frozen dataclasses that round-trip through
JSON:

* :class:`Query` — platform cost table + port model + heuristic set +
  workload size.  The platform arrives either as a
  :class:`~repro.core.platform.StarPlatform` or, over HTTP, as a mapping
  ``{"name": {"c": ..., "w": ..., "d": ...}, ...}`` in platform order.
* :class:`Answer` — best heuristic, per-heuristic schedules (send/return
  orders, loads, throughput, predicted makespan) and the cache key the
  answer is stored under.

Python's ``json`` writes floats via ``repr`` and reads them back with
exact binary round-trip, so an :class:`Answer` that travelled through the
HTTP tier (or the disk cache) compares equal, float for float, to one
computed in-process — the bit-identity tests pin this.

Everything here is immutable (tuples of tuples, no shared arrays): once a
query is built, mutating the caller's cost table cannot change the
query's key or a cached answer derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.heuristics import HEURISTICS, HeuristicResult
from repro.core.makespan import makespan_for_load
from repro.core.platform import StarPlatform, Worker
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError

__all__ = [
    "DEFAULT_HEURISTICS",
    "Query",
    "HeuristicAnswer",
    "Answer",
]

#: Heuristic set a query evaluates by default: the paper's experimental
#: comparison (INC_C / INC_W / LIFO) plus the provably optimal FIFO of
#: Theorem 1 — so the default answer always contains the reference
#: schedule resource selection is about.
DEFAULT_HEURISTICS = ("OPT_FIFO", "INC_C", "INC_W", "LIFO")

#: Default workload size (the paper's campaigns process M = 1000 tasks).
DEFAULT_TOTAL_TASKS = 1000.0


def _platform_rows(platform: StarPlatform) -> tuple[tuple[str, float, float, float], ...]:
    """The cost table as immutable ``(name, c, w, d)`` rows, platform order."""
    return tuple(
        (worker.name, float(worker.c), float(worker.w), float(worker.d))
        for worker in platform
    )


def _platform_from_rows(rows: Sequence[Sequence]) -> StarPlatform:
    return StarPlatform(
        Worker(name=str(name), c=float(c), w=float(w), d=float(d))
        for name, c, w, d in rows
    )


def _platform_mapping_rows(payload: Mapping) -> tuple[tuple[str, float, float, float], ...]:
    rows = []
    for name, costs in payload.items():
        try:
            rows.append((str(name), float(costs["c"]), float(costs["w"]), float(costs["d"])))
        except (KeyError, TypeError, ValueError) as error:
            raise ScheduleError(
                f"worker {name!r} needs numeric 'c', 'w' and 'd' costs: {error}"
            ) from None
    return tuple(rows)


@dataclass(frozen=True)
class Query:
    """One resource-selection question, normalised and immutable.

    The platform is captured as a cost-table *copy* at construction time
    (``platform_rows``), so later mutation of whatever the caller built the
    query from — a numpy cost table, a list of dicts — can neither poison a
    cached answer nor change the query's key.
    """

    platform_rows: tuple[tuple[str, float, float, float], ...]
    one_port: bool = True
    heuristics: tuple[str, ...] = DEFAULT_HEURISTICS
    total_tasks: float = DEFAULT_TOTAL_TASKS
    deadline: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "platform_rows", tuple(tuple(row) for row in self.platform_rows))
        object.__setattr__(self, "heuristics", tuple(self.heuristics))
        if not self.platform_rows:
            raise ScheduleError("a query needs at least one worker")
        if not self.heuristics:
            raise ScheduleError("a query needs at least one heuristic")
        for name in self.heuristics:
            if name not in HEURISTICS:
                raise ScheduleError(
                    f"unknown heuristic {name!r}; available: {sorted(HEURISTICS)}"
                )
        if not self.total_tasks > 0:
            raise ScheduleError("total_tasks must be positive")
        if not self.deadline > 0:
            raise ScheduleError("deadline must be positive")

    @classmethod
    def build(
        cls,
        platform: "StarPlatform | Mapping | Query",
        *,
        one_port: bool = True,
        heuristics: Sequence[str] = DEFAULT_HEURISTICS,
        total_tasks: float = DEFAULT_TOTAL_TASKS,
        deadline: float = 1.0,
    ) -> "Query":
        """Normalise any accepted platform form into a :class:`Query`."""
        if isinstance(platform, Query):
            return platform
        if isinstance(platform, StarPlatform):
            rows = _platform_rows(platform)
        elif isinstance(platform, Mapping):
            rows = _platform_mapping_rows(platform)
        else:
            raise ScheduleError(
                "platform must be a StarPlatform or a {name: {c,w,d}} mapping, "
                f"got {type(platform).__name__}"
            )
        return cls(
            platform_rows=rows,
            one_port=bool(one_port),
            heuristics=tuple(heuristics),
            total_tasks=float(total_tasks),
            deadline=float(deadline),
        )

    @property
    def platform(self) -> StarPlatform:
        """A fresh :class:`StarPlatform` built from the captured cost table."""
        return _platform_from_rows(self.platform_rows)

    def as_dict(self) -> dict:
        """JSON form — the request schema of ``POST /v1/query``."""
        return {
            "platform": {name: {"c": c, "w": w, "d": d} for name, c, w, d in self.platform_rows},
            "one_port": self.one_port,
            "heuristics": list(self.heuristics),
            "total_tasks": self.total_tasks,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Query":
        """Parse the request schema (unknown keys rejected)."""
        if not isinstance(payload, Mapping):
            raise ScheduleError("the request body must be a JSON object")
        unknown = set(payload) - {"platform", "one_port", "heuristics", "total_tasks", "deadline"}
        if unknown:
            raise ScheduleError(f"unknown request fields: {sorted(unknown)}")
        try:
            platform = payload["platform"]
        except KeyError:
            raise ScheduleError("the request needs a 'platform' mapping") from None
        if not isinstance(platform, Mapping):
            raise ScheduleError("'platform' must map worker names to {c,w,d} costs")
        return cls.build(
            platform,
            one_port=payload.get("one_port", True),
            heuristics=payload.get("heuristics", DEFAULT_HEURISTICS),
            total_tasks=payload.get("total_tasks", DEFAULT_TOTAL_TASKS),
            deadline=payload.get("deadline", 1.0),
        )


@dataclass(frozen=True)
class HeuristicAnswer:
    """One heuristic's full schedule, flattened to wire-safe tuples."""

    name: str
    order: tuple[str, ...]
    return_order: tuple[str, ...]
    throughput: float
    loads: tuple[tuple[str, float], ...]
    participants: tuple[str, ...]
    predicted_makespan: float

    @classmethod
    def from_result(cls, result: HeuristicResult, total_tasks: float) -> "HeuristicAnswer":
        schedule = result.schedule
        loads = schedule.loads
        return cls(
            name=result.name,
            order=tuple(schedule.sigma1),
            return_order=tuple(schedule.sigma2),
            throughput=result.throughput,
            loads=tuple((name, loads[name]) for name in schedule.sigma1),
            participants=tuple(schedule.participants),
            predicted_makespan=makespan_for_load(result.throughput, total_tasks),
        )

    @property
    def loads_dict(self) -> dict[str, float]:
        return dict(self.loads)

    def schedule(self, platform: StarPlatform, deadline: float = 1.0) -> Schedule:
        """Rebuild the full :class:`Schedule` object on ``platform``."""
        return Schedule(
            platform,
            loads=self.loads_dict,
            sigma1=self.order,
            sigma2=self.return_order,
            deadline=deadline,
        )

    def as_dict(self) -> dict:
        return {
            "order": list(self.order),
            "return_order": list(self.return_order),
            "throughput": self.throughput,
            "loads": {name: load for name, load in self.loads},
            "participants": list(self.participants),
            "predicted_makespan": self.predicted_makespan,
        }

    @classmethod
    def from_dict(cls, name: str, payload: Mapping) -> "HeuristicAnswer":
        order = tuple(payload["order"])
        loads = payload["loads"]
        return cls(
            name=name,
            order=order,
            return_order=tuple(payload["return_order"]),
            throughput=float(payload["throughput"]),
            loads=tuple((worker, float(loads[worker])) for worker in order),
            participants=tuple(payload["participants"]),
            predicted_makespan=float(payload["predicted_makespan"]),
        )


@dataclass(frozen=True)
class Answer:
    """The service's reply: best heuristic + per-heuristic comparison.

    ``cached`` is transport metadata (was this answer served from the
    cache?) and is excluded from equality — a cache hit *is* the original
    answer.
    """

    key: str
    one_port: bool
    heuristics: tuple[str, ...]
    total_tasks: float
    deadline: float
    platform_rows: tuple[tuple[str, float, float, float], ...]
    best: str
    results: tuple[HeuristicAnswer, ...]
    cached: bool = field(default=False, compare=False)

    @property
    def best_result(self) -> HeuristicAnswer:
        return self.result(self.best)

    @property
    def predicted_makespan(self) -> float:
        """Predicted completion time of ``total_tasks`` under the best schedule."""
        return self.best_result.predicted_makespan

    @property
    def throughput(self) -> float:
        return self.best_result.throughput

    @property
    def platform(self) -> StarPlatform:
        return _platform_from_rows(self.platform_rows)

    def result(self, name: str) -> HeuristicAnswer:
        for entry in self.results:
            if entry.name == name:
                return entry
        raise ScheduleError(f"answer holds no heuristic {name!r}; has {self.heuristics}")

    def schedule(self, platform: StarPlatform | None = None) -> Schedule:
        """The best heuristic's full schedule (rebuilt from the answer)."""
        return self.best_result.schedule(
            platform if platform is not None else self.platform, deadline=self.deadline
        )

    def as_dict(self) -> dict:
        """JSON form — the response schema of ``POST /v1/query``."""
        return {
            "key": self.key,
            "cached": self.cached,
            "one_port": self.one_port,
            "heuristics": list(self.heuristics),
            "total_tasks": self.total_tasks,
            "deadline": self.deadline,
            "platform": {name: {"c": c, "w": w, "d": d} for name, c, w, d in self.platform_rows},
            "best": self.best,
            "predicted_makespan": self.predicted_makespan,
            "results": {entry.name: entry.as_dict() for entry in self.results},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Answer":
        heuristics = tuple(payload["heuristics"])
        results = payload["results"]
        return cls(
            key=str(payload["key"]),
            one_port=bool(payload["one_port"]),
            heuristics=heuristics,
            total_tasks=float(payload["total_tasks"]),
            deadline=float(payload["deadline"]),
            platform_rows=_platform_mapping_rows(payload["platform"]),
            best=str(payload["best"]),
            results=tuple(
                HeuristicAnswer.from_dict(name, results[name]) for name in heuristics
            ),
            cached=bool(payload.get("cached", False)),
        )
