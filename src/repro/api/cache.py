"""Answer cache of the query service: canonical keys, LRU, disk tier.

Keying reuses the spec layer's hashing primitive
(:func:`repro.scenarios.spec.canonical_hash`): the key is the sha256 of
the canonical sorted-JSON form of everything that determines an answer —
the cost table (numeric-canonical: every cost coerced to ``float``, so a
platform built from ``c=1`` and one built from ``c=1.0`` share a key),
the port model, the heuristic set, the workload size and the deadline.
``name`` order matters (the ``PLATFORM_ORDER`` heuristic depends on it);
cosmetic attributes like the platform's display name do not exist in the
key at all.

The in-memory tier is a thread-safe LRU of :class:`~repro.api.schemas.
Answer` objects (immutable, so shared across threads without copying).
The optional disk tier writes one JSON file per key with an atomic
``os.replace``; floats round-trip exactly through JSON, so an answer
reloaded after a process restart is bit-identical to the one cached —
pinned by tests.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.api.schemas import Answer, Query
from repro.obs import active
from repro.scenarios.spec import canonical_hash

__all__ = ["KEY_LENGTH", "query_key", "AnswerCache"]

#: Key width in hex chars.  The spec layer's 12 suffice for a handful of
#: named campaign stores; a cache fed by millions of distinct queries
#: needs collision odds negligible at that scale, hence the full 32.
KEY_LENGTH = 32


def query_key(query: Query) -> str:
    """Canonical content hash identifying a query's *answer*.

    Two queries that differ only cosmetically (int vs float cost literals,
    dict construction order of the heuristic list... ) map to the same
    key; anything that changes a single answered float — a cost, the port
    model, the heuristic set, the workload size, the deadline — maps to a
    different one.
    """
    payload = {
        "cost_table": [[name, c, w, d] for name, c, w, d in query.platform_rows],
        "one_port": bool(query.one_port),
        "heuristics": list(query.heuristics),
        "total_tasks": float(query.total_tasks),
        "deadline": float(query.deadline),
    }
    return canonical_hash(payload, length=KEY_LENGTH)


class AnswerCache:
    """Thread-safe LRU over answers, with an optional persistent tier.

    ``directory=None`` keeps the cache purely in memory.  With a
    directory, every ``put`` also lands on disk (atomic tmp + replace) and
    a memory miss falls through to disk before being declared a miss —
    so a restarted service warms itself from its predecessor's answers.
    """

    def __init__(self, max_entries: int = 1024, directory: str | Path | None = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Answer] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Answer | None:
        """The cached answer for ``key``, or ``None`` (never raises)."""
        with self._lock:
            answer = self._entries.get(key)
            if answer is not None:
                self._entries.move_to_end(key)
                return answer
        if self.directory is None:
            return None
        answer = self._read_disk(key)
        if answer is None:
            return None
        active().counter("api.cache.disk_hits")
        with self._lock:
            self._insert(key, answer)
        return answer

    def put(self, key: str, answer: Answer) -> None:
        with self._lock:
            self._insert(key, answer)
        if self.directory is not None:
            self._write_disk(key, answer)

    def _insert(self, key: str, answer: Answer) -> None:
        self._entries[key] = answer
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _read_disk(self, key: str) -> Answer | None:
        try:
            text = self._path(key).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            answer = Answer.from_dict(json.loads(text))
        except Exception:
            return None  # torn/corrupt entry: treat as a miss, never fail a query
        if answer.key != key:
            return None
        return answer

    def _write_disk(self, key: str, answer: Answer) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            tmp.write_text(json.dumps(answer.as_dict()), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # The disk tier is best-effort; the memory tier holds the answer.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
