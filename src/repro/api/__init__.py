"""Resource-selection query service — the ``repro.api`` front door.

The paper's actual decision problem is a *query*: given a star platform
(possibly probe-measured), which workers should participate, in what
order, and what makespan should we expect?  This package promotes that
question into a low-latency service on top of the batched kernels:

* :mod:`repro.api.schemas` — :class:`Query` / :class:`Answer`, the frozen,
  JSON-round-trippable request/response pair (floats survive the round
  trip bit for bit);
* :mod:`repro.api.cache` — canonical content-hash keying (shared with the
  spec layer's :func:`repro.scenarios.spec.canonical_hash`) plus a
  thread-safe LRU with an optional disk tier that survives restarts;
* :mod:`repro.api.funnel` — a leader/follower micro-batch funnel that
  coalesces concurrent single queries into one stacked kernel call;
* :mod:`repro.api.service` — :class:`QueryService`, the cached, batched
  answer engine, bit-identical to the scalar reference path
  (``optimal_fifo_schedule`` + ``compare_heuristics``) under both port
  models;
* :mod:`repro.api.server` — the stdlib-only HTTP tier behind
  ``repro-experiments scenarios serve`` (``/v1/query``,
  ``/v1/query/batch``, ``/v1/healthz``).

Quick start::

    from repro import StarPlatform, Worker
    from repro.api import QueryService

    service = QueryService()
    answer = service.query(platform)           # cold: one kernel call
    answer = service.query(platform)           # hot: pure cache hit
    print(answer.best, answer.predicted_makespan, answer.best_result.order)
"""

from __future__ import annotations

from repro.api.cache import AnswerCache, query_key
from repro.api.funnel import BatchingFunnel
from repro.api.schemas import DEFAULT_HEURISTICS, Answer, HeuristicAnswer, Query
from repro.api.service import QueryService

__all__ = [
    "Answer",
    "AnswerCache",
    "BatchingFunnel",
    "DEFAULT_HEURISTICS",
    "HeuristicAnswer",
    "Query",
    "QueryService",
    "query_key",
]
