"""Leader/follower micro-batch funnel.

The batched simplex kernels amortise their setup over a whole stack of
scenarios, but a query service receives scenarios one at a time, on many
threads.  The funnel bridges the two shapes: the first thread into an
empty buffer becomes the *leader*, waits up to ``window`` seconds (the
latency budget) for followers to pile in — or until ``max_batch`` of them
have — then flushes the whole buffer through one batched solve and hands
each follower its own answer.  Threads arriving while a leader is solving
start the next generation immediately, so a slow solve never blocks
admission.

``window=0`` degrades gracefully to pass-through (every submit solves
immediately, coalescing only what raced in between the append and the
swap), which is the right setting for single-threaded callers and
benchmarks that measure raw solve latency.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence, TypeVar

from repro.obs import active

__all__ = ["BatchingFunnel"]

Q = TypeVar("Q")
A = TypeVar("A")


class _Pending:
    __slots__ = ("query", "event", "answer", "error")

    def __init__(self, query) -> None:
        self.query = query
        self.event = threading.Event()
        self.answer = None
        self.error: BaseException | None = None


class BatchingFunnel:
    """Coalesce concurrent ``submit`` calls into batched ``solve`` calls.

    ``solve_batch`` receives a tuple of queries and must return one answer
    per query, in order.  A solve error propagates to *every* caller of
    the failed batch (the same exception instance — answers are never
    partially delivered).
    """

    def __init__(
        self,
        solve_batch: Callable[[Sequence[Q]], Sequence[A]],
        window: float = 0.0,
        max_batch: int = 64,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0 seconds")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._solve = solve_batch
        self.window = window
        self.max_batch = max_batch
        self._cond = threading.Condition()
        self._pending: list[_Pending] = []
        #: Lifetime flush count (exposed for tests and the health endpoint).
        self.batches = 0
        #: Lifetime queries that went through a flush.
        self.coalesced = 0

    def submit(self, query: Q) -> A:
        """Answer ``query``, possibly sharing a kernel call with others."""
        entry = _Pending(query)
        with self._cond:
            self._pending.append(entry)
            leader = len(self._pending) == 1
            active().gauge("api.funnel.depth", len(self._pending))
            if not leader:
                # Wake a leader sleeping out its window so it can re-check
                # the max_batch cutoff.
                self._cond.notify_all()
        if not leader:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            return entry.answer
        return self._lead(entry)

    def _lead(self, entry: _Pending) -> A:
        if self.window > 0 and self.max_batch > 1:
            deadline = time.monotonic() + self.window
            with self._cond:
                while len(self._pending) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
        with self._cond:
            batch, self._pending = self._pending, []
            active().gauge("api.funnel.depth", 0)
        telemetry = active()
        try:
            answers = list(self._solve(tuple(item.query for item in batch)))
        except BaseException as error:
            for item in batch:
                item.error = error
                item.event.set()
            raise
        if len(answers) != len(batch):
            error = RuntimeError(
                f"solve_batch returned {len(answers)} answers for {len(batch)} queries"
            )
            for item in batch:
                item.error = error
                item.event.set()
            raise error
        with self._cond:
            self.batches += 1
            self.coalesced += len(batch)
        telemetry.counter("api.funnel.batches")
        telemetry.observe("api.funnel.batch_size", float(len(batch)))
        for item, answer in zip(batch, answers):
            item.answer = answer
            item.event.set()
        return entry.answer
