"""Live campaign status: the read side of the telemetry sidecar.

``scenarios status STORE_DIR`` renders one consolidated view of a
running (or finished) campaign from plain files only — it never opens
the store writable and never needs the spec object:

* **progress** — chunks done / total and persisted rows, read tolerantly
  from the canonical ``chunks.jsonl`` plus every per-worker store (a
  chunk durable in a worker store counts as done even before the
  coordinator merges it);
* **throughput** — rows/s and a chunk-based ETA derived from the span
  sidecar's wall-clock extent;
* **lease health** — every outstanding lease with its owner, epoch and
  heartbeat age, flagged when expired past the advert's skew slack;
* **phase breakdown** — per-phase totals (queue / evaluate / solve /
  replay / append / merge / work) from the merged ``span.*.seconds``
  histograms;
* **kernel profile** — batched-simplex call counts, pivot totals,
  termination-mask occupancy and scalar-fallback counts from the
  ``kernel.*`` counters.

Everything degrades gracefully: a campaign run with ``--telemetry off``
still reports progress and leases (the sections telemetry is not needed
for), and torn sidecar lines are counted, never fatal.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, TextIO

from repro.obs import (
    TELEMETRY_DIR_NAME,
    merge_snapshots,
    read_jsonl_tolerant,
    read_metric_snapshots,
    read_spans,
)

__all__ = ["CampaignStatus", "LeaseHealth", "collect_status", "follow_status", "render_status"]

#: Span phases rendered in pipeline order; anything else follows, sorted
#: by total time.
_PHASE_ORDER = ("queue", "evaluate", "solve", "replay", "append", "work", "merge")

#: Sliding window (seconds) behind the *recent* throughput estimate:
#: only ``evaluate`` spans that finished inside the window count, so a
#: stalled campaign shows a dip instead of having it averaged away by
#: the all-time extent.
RECENT_WINDOW_SECONDS = 30.0


@dataclass(frozen=True)
class LeaseHealth:
    """One outstanding lease as seen from the shared directory."""

    chunk: int
    owner: str
    epoch: int
    heartbeat_age: float
    expired: bool


@dataclass
class CampaignStatus:
    """Everything ``scenarios status`` knows about one campaign directory."""

    directory: Path
    canonical_chunks: int = 0
    worker_only_chunks: int = 0
    total_chunks: int | None = None
    rows: int = 0
    worker_chunks: dict[str, int] = field(default_factory=dict)
    leases: list[LeaseHealth] = field(default_factory=list)
    rows_per_second: float | None = None
    recent_rows_per_second: float | None = None
    eta_seconds: float | None = None
    phases: list[tuple[str, float, int]] = field(default_factory=list)
    kernels: dict[str, dict[str, float]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    owners: list[str] = field(default_factory=list)
    dropped_telemetry_lines: int = 0
    has_telemetry: bool = False

    @property
    def chunks_done(self) -> int:
        """Chunks durable *somewhere* (canonical or an unmerged worker store)."""
        return self.canonical_chunks + self.worker_only_chunks

    @property
    def finished(self) -> bool:
        return self.total_chunks is not None and self.canonical_chunks >= self.total_chunks


def _chunk_records(path: Path) -> tuple[set[int], int]:
    """(chunk indices, row count) of one ``chunks.jsonl``, tolerantly."""
    from repro.scenarios.store import chunk_progress

    return chunk_progress(path)


def _recent_rows_per_second(
    spans: list[dict], now: float, window: float = RECENT_WINDOW_SECONDS
) -> float | None:
    """Rows/s from ``evaluate`` spans finishing in the trailing window.

    ``evaluate`` spans only: the detached tier's ``work`` spans *nest*
    the evaluation, so counting both would double-count every row.
    Returns ``None`` when no evaluation has ever finished (nothing to
    rate) and ``0.0`` when evaluations exist but none finished inside
    the window — the dip a stalled campaign must show, which the
    all-time average structurally cannot.
    """
    cutoff = now - window
    rows = 0.0
    starts: list[float] = []
    for record in spans:
        if record.get("name") != "evaluate":
            continue
        t0 = record.get("t0")
        if not isinstance(t0, (int, float)):
            continue
        starts.append(float(t0))
        try:
            end = float(t0) + float(record.get("dt") or 0.0)
        except (TypeError, ValueError):
            continue
        if end < cutoff:
            continue
        attrs = record.get("attrs")
        if isinstance(attrs, dict):
            try:
                rows += float(attrs.get("rows", 0.0))
            except (TypeError, ValueError):
                pass
    if not starts:
        return None
    # A campaign younger than the window is rated over its own age, so
    # the estimate is not diluted by time that never existed.
    elapsed = min(window, max(1e-9, now - min(starts)))
    return rows / elapsed


def _read_advert(campaign_dir: Path) -> dict | None:
    try:
        record = json.loads((campaign_dir / "fabric.json").read_text(encoding="utf-8"))
        return record if isinstance(record, dict) else None
    except (OSError, ValueError):
        return None


def _infer_total_chunks(campaign_dir: Path, advert: dict | None) -> int | None:
    """Total chunks: the advert's promise, else spec count / chunk size."""
    if advert is not None:
        try:
            return int(advert["total_chunks"])
        except (KeyError, TypeError, ValueError):
            pass
    try:
        spec = json.loads((campaign_dir / "spec.json").read_text(encoding="utf-8"))
        count = int(spec["family"]["count"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    chunk_size = None
    records, _ = read_jsonl_tolerant(campaign_dir / "chunks.jsonl")
    for record in records:
        if isinstance(record, dict) and record.get("chunk") == 0 and "stop" in record:
            try:
                chunk_size = int(record["stop"]) - int(record.get("start", 0))
            except (TypeError, ValueError):
                chunk_size = None
            break
    if not chunk_size or chunk_size <= 0:
        from repro.scenarios.runner import DEFAULT_CHUNK_SIZE

        chunk_size = DEFAULT_CHUNK_SIZE
    return max(1, -(-count // chunk_size))


def _read_leases(campaign_dir: Path, skew_slack: float, now: float) -> list[LeaseHealth]:
    leases: list[LeaseHealth] = []
    leases_dir = campaign_dir / "leases"
    if not leases_dir.is_dir():
        return leases
    for path in sorted(leases_dir.glob("chunk-*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            chunk = int(record["chunk"])
            owner = str(record.get("owner", "?"))
            epoch = int(record.get("epoch", 0))
            heartbeat = float(record.get("heartbeat_at") or record.get("granted_at") or now)
            deadline = record.get("deadline")
        except (OSError, ValueError, KeyError, TypeError):
            continue
        expired = False
        if deadline is not None:
            try:
                expired = now > float(deadline) + skew_slack
            except (TypeError, ValueError):
                expired = False
        leases.append(
            LeaseHealth(
                chunk=chunk,
                owner=owner,
                epoch=epoch,
                heartbeat_age=max(0.0, now - heartbeat),
                expired=expired,
            )
        )
    return leases


def _phase_breakdown(histograms: dict) -> list[tuple[str, float, int]]:
    phases: list[tuple[str, float, int]] = []
    for name, histogram in histograms.items():
        if not name.startswith("span.") or not name.endswith(".seconds"):
            continue
        phase = name[len("span.") : -len(".seconds")]
        phases.append((phase, float(histogram.get("sum", 0.0)), int(histogram.get("count", 0))))

    def order(entry: tuple[str, float, int]) -> tuple[int, float]:
        name, total, _ = entry
        known = _PHASE_ORDER.index(name) if name in _PHASE_ORDER else len(_PHASE_ORDER)
        return (known, -total)

    return sorted(phases, key=order)


def _kernel_profiles(counters: dict[str, float]) -> dict[str, dict[str, float]]:
    kernels: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith("kernel."):
            continue
        parts = name.split(".", 2)
        if len(parts) != 3:
            continue
        kernels.setdefault(parts[1], {})[parts[2]] = float(value)
    return kernels


def collect_status(campaign_dir: str | Path, now: float | None = None) -> CampaignStatus:
    """Gather one :class:`CampaignStatus` from a campaign directory.

    Works on any directory — one with no campaign yet yields zeros, one
    without telemetry yields progress + leases only.  Never raises on
    torn or missing files.
    """
    campaign_dir = Path(campaign_dir)
    now = time.time() if now is None else now
    status = CampaignStatus(directory=campaign_dir)

    canonical, rows = _chunk_records(campaign_dir / "chunks.jsonl")
    status.canonical_chunks = len(canonical)
    status.rows = rows

    observed = set(canonical)
    workers_root = campaign_dir / "workers"
    if workers_root.is_dir():
        for worker_dir in sorted(workers_root.iterdir()):
            chunks, _ = _chunk_records(worker_dir / "chunks.jsonl")
            if chunks or (worker_dir / "spec.json").is_file():
                status.worker_chunks[worker_dir.name] = len(chunks)
            observed |= chunks
    status.worker_only_chunks = len(observed) - len(canonical)

    advert = _read_advert(campaign_dir)
    status.total_chunks = _infer_total_chunks(campaign_dir, advert)
    skew_slack = 2.0
    if advert is not None:
        try:
            skew_slack = float(advert.get("skew_slack", skew_slack))
        except (TypeError, ValueError):
            pass
    status.leases = _read_leases(campaign_dir, skew_slack, now)

    telemetry_dir = campaign_dir / TELEMETRY_DIR_NAME
    spans, dropped_spans = read_spans(telemetry_dir)
    snapshots = read_metric_snapshots(telemetry_dir)
    status.dropped_telemetry_lines = dropped_spans
    status.has_telemetry = bool(spans or snapshots)
    if not status.has_telemetry:
        return status

    merged = merge_snapshots(snapshots)
    status.counters = dict(merged.get("counters", {}))
    status.owners = list(merged.get("owners", []))
    status.phases = _phase_breakdown(merged.get("histograms", {}))
    status.kernels = _kernel_profiles(status.counters)

    stamps = [
        (float(record["t0"]), float(record.get("dt", 0.0)))
        for record in spans
        if isinstance(record.get("t0"), (int, float))
    ]
    if stamps:
        t_start = min(t0 for t0, _ in stamps)
        t_end = max(t0 + dt for t0, dt in stamps)
        elapsed = t_end - t_start
        if elapsed > 0:
            if status.rows:
                status.rows_per_second = status.rows / elapsed
            done = status.chunks_done
            if done and status.total_chunks is not None and done < status.total_chunks:
                status.eta_seconds = (status.total_chunks - done) * (elapsed / done)
    status.recent_rows_per_second = _recent_rows_per_second(spans, now)
    return status


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    if seconds >= 1.0:
        return f"{seconds:.1f}s"
    return f"{seconds * 1000:.1f}ms"


def render_status(status: CampaignStatus) -> str:
    """A terminal-friendly multi-line rendering of one status snapshot."""
    lines: list[str] = [f"campaign: {status.directory}"]

    total = "?" if status.total_chunks is None else str(status.total_chunks)
    progress = f"chunks: {status.canonical_chunks}/{total} canonical"
    if status.worker_only_chunks:
        progress += f" (+{status.worker_only_chunks} durable in worker stores)"
    if status.finished:
        progress += "  [complete]"
    lines.append(progress)
    lines.append(f"rows persisted: {status.rows}")

    if status.rows_per_second is not None:
        throughput = f"throughput: {status.rows_per_second:.1f} rows/s all-time"
        if status.recent_rows_per_second is not None and not status.finished:
            throughput += (
                f", {status.recent_rows_per_second:.1f} rows/s"
                f" last {RECENT_WINDOW_SECONDS:.0f}s"
            )
        if status.eta_seconds is not None:
            throughput += f", ETA {_format_seconds(status.eta_seconds)}"
        lines.append(throughput)

    if status.worker_chunks:
        summary = ", ".join(
            f"{owner} ({count} chunk(s))" for owner, count in sorted(status.worker_chunks.items())
        )
        lines.append(f"worker stores: {summary}")

    if status.leases:
        lines.append("leases:")
        for lease in status.leases:
            health = (
                "EXPIRED"
                if lease.expired
                else f"heartbeat {_format_seconds(lease.heartbeat_age)} ago"
            )
            lines.append(
                f"  chunk {lease.chunk}: owner {lease.owner}, epoch {lease.epoch}, {health}"
            )

    if not status.has_telemetry:
        lines.append("telemetry: none recorded (run with --telemetry on)")
        return "\n".join(lines)

    if status.phases:
        lines.append("phases:")
        for name, total_seconds, count in status.phases:
            lines.append(f"  {name:10s} {_format_seconds(total_seconds):>8s}  {count} span(s)")

    for kernel, stats in sorted(status.kernels.items()):
        calls = int(stats.get("calls", 0))
        detail = [f"{calls} call(s)"]
        if "pivots" in stats:
            detail.append(f"{int(stats['pivots'])} pivot(s)")
        mask = stats.get("mask_slots", 0.0)
        if mask:
            detail.append(f"mask occupancy {100.0 * stats.get('active_slots', 0.0) / mask:.1f}%")
        if stats.get("fallbacks"):
            detail.append(f"{int(stats['fallbacks'])} scalar fallback(s)")
        lines.append(f"kernel {kernel}: {', '.join(detail)}")

    writers = f"{len(status.owners)} writer(s)" if status.owners else "metrics pending"
    telemetry_line = f"telemetry: {writers}"
    if status.dropped_telemetry_lines:
        telemetry_line += f", {status.dropped_telemetry_lines} torn line(s) dropped"
    lines.append(telemetry_line)
    return "\n".join(lines)


def follow_status(
    campaign_dir: str | Path,
    interval: float = 2.0,
    stream: TextIO | None = None,
    max_updates: int | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> CampaignStatus:
    """Re-render the status every ``interval`` seconds until complete.

    ``max_updates`` bounds the loop (tests and bounded watches); the
    final status is returned either way.
    """
    import sys

    stream = stream if stream is not None else sys.stdout
    updates = 0
    while True:
        status = collect_status(campaign_dir)
        print(render_status(status), file=stream, flush=True)
        updates += 1
        if status.finished:
            return status
        if max_updates is not None and updates >= max_updates:
            return status
        print("---", file=stream, flush=True)
        sleep(interval)
