"""Declarative description of a scenario space.

A :class:`ScenarioSpec` describes everything needed to regenerate a
campaign deterministically: the platform family (distributions and
correlations of the per-worker speed-up factors, worker count, draw count,
seed, scale factors), the workload and its grid (matrix sizes, bus ``w/c``
ratios or probe message sizes), the heuristics to compare, the noise model
of the measured series and the port model.  Specs are plain
frozen dataclasses that round-trip through JSON (:meth:`ScenarioSpec.
as_dict` / :meth:`ScenarioSpec.from_dict`), and their canonical JSON form
is hashed (:func:`spec_hash`) to key the persistent result store — two
campaigns with the same spec share results, whatever the spec was named.

The platform-family building blocks — :class:`Distribution` and
:class:`PlatformFamily` — live in :mod:`repro.workloads.sampling` (below
the workload layer, next to the vectorised sampler that draws them) and
are re-exported here unchanged: the spec layer adds the campaign fields
on top.

The module also ships :data:`NAMED_SPACES`, a library of ready-made
spaces: the paper's Figure 10-13 factor sets re-expressed as specs (the
sampler reproduces their platform draws bit for bit), three new families
(bandwidth-correlated, bimodal two-cluster, power-law heterogeneity), a
10k-platform mega campaign, and — since the two-port evaluation chain —
two-port variants of the paper's campaigns plus a two-port mega family
(``one_port: false`` flows through the whole array-native stack).  The
:func:`product_specs` grid combinator derives whole families of variant
spaces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Mapping, Sequence

from repro.exceptions import ExperimentError
from repro.workloads.matrices import LINEARITY_COMM_FACTORS, LINEARITY_MESSAGE_SIZES_MB
from repro.workloads.platforms import FIG09_COMM_FACTORS, FIG09_COMP_FACTORS
from repro.workloads.sampling import (
    MATRIX_WORKLOAD,
    PAPER_UNIFORM,
    UNIT,
    Distribution,
    PlatformFamily,
    Workload,
)

__all__ = [
    "Distribution",
    "PlatformFamily",
    "ScenarioSpec",
    "Workload",
    "MATRIX_WORKLOAD",
    "EVALUABLE_HEURISTICS",
    "NOISE_MODELS",
    "NAMED_SPACES",
    "named_space",
    "available_spaces",
    "product_specs",
    "canonical_hash",
    "spec_hash",
]


#: Heuristics a scenario campaign can evaluate at the array level: the
#: LP-backed FIFO orderings of the campaign engine plus the LIFO chain
#: (closed-form under one-port, LP-backed under two-port) — mirrors
#: ``repro.experiments.campaign_engine``.
EVALUABLE_HEURISTICS = ("INC_C", "INC_W", "DEC_C", "PLATFORM_ORDER", "OPT_FIFO", "LIFO")

#: Noise models a spec may name for its measured ("real") series; ``None``
#: turns measurement off (LP-only campaigns).  The factories live in
#: :mod:`repro.scenarios.runner` — the spec layer only validates the key.
NOISE_MODELS = ("default", "overhead")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario space: family x workload grid.

    A *scenario* is one (drawn platform, grid point) cell; the space holds
    ``family.count * len(grid)`` of them.  ``workload`` selects what a cell
    computes: the default matrix-product application (grid =
    ``matrix_sizes``), a ``bus`` workload swept over ``w/c`` ratios
    (Theorem 2 — the grid and the shared link costs live in the workload
    parameters), or a ``probe`` workload replaying the Figure 8 linearity
    transfers (grid = message sizes; no LPs, no noise).  ``heuristics`` are
    evaluated on every cell with the scenario LP (one-port ``LIFO`` by its
    closed form) and normalised by the ``reference`` heuristic's LP
    prediction, exactly like the paper's campaign figures.  ``noise`` names
    the noise model of the simulated measurements (``None`` runs LP-only,
    which is what mega-campaigns typically want).  ``one_port`` selects the
    communication model: ``True`` is the paper's one-port master, ``False``
    the two-port master of the companion report (independent send/receive
    ports — the scenario LP drops coupling constraint (2b) and the
    measured series replay the merge-ordered two-port timeline).
    """

    name: str
    family: PlatformFamily
    matrix_sizes: tuple[int, ...] = ()
    heuristics: tuple[str, ...] = ("INC_C", "INC_W", "LIFO")
    reference: str = "INC_C"
    total_tasks: int = 1000
    noise: str | None = "default"
    one_port: bool = True
    workload: Workload = MATRIX_WORKLOAD
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("a scenario spec needs a name")
        kind = self.workload.kind
        if kind == "matrix":
            if not self.matrix_sizes:
                raise ExperimentError("a scenario spec needs at least one matrix size")
            if any(int(size) <= 0 for size in self.matrix_sizes):
                raise ExperimentError("matrix sizes must be positive")
            object.__setattr__(
                self, "matrix_sizes", tuple(int(size) for size in self.matrix_sizes)
            )
        elif self.matrix_sizes:
            raise ExperimentError(
                f"matrix_sizes apply to the matrix workload only (this is a {kind!r} "
                f"workload; its grid lives in the workload parameters)"
            )
        object.__setattr__(self, "total_tasks", int(self.total_tasks))
        object.__setattr__(self, "one_port", bool(self.one_port))
        if kind == "bus":
            if not self.family.comm.is_constant or self.family.comm.kind == "fixed":
                raise ExperimentError(
                    "bus workloads need identical links: the family's comm "
                    "distribution must be constant"
                )
            if self.family.return_comm is not None:
                raise ExperimentError(
                    "bus workloads draw no independent return links (d = z * c)"
                )
        if kind == "probe":
            # Probes measure raw transfers: no LPs, no heuristics, and a
            # deterministic timeline.  Normalise the unused axes so every
            # authoring style of the same probe space hashes identically.
            if self.noise is not None:
                raise ExperimentError("probe workloads are noise-free; set noise to null")
            if not self.one_port:
                raise ExperimentError("probe workloads run through the one-port master")
            object.__setattr__(self, "heuristics", ())
            object.__setattr__(self, "reference", "")
        else:
            if not self.heuristics:
                raise ExperimentError("a scenario spec needs at least one heuristic")
            unknown = [name for name in self.heuristics if name not in EVALUABLE_HEURISTICS]
            if unknown:
                raise ExperimentError(
                    f"unknown heuristics {unknown}; evaluable: {list(EVALUABLE_HEURISTICS)}"
                )
            if self.reference not in self.heuristics:
                raise ExperimentError(
                    f"the reference heuristic {self.reference!r} must be one of the evaluated ones"
                )
            if self.noise is not None and self.noise not in NOISE_MODELS:
                raise ExperimentError(
                    f"unknown noise model {self.noise!r}; "
                    f"expected one of {list(NOISE_MODELS)} or null"
                )
        if self.total_tasks <= 0:
            raise ExperimentError("total_tasks must be positive")

    @property
    def grid(self) -> tuple:
        """The x-axis of the space, whatever the workload calls it.

        Matrix sizes for the matrix workload, ``w/c`` ratios for a bus
        workload, message sizes (MB) for a probe — one scenario cell per
        (platform draw, grid point) either way.
        """
        kind = self.workload.kind
        if kind == "matrix":
            return self.matrix_sizes
        if kind == "bus":
            return self.workload.param("ratios")
        return self.workload.param("message_sizes_mb")

    @property
    def effective_total_tasks(self) -> int:
        """Tasks per scenario: the workload's override, else the spec field."""
        override = self.workload.param("total_tasks", None)
        return self.total_tasks if override is None else int(override)

    @property
    def scenario_count(self) -> int:
        """Number of (platform, grid point) cells in the space."""
        return self.family.count * len(self.grid)

    def derive(self, name: str | None = None, **overrides) -> "ScenarioSpec":
        """A copy with field overrides; family fields are routed through.

        Keyword names matching a :class:`PlatformFamily` field (``count``,
        ``seed``, ``workers``, ``comm_scale`` …) update the family, the
        rest update the spec itself — the single-spec form of the
        :func:`product_specs` combinator.
        """
        family_fields = {f.name for f in fields(PlatformFamily)}
        family_overrides = {k: v for k, v in overrides.items() if k in family_fields}
        spec_overrides = {k: v for k, v in overrides.items() if k not in family_fields}
        unknown = [k for k in spec_overrides if k not in {f.name for f in fields(ScenarioSpec)}]
        if unknown:
            raise ExperimentError(f"unknown spec fields {unknown}")
        family = replace(self.family, **family_overrides) if family_overrides else self.family
        if "matrix_sizes" in spec_overrides:
            spec_overrides["matrix_sizes"] = tuple(spec_overrides["matrix_sizes"])
        if "heuristics" in spec_overrides:
            spec_overrides["heuristics"] = tuple(spec_overrides["heuristics"])
        if "workload" in spec_overrides:
            workload = spec_overrides["workload"]
            if isinstance(workload, Mapping):
                workload = Workload.from_dict(workload)
            spec_overrides["workload"] = workload
            # Switching off the matrix workload moves the grid into the
            # workload parameters; drop the stale matrix grid unless the
            # caller overrides it explicitly.
            if workload.kind != "matrix" and "matrix_sizes" not in spec_overrides:
                spec_overrides["matrix_sizes"] = ()
        return replace(self, name=name or self.name, family=family, **spec_overrides)

    def as_dict(self) -> dict:
        data = {
            "name": self.name,
            "description": self.description,
            "family": self.family.as_dict(),
            "matrix_sizes": list(self.matrix_sizes),
            "heuristics": list(self.heuristics),
            "reference": self.reference,
            "total_tasks": self.total_tasks,
            "noise": self.noise,
            "one_port": self.one_port,
        }
        if self.workload != MATRIX_WORKLOAD:
            # The default matrix workload is *omitted*: every spec document
            # written before the workload axis existed — and its content
            # hash, which keys the persistent store — stays valid.
            data["workload"] = self.workload.as_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        workload = (
            Workload.from_dict(data["workload"]) if "workload" in data else MATRIX_WORKLOAD
        )
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            family=PlatformFamily.from_dict(data["family"]),
            matrix_sizes=tuple(int(size) for size in data.get("matrix_sizes", ())),
            heuristics=tuple(str(name) for name in data.get("heuristics", ("INC_C", "INC_W", "LIFO"))),
            reference=str(data.get("reference", "INC_C")),
            total_tasks=int(data.get("total_tasks", 1000)),
            noise=data.get("noise", "default"),
            one_port=bool(data.get("one_port", True)),
            workload=workload,
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def canonical_hash(payload, length: int = 12) -> str:
    """Content hash of a JSON-able payload (first ``length`` hex chars).

    The canonical form is sorted-key, separator-free JSON, so semantically
    identical payloads hash equal whatever dict order or whitespace they
    were built with.  Numeric canonicalisation is the *caller's* contract:
    coerce every number that may arrive as ``int`` or ``float`` to ``float``
    before hashing (``json.dumps`` writes ``1`` and ``1.0`` differently).
    This is the one hashing primitive shared by the spec layer
    (:func:`spec_hash`) and the query-service cache keys
    (:mod:`repro.api.cache`).
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]


def spec_hash(spec: ScenarioSpec) -> str:
    """Content hash identifying a spec's *results* (12 hex chars).

    ``name`` and ``description`` are cosmetic and excluded: renaming a
    space must not orphan its stored results.  Everything that affects a
    single computed value — distributions, seeds, sizes, heuristics, noise,
    port model — is included via the canonical sorted-JSON form.
    """
    payload = spec.as_dict()
    payload.pop("name", None)
    payload.pop("description", None)
    return canonical_hash(payload)


def product_specs(base: ScenarioSpec, **axes: Sequence) -> list[ScenarioSpec]:
    """Grid combinator: the cartesian product of override axes.

    Each axis maps a spec or family field name to the values it sweeps;
    the result is one derived spec per grid point, named
    ``<base>/<field>=<value>/...`` in axis order.  Example::

        product_specs(named_space("fig12"), workers=(5, 11, 25), seed=(0, 1))

    yields six specs covering the 3x2 grid.
    """
    specs = [base]
    for axis, values in axes.items():
        if not values:
            raise ExperimentError(f"axis {axis!r} must provide at least one value")
        specs = [
            spec.derive(name=f"{spec.name}/{axis}={value:g}" if isinstance(value, (int, float))
                        else f"{spec.name}/{axis}={value}", **{axis: value})
            for spec in specs
            for value in values
        ]
    return specs


def _paper_sizes() -> tuple[int, ...]:
    return tuple(range(40, 201, 20))


def _one_port_spaces() -> tuple[ScenarioSpec, ...]:
    return (
        ScenarioSpec(
            name="fig10",
            description="Paper Figure 10: 50 homogeneous 11-worker platforms",
            family=PlatformFamily(workers=11, count=50, seed=10),
            matrix_sizes=_paper_sizes(),
            heuristics=("INC_C", "LIFO"),
        ),
        ScenarioSpec(
            name="fig11",
            description="Paper Figure 11: homogeneous links, uniform(1,10) CPUs",
            family=PlatformFamily(workers=11, count=50, seed=11, comp=PAPER_UNIFORM),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="fig12",
            description="Paper Figure 12: fully heterogeneous uniform(1,10) stars",
            family=PlatformFamily(
                workers=11, count=50, seed=12, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="fig13a",
            description="Paper Figure 13a: heterogeneous stars, computation x10",
            family=PlatformFamily(
                workers=11, count=50, seed=12, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM,
                comp_scale=10.0,
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="fig13b",
            description="Paper Figure 13b: heterogeneous stars, communication x10",
            family=PlatformFamily(
                workers=11, count=50, seed=12, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM,
                comm_scale=10.0,
            ),
            matrix_sizes=_paper_sizes(),
            noise="overhead",
        ),
        ScenarioSpec(
            name="bandwidth-correlated",
            description="New family: fast links go with fast CPUs (rho=0.85)",
            family=PlatformFamily(
                workers=11, count=50, seed=42, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM,
                correlation=0.85,
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="bimodal",
            description="New family: two-cluster platforms (30% fast nodes)",
            family=PlatformFamily(
                workers=11, count=50, seed=43,
                comm=Distribution.of("bimodal", slow=1.0, fast=10.0, fast_fraction=0.3),
                comp=Distribution.of("bimodal", slow=1.0, fast=8.0, fast_fraction=0.3),
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="power-law",
            description="New family: Pareto-tailed CPU heterogeneity over uniform links",
            family=PlatformFamily(
                workers=11, count=50, seed=44, comm=PAPER_UNIFORM,
                comp=Distribution.of("powerlaw", minimum=1.0, alpha=1.1, cap=100.0),
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="mega-uniform",
            description="Mega campaign: 10k heterogeneous platforms, LP-only",
            family=PlatformFamily(
                workers=11, count=10_000, seed=7, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM
            ),
            matrix_sizes=(120,),
            noise=None,
        ),
    )


def _two_port_spaces(one_port_spaces: Sequence[ScenarioSpec]) -> list[ScenarioSpec]:
    """Two-port variants of the paper campaigns and the mega family.

    Same factor sets, same seeds, same sizes — only the communication
    model changes, so a ``fig12`` / ``fig12-twoport`` pair isolates the
    coupling constraint's contribution exactly like the paper's
    one-port-vs-two-port comparison.
    """
    variants = []
    by_name = {space.name: space for space in one_port_spaces}
    for name in ("fig10", "fig11", "fig12", "fig13a", "fig13b", "mega-uniform"):
        base = by_name[name]
        variants.append(
            base.derive(
                name=f"{name}-twoport",
                one_port=False,
                description=f"{base.description} — two-port master (no coupling constraint)",
            )
        )
    return variants


def _workload_spaces() -> tuple[ScenarioSpec, ...]:
    """The non-matrix workloads: bus sweeps and the fig08/09 probe grids.

    These re-express the remaining hand-coded experiment drivers as
    declarative spaces, pinned bit-identical to the legacy paths by the
    test-suite: ``bus-theorem2`` / ``bus-hetero`` against the closed forms
    of :mod:`repro.core.bus` (and the scenario LP they compare to),
    ``fig08-probe`` against the Figure 8 linearity driver's measured
    transfers, ``fig09-trace`` against the Figure 9 optimal-FIFO solve.
    """
    return (
        ScenarioSpec(
            name="bus-theorem2",
            description="Theorem 2 sweep: homogeneous 8-worker bus over w/c ratios",
            family=PlatformFamily(workers=8, count=1, seed=0),
            workload=Workload.of(
                "bus", ratios=(0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 40.0, 80.0)
            ),
            heuristics=("INC_C", "LIFO"),
            noise=None,
        ),
        ScenarioSpec(
            name="bus-hetero",
            description="Bus workload: shared links, uniform(1,10) CPUs, measured series",
            family=PlatformFamily(workers=8, count=50, seed=21, comp=PAPER_UNIFORM),
            workload=Workload.of("bus", ratios=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 40.0)),
        ),
        ScenarioSpec(
            name="fig08-probe",
            description="Paper Figure 8: linearity probe grid (raw transfers, 5 workers)",
            family=PlatformFamily(
                workers=5, count=1, seed=0,
                comm=Distribution.of("fixed", values=LINEARITY_COMM_FACTORS),
            ),
            workload=Workload.of("probe", message_sizes_mb=LINEARITY_MESSAGE_SIZES_MB),
            noise=None,
        ),
        ScenarioSpec(
            name="fig09-trace",
            description="Paper Figure 9: resource-selection star, optimal FIFO (one draw)",
            family=PlatformFamily(
                workers=5, count=1, seed=0,
                comm=Distribution.of("fixed", values=FIG09_COMM_FACTORS),
                comp=Distribution.of("fixed", values=FIG09_COMP_FACTORS),
            ),
            matrix_sizes=(200,),
            heuristics=("OPT_FIFO",),
            reference="OPT_FIFO",
            total_tasks=200,
            noise=None,
        ),
    )


_SPACES = _one_port_spaces()

#: Library of named scenario spaces.  The fig* entries re-express the
#: paper's campaign factor sets: their platform draws are bit-identical to
#: ``repro.workloads.platforms.campaign_factors`` (pinned by the
#: test-suite), so a sampler-fed campaign reproduces the figures exactly.
#: Every ``*-twoport`` entry is the same space under the two-port master;
#: the ``bus-*`` and ``fig08-probe``/``fig09-trace`` entries cover the
#: non-matrix workloads (Theorem 2 sweeps and the probe figures).
NAMED_SPACES: dict[str, ScenarioSpec] = {
    space.name: space
    for space in (*_SPACES, *_two_port_spaces(_SPACES), *_workload_spaces())
}


def available_spaces() -> list[str]:
    """Names of the built-in scenario spaces."""
    return sorted(NAMED_SPACES)


def named_space(name: str) -> ScenarioSpec:
    """Look one built-in space up by name."""
    try:
        return NAMED_SPACES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario space {name!r}; available: {available_spaces()}"
        ) from None
