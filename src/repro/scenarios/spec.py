"""Declarative description of a scenario space.

A :class:`ScenarioSpec` describes everything needed to regenerate a
campaign deterministically: the platform family (distributions and
correlations of the per-worker speed-up factors, worker count, draw count,
seed, scale factors), the matrix-size grid, the heuristics to compare, the
noise model of the measured series and the port model.  Specs are plain
frozen dataclasses that round-trip through JSON (:meth:`ScenarioSpec.
as_dict` / :meth:`ScenarioSpec.from_dict`), and their canonical JSON form
is hashed (:func:`spec_hash`) to key the persistent result store — two
campaigns with the same spec share results, whatever the spec was named.

The module also ships :data:`NAMED_SPACES`, a library of ready-made
spaces: the paper's Figure 10-13 factor sets re-expressed as specs (the
sampler reproduces their platform draws bit for bit), three new families
(bandwidth-correlated, bimodal two-cluster, power-law heterogeneity) and a
10k-platform mega campaign, plus the :func:`product_specs` grid combinator
to derive whole families of variant spaces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Mapping, Sequence

from repro.exceptions import ExperimentError

__all__ = [
    "Distribution",
    "PlatformFamily",
    "ScenarioSpec",
    "EVALUABLE_HEURISTICS",
    "NOISE_MODELS",
    "NAMED_SPACES",
    "named_space",
    "available_spaces",
    "product_specs",
    "spec_hash",
]


#: Heuristics a scenario campaign can evaluate at the array level: the
#: LP-backed FIFO orderings of the campaign engine plus the closed-form
#: LIFO chain (mirrors ``repro.experiments.campaign_engine``).
EVALUABLE_HEURISTICS = ("INC_C", "INC_W", "DEC_C", "PLATFORM_ORDER", "OPT_FIFO", "LIFO")

#: Noise models a spec may name for its measured ("real") series; ``None``
#: turns measurement off (LP-only campaigns).  The factories live in
#: :mod:`repro.scenarios.runner` — the spec layer only validates the key.
NOISE_MODELS = ("default", "overhead")

#: Factor-distribution kinds understood by the sampler, with their
#: required parameters (optional parameters in the second tuple).
_DISTRIBUTION_KINDS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "constant": (("value",), ()),
    "uniform": (("low", "high"), ()),
    "bimodal": (("slow", "fast", "fast_fraction"), ()),
    "powerlaw": (("minimum", "alpha"), ("cap",)),
}


@dataclass(frozen=True)
class Distribution:
    """How one per-worker speed-up factor is drawn.

    ``kind`` selects the sampler; ``params`` are the kind's parameters as a
    sorted tuple of ``(name, value)`` pairs (kept hashable for frozen
    dataclass semantics — use :meth:`of` and :meth:`param` rather than
    touching the tuple).  Supported kinds:

    * ``constant(value)`` — every worker gets the same factor (the paper's
      homogeneous dimensions);
    * ``uniform(low, high)`` — i.i.d. uniform factors (the paper's
      heterogeneous dimensions draw from ``uniform(1, 10)``);
    * ``bimodal(slow, fast, fast_fraction)`` — each worker is ``fast`` with
      probability ``fast_fraction``, else ``slow`` (two-cluster platforms);
    * ``powerlaw(minimum, alpha[, cap])`` — Pareto-tailed factors
      ``minimum * (1 + Pareto(alpha))``, optionally capped (a few very
      fast nodes over a slow fleet).
    """

    kind: str
    params: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if self.kind not in _DISTRIBUTION_KINDS:
            raise ExperimentError(
                f"unknown distribution kind {self.kind!r}; "
                f"expected one of {sorted(_DISTRIBUTION_KINDS)}"
            )
        required, optional = _DISTRIBUTION_KINDS[self.kind]
        given = {name for name, _ in self.params}
        missing = set(required) - given
        unknown = given - set(required) - set(optional)
        if missing or unknown:
            raise ExperimentError(
                f"distribution {self.kind!r}: missing parameters {sorted(missing)}, "
                f"unknown parameters {sorted(unknown)}"
            )
        self._validate_support()

    def _validate_support(self) -> None:
        """Factors divide positive costs, so every distribution must only
        ever produce strictly positive values."""
        kind = self.kind
        if kind == "constant" and self.param("value") <= 0:
            raise ExperimentError("constant factor must be positive")
        elif kind == "uniform":
            low, high = self.param("low"), self.param("high")
            if low <= 0 or high < low:
                raise ExperimentError("uniform factors need 0 < low <= high")
        elif kind == "bimodal":
            slow, fast = self.param("slow"), self.param("fast")
            fraction = self.param("fast_fraction")
            if slow <= 0 or fast <= 0:
                raise ExperimentError("bimodal cluster factors must be positive")
            if not 0.0 <= fraction <= 1.0:
                raise ExperimentError("fast_fraction must lie in [0, 1]")
        elif kind == "powerlaw":
            minimum, alpha = self.param("minimum"), self.param("alpha")
            cap = self.param("cap", None)
            if minimum <= 0 or alpha <= 0:
                raise ExperimentError("powerlaw needs positive minimum and alpha")
            if cap is not None and cap < minimum:
                raise ExperimentError("powerlaw cap must be at least the minimum")

    @classmethod
    def of(cls, kind: str, **params: float) -> "Distribution":
        """Build a distribution from keyword parameters.

        Values are coerced to float so that ``of(low=1)`` and
        ``of(low=1.0)`` are the same distribution — equality, JSON form
        and :func:`spec_hash` must not depend on the authoring style.
        """
        return cls(
            kind=kind,
            params=tuple(sorted((name, float(value)) for name, value in params.items())),
        )

    def param(self, name: str, default: float | None = ...) -> float | None:  # type: ignore[assignment]
        """Look one parameter up (raises on absence unless a default is given)."""
        for key, value in self.params:
            if key == name:
                return value
        if default is ...:
            raise ExperimentError(f"distribution {self.kind!r} has no parameter {name!r}")
        return default

    @property
    def is_constant(self) -> bool:
        """Whether sampling consumes no random stream."""
        return self.kind == "constant"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Distribution":
        return cls.of(str(data["kind"]), **{str(k): v for k, v in data.get("params", {}).items()})


#: The reference factor (speed-up 1) used for homogeneous dimensions.
UNIT = Distribution.of("constant", value=1.0)

#: The paper's heterogeneous factor range, as a distribution.
PAPER_UNIFORM = Distribution.of("uniform", low=1.0, high=10.0)


@dataclass(frozen=True)
class PlatformFamily:
    """Distribution of one random platform family.

    ``comm`` and ``comp`` describe the per-worker communication and
    computation speed-up factors (the paper's Section 5.2 methodology: a
    factor ``k`` divides the reference per-unit cost by ``k``).
    ``return_comm``, when given, draws an *independent* speed-up for the
    return link — the default ``None`` keeps the paper's model where the
    return message travels the same link (``d = z * c``).  ``correlation``
    couples the computation draw to the communication draw through a
    Gaussian copula (both must be uniform; the declared marginals are
    preserved exactly): 1 means comp is a monotone function of comm (fast
    links imply fast CPUs), -1 the opposite, and intermediate values set
    the copula parameter — the realised correlation between the factors is
    the copula's rank correlation ``(6/pi) * asin(rho/2)``.
    ``comm_scale``/``comp_scale`` multiply every drawn factor, the x10
    scalings of Section 5.3.3.
    """

    workers: int
    count: int
    seed: int
    comm: Distribution = UNIT
    comp: Distribution = UNIT
    return_comm: Distribution | None = None
    correlation: float = 0.0
    comm_scale: float = 1.0
    comp_scale: float = 1.0

    def __post_init__(self) -> None:
        # Canonicalise the numeric fields (int literals are equivalent to
        # their float forms and must hash identically).
        object.__setattr__(self, "workers", int(self.workers))
        object.__setattr__(self, "count", int(self.count))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "correlation", float(self.correlation))
        object.__setattr__(self, "comm_scale", float(self.comm_scale))
        object.__setattr__(self, "comp_scale", float(self.comp_scale))
        if self.workers <= 0:
            raise ExperimentError("a platform family needs at least one worker")
        if self.count <= 0:
            raise ExperimentError("a platform family needs at least one draw")
        if not -1.0 <= self.correlation <= 1.0:
            raise ExperimentError("correlation must lie in [-1, 1]")
        if self.correlation != 0.0 and not (
            self.comm.kind == "uniform" and self.comp.kind == "uniform"
        ):
            raise ExperimentError(
                "correlated factor draws are defined for uniform comm/comp distributions"
            )
        if self.comm_scale <= 0 or self.comp_scale <= 0:
            raise ExperimentError("scale factors must be positive")

    def as_dict(self) -> dict:
        data = {
            "workers": self.workers,
            "count": self.count,
            "seed": self.seed,
            "comm": self.comm.as_dict(),
            "comp": self.comp.as_dict(),
            "correlation": self.correlation,
            "comm_scale": self.comm_scale,
            "comp_scale": self.comp_scale,
        }
        if self.return_comm is not None:
            data["return_comm"] = self.return_comm.as_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlatformFamily":
        return cls(
            workers=int(data["workers"]),
            count=int(data["count"]),
            seed=int(data["seed"]),
            comm=Distribution.from_dict(data.get("comm", UNIT.as_dict())),
            comp=Distribution.from_dict(data.get("comp", UNIT.as_dict())),
            return_comm=(
                Distribution.from_dict(data["return_comm"]) if "return_comm" in data else None
            ),
            correlation=float(data.get("correlation", 0.0)),
            comm_scale=float(data.get("comm_scale", 1.0)),
            comp_scale=float(data.get("comp_scale", 1.0)),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario space: family x matrix-size grid.

    A *scenario* is one (drawn platform, matrix size) cell; the space holds
    ``family.count * len(matrix_sizes)`` of them.  ``heuristics`` are
    evaluated on every cell with the scenario LP (``LIFO`` by its closed
    form) and normalised by the ``reference`` heuristic's LP prediction,
    exactly like the paper's campaign figures.  ``noise`` names the noise
    model of the simulated measurements (``None`` runs LP-only, which is
    what mega-campaigns typically want).
    """

    name: str
    family: PlatformFamily
    matrix_sizes: tuple[int, ...]
    heuristics: tuple[str, ...] = ("INC_C", "INC_W", "LIFO")
    reference: str = "INC_C"
    total_tasks: int = 1000
    noise: str | None = "default"
    one_port: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("a scenario spec needs a name")
        if not self.matrix_sizes:
            raise ExperimentError("a scenario spec needs at least one matrix size")
        if any(int(size) <= 0 for size in self.matrix_sizes):
            raise ExperimentError("matrix sizes must be positive")
        object.__setattr__(self, "matrix_sizes", tuple(int(size) for size in self.matrix_sizes))
        object.__setattr__(self, "total_tasks", int(self.total_tasks))
        if not self.heuristics:
            raise ExperimentError("a scenario spec needs at least one heuristic")
        unknown = [name for name in self.heuristics if name not in EVALUABLE_HEURISTICS]
        if unknown:
            raise ExperimentError(
                f"unknown heuristics {unknown}; evaluable: {list(EVALUABLE_HEURISTICS)}"
            )
        if self.reference not in self.heuristics:
            raise ExperimentError(
                f"the reference heuristic {self.reference!r} must be one of the evaluated ones"
            )
        if self.total_tasks <= 0:
            raise ExperimentError("total_tasks must be positive")
        if self.noise is not None and self.noise not in NOISE_MODELS:
            raise ExperimentError(
                f"unknown noise model {self.noise!r}; expected one of {list(NOISE_MODELS)} or null"
            )
        if not self.one_port:
            # The runner's whole evaluation chain — FIFO LP build, the
            # closed-form LIFO chain and the measurement replay — is
            # one-port; accepting two-port specs would silently return
            # one-port numbers for them.  The field stays in the JSON
            # format so a future two-port runner is a value change, not a
            # format change.
            raise ExperimentError(
                "two-port scenario spaces are not supported yet; "
                "the campaign evaluation chain is one-port"
            )

    @property
    def scenario_count(self) -> int:
        """Number of (platform, size) cells in the space."""
        return self.family.count * len(self.matrix_sizes)

    def derive(self, name: str | None = None, **overrides) -> "ScenarioSpec":
        """A copy with field overrides; family fields are routed through.

        Keyword names matching a :class:`PlatformFamily` field (``count``,
        ``seed``, ``workers``, ``comm_scale`` …) update the family, the
        rest update the spec itself — the single-spec form of the
        :func:`product_specs` combinator.
        """
        family_fields = {f.name for f in fields(PlatformFamily)}
        family_overrides = {k: v for k, v in overrides.items() if k in family_fields}
        spec_overrides = {k: v for k, v in overrides.items() if k not in family_fields}
        unknown = [k for k in spec_overrides if k not in {f.name for f in fields(ScenarioSpec)}]
        if unknown:
            raise ExperimentError(f"unknown spec fields {unknown}")
        family = replace(self.family, **family_overrides) if family_overrides else self.family
        if "matrix_sizes" in spec_overrides:
            spec_overrides["matrix_sizes"] = tuple(spec_overrides["matrix_sizes"])
        if "heuristics" in spec_overrides:
            spec_overrides["heuristics"] = tuple(spec_overrides["heuristics"])
        return replace(self, name=name or self.name, family=family, **spec_overrides)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "family": self.family.as_dict(),
            "matrix_sizes": list(self.matrix_sizes),
            "heuristics": list(self.heuristics),
            "reference": self.reference,
            "total_tasks": self.total_tasks,
            "noise": self.noise,
            "one_port": self.one_port,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            family=PlatformFamily.from_dict(data["family"]),
            matrix_sizes=tuple(int(size) for size in data["matrix_sizes"]),
            heuristics=tuple(str(name) for name in data.get("heuristics", ("INC_C", "INC_W", "LIFO"))),
            reference=str(data.get("reference", "INC_C")),
            total_tasks=int(data.get("total_tasks", 1000)),
            noise=data.get("noise", "default"),
            one_port=bool(data.get("one_port", True)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def spec_hash(spec: ScenarioSpec) -> str:
    """Content hash identifying a spec's *results* (12 hex chars).

    ``name`` and ``description`` are cosmetic and excluded: renaming a
    space must not orphan its stored results.  Everything that affects a
    single computed value — distributions, seeds, sizes, heuristics, noise,
    port model — is included via the canonical sorted-JSON form.
    """
    payload = spec.as_dict()
    payload.pop("name", None)
    payload.pop("description", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def product_specs(base: ScenarioSpec, **axes: Sequence) -> list[ScenarioSpec]:
    """Grid combinator: the cartesian product of override axes.

    Each axis maps a spec or family field name to the values it sweeps;
    the result is one derived spec per grid point, named
    ``<base>/<field>=<value>/...`` in axis order.  Example::

        product_specs(named_space("fig12"), workers=(5, 11, 25), seed=(0, 1))

    yields six specs covering the 3x2 grid.
    """
    specs = [base]
    for axis, values in axes.items():
        if not values:
            raise ExperimentError(f"axis {axis!r} must provide at least one value")
        specs = [
            spec.derive(name=f"{spec.name}/{axis}={value:g}" if isinstance(value, (int, float))
                        else f"{spec.name}/{axis}={value}", **{axis: value})
            for spec in specs
            for value in values
        ]
    return specs


def _paper_sizes() -> tuple[int, ...]:
    return tuple(range(40, 201, 20))


#: Library of named scenario spaces.  The fig* entries re-express the
#: paper's campaign factor sets: their platform draws are bit-identical to
#: ``repro.workloads.platforms.campaign_factors`` (pinned by the
#: test-suite), so a sampler-fed campaign reproduces the figures exactly.
NAMED_SPACES: dict[str, ScenarioSpec] = {
    space.name: space
    for space in (
        ScenarioSpec(
            name="fig10",
            description="Paper Figure 10: 50 homogeneous 11-worker platforms",
            family=PlatformFamily(workers=11, count=50, seed=10),
            matrix_sizes=_paper_sizes(),
            heuristics=("INC_C", "LIFO"),
        ),
        ScenarioSpec(
            name="fig11",
            description="Paper Figure 11: homogeneous links, uniform(1,10) CPUs",
            family=PlatformFamily(workers=11, count=50, seed=11, comp=PAPER_UNIFORM),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="fig12",
            description="Paper Figure 12: fully heterogeneous uniform(1,10) stars",
            family=PlatformFamily(
                workers=11, count=50, seed=12, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="fig13a",
            description="Paper Figure 13a: heterogeneous stars, computation x10",
            family=PlatformFamily(
                workers=11, count=50, seed=12, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM,
                comp_scale=10.0,
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="fig13b",
            description="Paper Figure 13b: heterogeneous stars, communication x10",
            family=PlatformFamily(
                workers=11, count=50, seed=12, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM,
                comm_scale=10.0,
            ),
            matrix_sizes=_paper_sizes(),
            noise="overhead",
        ),
        ScenarioSpec(
            name="bandwidth-correlated",
            description="New family: fast links go with fast CPUs (rho=0.85)",
            family=PlatformFamily(
                workers=11, count=50, seed=42, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM,
                correlation=0.85,
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="bimodal",
            description="New family: two-cluster platforms (30% fast nodes)",
            family=PlatformFamily(
                workers=11, count=50, seed=43,
                comm=Distribution.of("bimodal", slow=1.0, fast=10.0, fast_fraction=0.3),
                comp=Distribution.of("bimodal", slow=1.0, fast=8.0, fast_fraction=0.3),
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="power-law",
            description="New family: Pareto-tailed CPU heterogeneity over uniform links",
            family=PlatformFamily(
                workers=11, count=50, seed=44, comm=PAPER_UNIFORM,
                comp=Distribution.of("powerlaw", minimum=1.0, alpha=1.1, cap=100.0),
            ),
            matrix_sizes=_paper_sizes(),
        ),
        ScenarioSpec(
            name="mega-uniform",
            description="Mega campaign: 10k heterogeneous platforms, LP-only",
            family=PlatformFamily(
                workers=11, count=10_000, seed=7, comm=PAPER_UNIFORM, comp=PAPER_UNIFORM
            ),
            matrix_sizes=(120,),
            noise=None,
        ),
    )
}


def available_spaces() -> list[str]:
    """Names of the built-in scenario spaces."""
    return sorted(NAMED_SPACES)


def named_space(name: str) -> ScenarioSpec:
    """Look one built-in space up by name."""
    try:
        return NAMED_SPACES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario space {name!r}; available: {available_spaces()}"
        ) from None
