"""Streaming, resumable execution of scenario-space campaigns.

The runner turns a :class:`~repro.scenarios.spec.ScenarioSpec` into
results by sharding its platform draws into fixed-size **chunks** and
pushing each chunk through the array-level campaign machinery:

1. the vectorised sampler (:mod:`repro.workloads.sampling`) materialises
   the family's factor tables once (vectorised RNG, no platform objects);
2. each chunk's (platform, size) cells become stacked cost tables and one
   batched scenario-kernel call via
   :func:`repro.experiments.campaign_engine.prepare_cells`;
3. for measured spaces (``spec.noise``), every cell draws one batched
   noise stream — seeded per (platform index, size) exactly like the
   figure campaigns — and the replays run chunk-vectorised through
   :func:`~repro.experiments.campaign_engine.replay_grouped`;
4. every finished chunk is appended to the persistent store
   (:mod:`repro.scenarios.store`) before the next group starts, so an
   interrupted campaign **resumes** where it left off: chunk results are
   deterministic in the spec, making a resumed campaign bit-identical to
   an uninterrupted one (pinned by the test-suite).

``jobs`` spreads the chunks of each group over worker processes through
the generic sweep engine; the parent stays the single store writer, and
every jobs setting persists identical rows.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

import repro.obs as obs
from repro.core.bus import (
    optimal_bus_fifo_schedule,
    optimal_bus_throughput,
    two_port_bus_throughput,
)
from repro.core.platform import bus_platform
from repro.exceptions import ExperimentError
from repro.experiments.campaign_engine import (
    noise_seed,
    prepare_cells,
    replay_grouped,
    replay_two_port,
)
from repro.experiments.common import default_noise
from repro.experiments.fig08_linearity import measure_transfer
from repro.experiments.fig13_ratio import overhead_noise
from repro.experiments.sweep_engine import resolve_jobs, run_sweep
from repro.workloads.sampling import cost_table, sample_factors, workload_base_costs
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import CampaignState, CampaignStore
from repro.simulation.noise import NoiseModel, perturb_sequence
from repro.workloads.matrices import MatrixProductWorkload

__all__ = [
    "NOISE_FACTORIES",
    "CampaignProgress",
    "aggregate_figure",
    "evaluate_chunk",
    "evaluate_range",
    "plan_chunks",
    "run_campaign",
    "validate_plan",
]


#: Seedable noise factories a spec may name (see ``ScenarioSpec.noise``):
#: the campaigns' default jitter and the Figure-13b per-message overhead
#: variant.
NOISE_FACTORIES: dict[str, Callable[[int], NoiseModel]] = {
    "default": default_noise,
    "overhead": overhead_noise,
}


#: Platforms evaluated (and persisted) per chunk when the caller does not
#: choose: small enough that interrupts lose little work, large enough
#: that the batched kernel amortises its stacking.
DEFAULT_CHUNK_SIZE = 100


def plan_chunks(count: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` platform ranges covering ``count``."""
    if chunk_size <= 0:
        raise ExperimentError("chunk_size must be positive")
    return [(start, min(start + chunk_size, count)) for start in range(0, count, chunk_size)]


def validate_plan(state: CampaignState, chunks: list[tuple[int, int]]) -> set[int]:
    """Check a store's persisted chunks against a chunk plan.

    Returns the completed chunk indices; raises when the store holds
    chunks outside the plan or with drifted ``[start, stop)`` ranges (a
    campaign resumed with a different chunk size).  Shared by the
    single-writer runner, the in-process fabric coordinator and the
    detached (multi-machine) tier — every writer agrees on one plan.
    """
    completed = state.completed_chunks
    unknown = completed - set(range(len(chunks)))
    mismatched = sorted(
        index for index in completed - unknown if state.chunk_range(index) != chunks[index]
    )
    if unknown or mismatched:
        raise ExperimentError(
            f"store chunks {sorted(unknown) + mismatched} do not fit the "
            f"{len(chunks)}-chunk plan; resume with the chunk size the campaign "
            "was started with"
        )
    return completed


def _grid_noise_key(spec: ScenarioSpec, grid_index: int, x) -> int:
    """The "size" term of a cell's noise seed.

    Matrix grids keep the matrix size itself — the figure campaigns'
    formula, which the bit-identity guarantee rests on.  Non-integer grids
    (bus ``w/c`` ratios) use the grid *position* instead: truncating 0.5
    and 1.0 and 1.5 to ints would hand several grid points one shared
    noise stream.
    """
    return int(x) if spec.workload.kind == "matrix" else grid_index


def _row_size(spec: ScenarioSpec, x) -> int | float:
    """The JSON form of a row's grid point (ints for matrix sizes)."""
    return int(x) if spec.workload.kind == "matrix" else float(x)


def _bus_closed_form(comm_row: np.ndarray, w_row: np.ndarray, d_row: np.ndarray) -> dict:
    """Theorem 2's closed forms for one (platform, ratio) bus cell.

    Values are produced by :mod:`repro.core.bus` itself on the very cost
    table the LP sees, so the series are bit-identical to the legacy
    closed-form driver by construction: the optimal one-port FIFO
    throughput, the two-port optimum ``rho~``, the port-capacity bound
    ``1/(c+d)``, and the uniform gap the constructive Figure 7
    transformation inserts (with its saturation flag).
    """
    platform = bus_platform(w_row.tolist(), c=float(comm_row[0]), d=float(d_row[0]))
    construction = optimal_bus_fifo_schedule(platform)
    c, d = platform.bus_costs
    return {
        "bus closed-form": optimal_bus_throughput(platform),
        "bus two-port": two_port_bus_throughput(platform),
        "bus port bound": 1.0 / (c + d),
        "bus gap": construction.gap,
        "bus saturated": 1.0 if construction.saturated else 0.0,
    }


def _evaluate_probe_chunk(
    spec: ScenarioSpec,
    descriptor: tuple[int, int, np.ndarray, np.ndarray, np.ndarray | None],
) -> list[dict]:
    """Evaluate one chunk of a probe-workload space.

    Every (platform, message size) cell replays the Figure 8 measurement —
    :func:`repro.experiments.fig08_linearity.measure_transfer`, one
    rendezvous transfer per worker through the one-port master on the
    simulated runtime — so the rows are bit-identical to the legacy
    linearity driver's series on the same factors.
    """
    start, stop, comm, _, _ = descriptor
    workload_model = MatrixProductWorkload(int(spec.workload.param("matrix_size")))
    rows: list[dict] = []
    for offset in range(stop - start):
        factors = comm[offset]
        for megabytes in spec.grid:
            values = {
                f"worker {index + 1} transfer": float(
                    measure_transfer(workload_model, float(factor), float(megabytes))
                )
                for index, factor in enumerate(factors)
            }
            rows.append(
                {"platform": start + offset, "size": _row_size(spec, megabytes), "values": values}
            )
    return rows


def evaluate_chunk(
    spec: ScenarioSpec,
    descriptor: tuple[int, int, np.ndarray, np.ndarray, np.ndarray | None],
) -> list[dict]:
    """Evaluate one chunk of platforms across every grid point.

    Returns one row per (platform, grid point) cell: the per-heuristic LP
    ratio (vs the reference heuristic's LP prediction), the measured ratio
    when the spec names a noise model, the rounded participant count, and
    the reference's absolute predicted time; bus cells additionally carry
    Theorem 2's closed-form series, probe cells their per-worker transfer
    times.  Pure function of (spec, descriptor) — the resume guarantee
    rests on this.  With a telemetry active the chunk runs inside an
    ``evaluate`` span with nested ``solve`` / ``replay`` phase spans (in
    the evaluating process — per-pid sidecar files under ``jobs=``).
    """
    telemetry = obs.active()
    with telemetry.span(
        "evaluate", start=descriptor[0], stop=descriptor[1], workload=spec.workload.kind
    ) as span:
        if spec.workload.kind == "probe":
            rows = _evaluate_probe_chunk(spec, descriptor)
        else:
            rows = _evaluate_lp_chunk(spec, descriptor)
        span.set(rows=len(rows))
        return rows


def _evaluate_lp_chunk(
    spec: ScenarioSpec,
    descriptor: tuple[int, int, np.ndarray, np.ndarray, np.ndarray | None],
) -> list[dict]:
    """The LP-backed (matrix/bus) chunk evaluation behind ``evaluate_chunk``."""
    telemetry = obs.active()
    start, stop, comm, comp, ret = descriptor
    count = stop - start
    grid = spec.grid
    is_bus = spec.workload.kind == "bus"

    # Like the figure engine, key the prepared cells on the factor vectors
    # themselves: families with repeated draws (every constant dimension —
    # fig10's homogeneous space repeats one factor set 50 times) prepare
    # each distinct (factor set, grid point) pair once instead of once per
    # platform.  The emitted rows are unchanged — identical inputs prepare
    # to identical values.
    factor_keys = [
        (
            comm[offset].tobytes(),
            comp[offset].tobytes(),
            None if ret is None else ret[offset].tobytes(),
        )
        for offset in range(count)
    ]
    with telemetry.span("solve") as solve_span:
        keyed_tables = []
        closed_forms: dict[tuple, dict] = {}
        seen: set[tuple] = set()
        for x in grid:
            c, w, d = cost_table(workload_base_costs(spec.workload, x), comm, comp, ret)
            for offset in range(count):
                key = (factor_keys[offset], x)
                if key not in seen:
                    seen.add(key)
                    keyed_tables.append((key, c[offset], w[offset], d[offset]))
                    if is_bus and spec.one_port:
                        closed_forms[key] = _bus_closed_form(c[offset], w[offset], d[offset])
        total_tasks = spec.effective_total_tasks
        cells = prepare_cells(
            spec.heuristics, spec.reference, total_tasks, keyed_tables,
            one_port=spec.one_port,
        )
        solve_span.set(cells=len(keyed_tables))

    noise_factory = NOISE_FACTORIES[spec.noise] if spec.noise is not None else None
    occurrences = []
    for offset in range(count):
        platform_index = start + offset
        for grid_index, x in enumerate(grid):
            cell = cells[(factor_keys[offset], x)]
            payload = None
            if noise_factory is not None:
                noise = noise_factory(
                    noise_seed(
                        spec.family.seed, platform_index, _grid_noise_key(spec, grid_index, x)
                    )
                )
                if spec.one_port:
                    # One-port: the draw order is static, so the cell's
                    # whole stream is drawn here in one batched call.
                    payload = perturb_sequence(
                        noise, cell.durations, cell.kinds, cell.workers
                    )
                else:
                    # Two-port: the merge-ordered replay draws on demand —
                    # the occurrence carries the seeded model itself.
                    payload = noise
            occurrences.append((platform_index, x, cell, payload))

    if noise_factory is None:
        makespans = None
    else:
        with telemetry.span("replay", occurrences=len(occurrences)):
            if spec.one_port:
                makespans = replay_grouped(occurrences, len(spec.heuristics))
            else:
                makespans = replay_two_port(occurrences, len(spec.heuristics))

    rows: list[dict] = []
    for occurrence, (platform_index, x, cell, _) in enumerate(occurrences):
        values: dict[str, float] = {}
        for slot, (name, lp_ratio) in enumerate(cell.lp_ratios):
            values[f"{name} lp"] = lp_ratio
            if makespans is not None:
                values[f"{name} real"] = makespans[occurrence, slot] / cell.reference_time
            values[f"{name} workers"] = cell.prepared[slot].participant_count
        values[f"{spec.reference} time"] = cell.reference_time
        offset = occurrence // len(grid)
        closed = closed_forms.get((factor_keys[offset], x))
        if closed is not None:
            values.update(closed)
        rows.append({"platform": platform_index, "size": _row_size(spec, x), "values": values})
    return rows


#: Backward-compatible alias: the chunk evaluator predates the fabric's
#: public worker entry points.
_evaluate_chunk = evaluate_chunk


def evaluate_range(spec: ScenarioSpec, start: int, stop: int) -> list[dict]:
    """Evaluate platforms ``[start, stop)`` of a spec, self-contained.

    The fabric's worker entry point: a worker process holds only the spec
    and a lease's platform range — it re-samples the family's factor
    tables itself (deterministic in the spec, vectorised, cheap next to a
    chunk evaluation) and runs the shared chunk evaluator, so a chunk
    evaluated by any worker, on any machine, yields the exact rows the
    single-writer runner would have persisted.
    """
    table = sample_factors(spec.family)
    view = table.rows(start, stop)
    return evaluate_chunk(spec, (start, stop, view.comm, view.comp, view.ret))


@dataclass
class CampaignProgress:
    """Outcome of one :func:`run_campaign` call (possibly partial)."""

    state: CampaignState
    chunk_size: int
    total_chunks: int
    completed_before: int
    completed_after: int

    @property
    def finished(self) -> bool:
        """Whether every chunk of the space is persisted."""
        return self.completed_after == self.total_chunks

    def rows(self) -> list[dict]:
        return self.state.rows()

    def aggregate(self, quantiles: Sequence[float] = (0.05, 0.5, 0.95)) -> dict:
        return self.state.aggregate(quantiles=quantiles)


def run_campaign(
    spec: ScenarioSpec,
    store: CampaignStore | str | Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    jobs: int | None = 1,
    max_chunks: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> CampaignProgress:
    """Run (or resume) a scenario campaign, persisting chunk by chunk.

    Chunks already present in the store are skipped — calling this on an
    interrupted campaign completes it with results identical to an
    uninterrupted run.  ``jobs`` evaluates up to that many pending chunks
    concurrently (``None`` = one per CPU); the parent process writes each
    group's results in chunk order before starting the next group, so the
    store never holds a partially evaluated chunk.  ``max_chunks`` bounds
    how many *new* chunks this call evaluates (used to budget sessions —
    and by the resume tests to interrupt deterministically);
    ``progress(done, total)`` is called after every persisted group.
    """
    if isinstance(store, (str, Path)):
        store = CampaignStore(store)
    state = store.campaign(spec)

    chunks = plan_chunks(spec.family.count, chunk_size)
    completed = validate_plan(state, chunks)
    pending = [index for index in range(len(chunks)) if index not in completed]
    before = len(completed)
    if max_chunks is not None:
        if max_chunks < 0:
            raise ExperimentError(f"max_chunks must be non-negative (got {max_chunks})")
        pending = pending[:max_chunks]

    telemetry = obs.active()
    if pending:
        if telemetry.enabled and not telemetry.trace_id:
            telemetry.adopt_trace(obs.new_trace_id())
        telemetry.gauge("campaign.total_chunks", len(chunks))
        table = sample_factors(spec.family)
        group_size = max(resolve_jobs(jobs), 1)
        worker = partial(evaluate_chunk, spec)
        with telemetry.span("campaign", total_chunks=len(chunks), pending=len(pending)):
            # The open campaign span is every pool child's causal parent:
            # the initializer adopts the trace context in each worker so
            # all sidecar spans stitch into one tree (fork children only
            # need the adoption; spawn children rebuild the telemetry).
            context = obs.trace_context(telemetry)
            # One pool for the whole campaign: chunk groups reuse the
            # workers instead of paying process spawn + numpy import per
            # group.
            pool = (
                ProcessPoolExecutor(
                    max_workers=group_size,
                    initializer=obs.install_in_worker,
                    initargs=(context,),
                )
                if group_size > 1
                else None
            )
            try:
                for group_start in range(0, len(pending), group_size):
                    group = pending[group_start : group_start + group_size]
                    descriptors = []
                    for index in group:
                        start, stop = chunks[index]
                        view = table.rows(start, stop)
                        descriptors.append((start, stop, view.comm, view.comp, view.ret))
                    # The parent-side queue phase: dispatch-and-wait of one
                    # chunk group (includes the workers' compute time; the
                    # solve/replay split lives in their own spans).
                    with telemetry.span("queue", chunks=len(group)):
                        results = run_sweep(worker, descriptors, jobs=group_size, executor=pool)
                    for index, rows in zip(group, results):
                        with telemetry.span("append", chunk=index, rows=len(rows)):
                            state.append_chunk(index, chunks[index][0], chunks[index][1], rows)
                        telemetry.counter("campaign.chunks_completed")
                        telemetry.counter("campaign.rows_appended", len(rows))
                    telemetry.flush()
                    if progress is not None:
                        progress(len(state.completed_chunks), len(chunks))
            finally:
                if pool is not None:
                    # cancel_futures: an interrupt (Ctrl-C) must not sit
                    # through the whole queued backlog before reporting
                    # what was persisted.
                    pool.shutdown(cancel_futures=True)

    return CampaignProgress(
        state=state,
        chunk_size=chunk_size,
        total_chunks=len(chunks),
        completed_before=before,
        completed_after=len(state.completed_chunks),
    )


#: The x-axis label of each workload kind's grid.
_X_LABELS = {"matrix": "matrix size", "bus": "w/c ratio", "probe": "megabytes"}


def aggregate_figure(spec: ScenarioSpec, aggregated: dict):
    """Render an aggregate as a :class:`FigureResult` (mean per cell).

    Gives ``scenarios run/show`` the same aligned-table output as the
    figure experiments; quantile columns stay available through the raw
    aggregate.  Heuristic series come first in the campaign order; any
    remaining series (bus closed forms, probe transfer times) follow
    sorted by name.
    """
    from repro.experiments.common import FigureResult

    result = FigureResult(
        figure=spec.name,
        title=spec.description or f"scenario space {spec.name}",
        x_label=_X_LABELS[spec.workload.kind],
        parameters={"spec": spec.as_dict()},
    )
    emitted = set()
    for name in spec.heuristics:
        for suffix in ("lp", "real", "workers"):
            series = f"{name} {suffix}"
            emitted.add(series)
            for size, cell in aggregated.get(series, {}).items():
                result.add_point(series, size, cell["mean"])
    if spec.reference:
        series = f"{spec.reference} time"
        emitted.add(series)
        for size, cell in aggregated.get(series, {}).items():
            result.add_point(series, size, cell["mean"])
    for series in sorted(set(aggregated) - emitted):
        for size, cell in aggregated[series].items():
            result.add_point(series, size, cell["mean"])
    return result
