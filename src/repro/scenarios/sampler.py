"""Array-native sampling of platform families (compatibility facade).

The sampler's implementation moved *below* the workload layer so the
import hierarchy is strictly acyclic:

* :mod:`repro.workloads.sampling` — :class:`FactorTable`, the vectorised
  :func:`sample_factors` draw, and the :func:`base_costs` /
  :func:`cost_table` cost-table builders (consumed directly by
  :func:`repro.workloads.platforms.campaign_factors` and the campaign
  engine);
* :mod:`repro.core.order_rules` — the heuristic order-rule and LIFO-chain
  mirrors, both one-port (:data:`ORDER_RULES`) and two-port
  (:data:`TWO_PORT_ORDER_RULES` / :data:`TWO_PORT_REVERSED_RETURN`).

Every historical name keeps working from here, but the facade is
**deprecated** (PR 10): import from :mod:`repro.workloads.sampling` and
:mod:`repro.core.order_rules` directly.  Importing this module emits a
:class:`DeprecationWarning`; nothing inside the campaign paths (runner,
fabric, detached, benchmarks) triggers it any more — a test pins that.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.scenarios.sampler is a deprecated compatibility facade; import "
    "sampling primitives from repro.workloads.sampling and order-rule "
    "mirrors from repro.core.order_rules instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.core.order_rules import (  # noqa: E402 - after the deprecation warning
    ORDER_RULES,
    TWO_PORT_ORDER_RULES,
    TWO_PORT_REVERSED_RETURN,
    lifo_chain_values,
    optimal_fifo_indices,
    sorted_indices,
    worker_names,
)
from repro.workloads.sampling import (  # noqa: E402 - after the deprecation warning
    MATRIX_WORKLOAD,
    PAPER_UNIFORM,
    UNIT,
    Distribution,
    FactorTable,
    PlatformFamily,
    Workload,
    base_costs,
    cost_table,
    family_cost_tables,
    sample_factors,
    workload_base_costs,
)

__all__ = [
    "Distribution",
    "FactorTable",
    "MATRIX_WORKLOAD",
    "PAPER_UNIFORM",
    "PlatformFamily",
    "UNIT",
    "Workload",
    "ORDER_RULES",
    "TWO_PORT_ORDER_RULES",
    "TWO_PORT_REVERSED_RETURN",
    "base_costs",
    "cost_table",
    "family_cost_tables",
    "lifo_chain_values",
    "optimal_fifo_indices",
    "sample_factors",
    "sorted_indices",
    "worker_names",
    "workload_base_costs",
]
