"""Array-native sampling of platform families.

The object path materialises a campaign as Python objects — one
:class:`~repro.workloads.platforms.PlatformFactors` per draw, one
:class:`~repro.core.platform.StarPlatform` with ``q`` :class:`Worker`
objects per (draw, size) cell — before the batched kernel ever sees an
array.  This module materialises whole families *directly* as stacked
``(count, q)`` factor and cost tables with vectorised RNG calls: no
platform or worker objects on the hot path, and the tables feed
:func:`repro.core.batch_scenario.scenario_arrays_batch` /
:func:`~repro.core.batch_scenario.solve_scenario_arrays_batch` as-is.

Bit-identity with the object path is part of the contract (and pinned by
the test-suite):

* the factor draws of the paper's families reproduce
  :func:`repro.workloads.platforms.campaign_factors` **bit for bit** —
  ``Generator.uniform`` fills C-order, so one ``(count, 2, q)`` call is
  the same stream as per-platform comm/comp draws, and ``uniform(low,
  high)`` is exactly ``low + (high - low) * random()``;
* the cost tables perform the same divisions as
  :meth:`MatrixProductWorkload.worker`, so every entry equals
  ``platform.cost_vectors(...)`` of the object path.

The heuristic order rules (:data:`ORDER_RULES`) and the closed-form LIFO
chain (:func:`lifo_chain_values`) — the array-level mirrors of
:mod:`repro.core.heuristics` — live here too, shared by the campaign
engine and the scenario runner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core.platform import _RATIO_TOLERANCE
from repro.exceptions import ExperimentError
from repro.scenarios.spec import Distribution, PlatformFamily
from repro.workloads.matrices import MatrixProductWorkload

__all__ = [
    "FactorTable",
    "ORDER_RULES",
    "base_costs",
    "cost_table",
    "family_cost_tables",
    "lifo_chain_values",
    "optimal_fifo_indices",
    "sample_factors",
    "sorted_indices",
    "worker_names",
]


@dataclass(frozen=True)
class FactorTable:
    """Stacked speed-up factors of one sampled platform family.

    ``comm`` and ``comp`` are ``(count, q)`` arrays — row ``i`` is platform
    ``i``'s factor vector.  ``ret`` is ``None`` in the paper's model (the
    return message travels the forward link, ``d = z * c``) or a third
    ``(count, q)`` array when the family draws independent return-link
    speeds.
    """

    comm: np.ndarray
    comp: np.ndarray
    ret: np.ndarray | None = None

    @property
    def count(self) -> int:
        return self.comm.shape[0]

    @property
    def workers(self) -> int:
        return self.comm.shape[1]

    def rows(self, start: int = 0, stop: int | None = None) -> "FactorTable":
        """A zero-copy view of platforms ``start:stop`` (chunk sharding)."""
        return FactorTable(
            comm=self.comm[start:stop],
            comp=self.comp[start:stop],
            ret=None if self.ret is None else self.ret[start:stop],
        )


def _draw(rng: np.random.Generator, dist: Distribution, shape: tuple[int, ...]) -> np.ndarray:
    """Vectorised draw of one distribution (one RNG call per block)."""
    kind = dist.kind
    if kind == "constant":
        return np.full(shape, float(dist.param("value")))
    if kind == "uniform":
        return rng.uniform(dist.param("low"), dist.param("high"), shape)
    if kind == "bimodal":
        fast_mask = rng.random(shape) < dist.param("fast_fraction")
        return np.where(fast_mask, float(dist.param("fast")), float(dist.param("slow")))
    if kind == "powerlaw":
        values = dist.param("minimum") * (1.0 + rng.pareto(dist.param("alpha"), shape))
        cap = dist.param("cap", None)
        return values if cap is None else np.minimum(values, cap)
    raise ExperimentError(f"unknown distribution kind {kind!r}")  # pragma: no cover


def _map_uniform(dist: Distribution, unit: np.ndarray) -> np.ndarray:
    """Map unit draws through a uniform distribution, exactly like
    ``Generator.uniform`` does (``low + (high - low) * u``)."""
    low, high = dist.param("low"), dist.param("high")
    return low + (high - low) * unit

def sample_factors(family: PlatformFamily) -> FactorTable:
    """Materialise a family's ``(count, q)`` factor tables, vectorised.

    The draw order reproduces the sequential object path of
    :func:`repro.workloads.platforms.campaign_factors` on the paper's
    families: when both ``comm`` and ``comp`` consume the random stream
    and both are uniform, one ``(count, 2, q)`` block is drawn and split
    (identical to per-platform comm-then-comp draws); when only one
    consumes, it draws a single ``(count, q)`` block.  Families mixing
    other stream-consuming distributions draw block-wise per dimension
    (comm, then comp, then return) — a documented, deterministic order of
    its own, with no object-path counterpart to mirror.
    """
    rng = np.random.default_rng(family.seed)
    shape = (family.count, family.workers)

    if family.correlation != 0.0:
        # Correlated families (both uniform, enforced by the spec): a
        # Gaussian copula couples the two dimensions while preserving the
        # declared uniform marginals *exactly* — Phi(Z) is uniform for any
        # correlation.  rho = +/-1 makes comp a monotone function of comm.
        # The realised Pearson correlation between the uniforms is the
        # copula's rank correlation, (6/pi) * asin(rho/2) (~0.84 for
        # rho = 0.85), which is what `correlation` means here.
        from scipy.special import ndtr

        rho = family.correlation
        normal = rng.standard_normal((family.count, 2, family.workers))
        z_comm = normal[:, 0]
        z_comp = rho * z_comm + math.sqrt(1.0 - rho * rho) * normal[:, 1]
        comm = _map_uniform(family.comm, ndtr(z_comm))
        comp = _map_uniform(family.comp, ndtr(z_comp))
    else:
        comm_draws = not family.comm.is_constant
        comp_draws = not family.comp.is_constant
        if comm_draws and comp_draws and family.comm.kind == family.comp.kind == "uniform":
            unit = rng.random((family.count, 2, family.workers))
            comm = _map_uniform(family.comm, unit[:, 0])
            comp = _map_uniform(family.comp, unit[:, 1])
        else:
            comm = _draw(rng, family.comm, shape)
            comp = _draw(rng, family.comp, shape)

    ret = None if family.return_comm is None else _draw(rng, family.return_comm, shape)

    if family.comm_scale != 1.0:
        comm = comm * family.comm_scale
        if ret is not None:
            ret = ret * family.comm_scale
    if family.comp_scale != 1.0:
        comp = comp * family.comp_scale
    return FactorTable(comm=comm, comp=comp, ret=ret)


@lru_cache(maxsize=None)
def base_costs(matrix_size: int) -> tuple[float, float, float]:
    """Reference per-unit ``(c, w, d)`` costs of one matrix size, cached."""
    workload = MatrixProductWorkload(int(matrix_size))
    return (workload.base_c, workload.base_w, workload.base_d)


def cost_table(
    base: tuple[float, float, float],
    comm: np.ndarray,
    comp: np.ndarray,
    ret: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Turn factor arrays into ``(c, w, d)`` cost arrays.

    Performs exactly the per-worker divisions of
    :meth:`MatrixProductWorkload.worker` (a factor ``k`` divides the
    reference cost by ``k``), broadcast over any array shape — entries are
    bit-identical to the object path's worker costs.
    """
    c = base[0] / comm
    w = base[1] / comp
    d = base[2] / (comm if ret is None else ret)
    return c, w, d


def family_cost_tables(
    table: FactorTable, matrix_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The stacked ``(count, q)`` cost tables of a family at one size."""
    return cost_table(base_costs(matrix_size), table.comm, table.comp, table.ret)


# --------------------------------------------------------------------- #
# array-level heuristic order rules (mirrors of repro.core.heuristics)
# --------------------------------------------------------------------- #

#: Cached ``("P1", ..., "Pq")`` name tuples (the names the matrix workload
#: gives its platform's workers).
_WORKER_NAMES: dict[int, tuple[str, ...]] = {}


def worker_names(q: int) -> tuple[str, ...]:
    """The canonical worker names of a ``q``-worker matrix platform."""
    names = _WORKER_NAMES.get(q)
    if names is None:
        names = _WORKER_NAMES[q] = tuple(f"P{i + 1}" for i in range(q))
    return names


def sorted_indices(
    names: Sequence[str], costs: Sequence[float], descending: bool = False
) -> list[int]:
    """Worker indices sorted by cost, ties broken by name.

    Mirrors :meth:`StarPlatform.ordered_by_c` / ``ordered_by_w`` exactly
    (same ``(cost, name)`` sort keys), which the test-suite pins.
    """
    return sorted(
        range(len(names)), key=lambda i: (costs[i], names[i]), reverse=descending
    )


def optimal_fifo_indices(names, c, w, d) -> list[int]:
    """Theorem 1's order on a cost table (mirrors ``optimal_fifo_order``)."""
    ratios = [d[i] / c[i] for i in range(len(names))]
    first = ratios[0]
    z = first if all(
        math.isclose(r, first, rel_tol=_RATIO_TOLERANCE, abs_tol=_RATIO_TOLERANCE)
        for r in ratios
    ) else None
    return sorted_indices(names, c, descending=z is not None and z > 1.0)


#: Per-heuristic FIFO order rules on a (names, c, w, d) cost table —
#: the array-level mirror of ``repro.core.heuristics._FIFO_ORDERS``
#: (asserted equal by the test-suite).
ORDER_RULES = {
    "INC_C": lambda names, c, w, d: sorted_indices(names, c),
    "INC_W": lambda names, c, w, d: sorted_indices(names, w),
    "DEC_C": lambda names, c, w, d: sorted_indices(names, c, descending=True),
    "PLATFORM_ORDER": lambda names, c, w, d: list(range(len(names))),
    "OPT_FIFO": optimal_fifo_indices,
}


def lifo_chain_values(c, w, d, order, deadline: float = 1.0) -> list[float]:
    """Closed-form LIFO loads on a cost table, in ``order``.

    Mirrors :func:`repro.core.lifo.lifo_closed_form_loads` operation for
    operation (same additions, multiplications and divisions).
    """
    values: list[float] = []
    previous_load = None
    previous = None
    for index in order:
        denominator = c[index] + d[index] + w[index]
        if previous_load is None:
            load = deadline / denominator
        else:
            load = previous_load * w[previous] / denominator
        values.append(load)
        previous_load = load
        previous = index
    return values
