"""Persistent, resumable result store for scenario campaigns.

A campaign's results live in one directory per spec, keyed by the spec's
content hash (:func:`repro.scenarios.spec.spec_hash`) so renamed specs
share results and different spaces never collide:

.. code-block:: text

    <root>/<hash12>/spec.json      # the spec, for humans and `show`
    <root>/<hash12>/chunks.jsonl   # one JSON line per *completed* chunk

``chunks.jsonl`` is strictly append-only: the runner evaluates one chunk
of platforms at a time and appends ``{"chunk": i, "rows": [...]}`` when —
and only when — the chunk is fully evaluated, flushing and fsyncing each
line.  An interrupted campaign (Ctrl-C, ``kill -9``, power loss) therefore
leaves a prefix of complete lines plus at most one truncated tail line;
reopening truncates the torn tail away (so the next append starts on a
fresh line) and resuming overwrites nothing else: the runner just skips
the chunk indices already present.  Chunk results are deterministic
functions of the spec, so a resumed campaign is bit-identical to an
uninterrupted one (pinned by the test-suite).

The in-memory :class:`CampaignState` is an *index*, not a cache: loading
keeps only each chunk's byte span, platform range and row count — a few
ints per chunk — and re-reads rows from disk on demand
(:meth:`~CampaignState.chunk_rows` / :meth:`~CampaignState.iter_chunk_rows`).
:meth:`~CampaignState.aggregate` streams the chunks one at a time,
accumulating compact per-(series, size) float columns instead of holding
every row dict in the parent process, so a mega-campaign's aggregation
costs ~8 bytes per value rather than a JSON object per row — and the
resulting statistics are bit-identical to :func:`aggregate_rows` over the
full row list (same column arrays, same ``mean``/``quantile`` calls).
:meth:`~CampaignState.export_npz` writes the same columns out as a
``.npz`` file (one array per series plus ``platform``/``size``/``spec``),
the columnar hand-off for notebooks and external analysis.

Rows are plain JSON objects ``{"platform": int, "size": int | float,
"values": {series: float}}`` (``size`` is the workload grid point: an int
for matrix sizes, a float for bus ``w/c`` ratios or probe megabytes);
Python ints and floats round-trip JSON exactly, so persisted results keep
every bit.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

import repro.obs as obs
from repro.exceptions import ExperimentError
from repro.obs import get_logger
from repro.scenarios.spec import ScenarioSpec, spec_hash

__all__ = [
    "CampaignState",
    "CampaignStore",
    "MergeReport",
    "TornTailRecovery",
    "aggregate_rows",
    "chunk_progress",
]

logger = get_logger(__name__)


def chunk_progress(chunks_path: str | Path) -> tuple[set[int], int]:
    """``(chunk indices, row count)`` of one ``chunks.jsonl``, tolerantly.

    The read-only progress probe shared by ``scenarios status`` and any
    other observer that must not open a live store writable (a repairing
    open would truncate a torn tail the owner is still appending behind).
    Torn or malformed lines are skipped, a missing file yields zeros.
    """
    records, _ = obs.read_jsonl_tolerant(Path(chunks_path))
    chunks: set[int] = set()
    rows = 0
    for record in records:
        if not isinstance(record, dict) or "chunk" not in record:
            continue
        try:
            chunks.add(int(record["chunk"]))
        except (TypeError, ValueError):
            continue
        payload = record.get("rows")
        if isinstance(payload, list):
            rows += len(payload)
    return chunks, rows


@dataclass(frozen=True)
class TornTailRecovery:
    """What :meth:`CampaignState._load` dropped (or repaired) on open.

    ``kind`` is ``"torn-tail"`` when a truncated trailing record was cut
    away (a crash mid-append) or ``"missing-newline"`` when only the final
    newline was missing and got repaired in place.  ``chunk_index`` is the
    chunk the dropped record claimed to hold, when that much of the line
    survived — the chunk that will be re-evaluated on resume.
    """

    kind: str
    byte_offset: int
    dropped_bytes: int
    chunk_index: int | None = None

    def describe(self) -> str:
        if self.kind == "missing-newline":
            return f"repaired missing final newline at byte {self.byte_offset}"
        chunk = f" of chunk {self.chunk_index}" if self.chunk_index is not None else ""
        return (
            f"dropped torn tail{chunk}: {self.dropped_bytes} bytes "
            f"at byte offset {self.byte_offset} (chunk will be re-evaluated)"
        )


@dataclass
class MergeReport:
    """Outcome of one :meth:`CampaignState.merge` call."""

    added: list[int] = field(default_factory=list)
    duplicates: list[int] = field(default_factory=list)
    fenced: list[int] = field(default_factory=list)
    rewritten: bool = False
    total_chunks: int = 0

    def describe(self) -> str:
        fenced = f", {len(self.fenced)} fenced chunk(s) rejected" if self.fenced else ""
        return (
            f"merged {len(self.added)} new chunk(s), "
            f"{len(self.duplicates)} duplicate(s) skipped{fenced}, "
            f"{self.total_chunks} total"
        )


class _ColumnAccumulator:
    """Streaming per-(series, size) column builder.

    ``update`` ingests one chunk's rows (per-chunk partial arrays are
    appended, nothing per-row survives the call); ``statistics`` finalises
    each cell by concatenating its per-chunk arrays — the concatenation
    equals the array :func:`aggregate_rows` would have built row by row,
    so every statistic matches it bit for bit.
    """

    def __init__(self) -> None:
        self._cells: dict[str, dict[int, list[np.ndarray]]] = {}

    def update(self, rows: Iterable[Mapping]) -> None:
        chunk_values: dict[str, dict[int | float, list[float]]] = {}
        for row in rows:
            # The grid value is an int (matrix sizes) or a float (bus w/c
            # ratios, probe megabytes); JSON round-trips both exactly.
            size = row["size"]
            for series, value in row["values"].items():
                chunk_values.setdefault(series, {}).setdefault(size, []).append(float(value))
        for series, per_size in chunk_values.items():
            cells = self._cells.setdefault(series, {})
            for size, values in per_size.items():
                cells.setdefault(size, []).append(np.array(values))

    def columns(self) -> Iterator[tuple[str, int, np.ndarray]]:
        """Every (series, size, values) column, sizes sorted per series."""
        for series, per_size in self._cells.items():
            for size, chunks in sorted(per_size.items()):
                yield series, size, (chunks[0] if len(chunks) == 1 else np.concatenate(chunks))

    def statistics(self, quantiles: Sequence[float]) -> dict:
        aggregated: dict[str, dict[int, dict[str, float]]] = {}
        for series, size, array in self.columns():
            aggregated.setdefault(series, {})[size] = _cell_statistics(array, quantiles)
        return aggregated


def _cell_statistics(array: np.ndarray, quantiles: Sequence[float]) -> dict[str, float]:
    cell = {
        "count": int(array.size),
        "mean": float(array.mean()),
        "min": float(array.min()),
        "max": float(array.max()),
    }
    for q in quantiles:
        cell[f"q{round(q * 100):02d}"] = float(np.quantile(array, q))
    return cell


class CampaignState:
    """One spec's slice of the store: its directory, chunks and rows.

    ``read_only=True`` opens a **snapshot**: nothing on disk is created,
    repaired or truncated — a torn tail is noted in ``recovered_tail`` and
    skipped, not cut away.  This is how a live store owned by *another*
    process (a detached fabric worker mid-append) is observed safely: a
    repairing open would truncate bytes the owner is still writing behind.
    """

    def __init__(self, directory: Path, spec: ScenarioSpec, read_only: bool = False) -> None:
        self.directory = Path(directory)
        self.spec = spec
        self.read_only = read_only
        self.spec_path = self.directory / "spec.json"
        self.chunks_path = self.directory / "chunks.jsonl"
        self.epochs_path = self.directory / "epochs.jsonl"
        self._ranges: dict[int, tuple[int, int]] = {}
        self._row_counts: dict[int, int] = {}
        self._spans: dict[int, tuple[int, int]] = {}
        self._epochs: dict[int, int] = {}
        #: Set when opening the store recovered from a torn write; the
        #: diagnostic names the byte offset and chunk index it dropped so
        #: ``scenarios show`` (and logs) can report it instead of the old
        #: silent truncation.
        self.recovered_tail: TornTailRecovery | None = None
        self._load()

    def _load(self) -> None:
        if not self.read_only:
            self.directory.mkdir(parents=True, exist_ok=True)
        if self.spec_path.exists():
            stored = ScenarioSpec.from_json(self.spec_path.read_text(encoding="utf-8"))
            if spec_hash(stored) != spec_hash(self.spec):
                raise ExperimentError(
                    f"store directory {self.directory} holds results of a different "
                    f"spec ({stored.name!r}); refusing to mix campaigns"
                )
        elif not self.read_only:
            # Atomic first write: two fabric workers bootstrapping the same
            # campaign directory concurrently must never interleave a torn
            # spec.json (they write identical canonical JSON either way).
            _atomic_write_text(self.spec_path, self.spec.to_json() + "\n")
        self._ranges = {}
        self._row_counts = {}
        self._spans = {}
        self._epochs = _load_epochs(self.epochs_path)
        if not self.chunks_path.exists():
            return
        # Index pass: records are parsed one line at a time to validate
        # them and note their byte spans, then dropped — the state holds a
        # few ints per chunk, never the rows themselves.
        size = os.path.getsize(self.chunks_path)
        truncate_at: int | None = None
        torn_line: str | None = None
        ends_with_newline = True
        offset = 0
        with open(self.chunks_path, "rb") as handle:
            for number, line_bytes in enumerate(handle):
                line_start = offset
                offset += len(line_bytes)
                ends_with_newline = line_bytes.endswith(b"\n")
                line = line_bytes.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if offset == size:
                        # A truncated tail line is exactly what a kill
                        # mid-write leaves behind.  Truncate the file back
                        # to the last complete record so the next append
                        # starts on a fresh line (appending straight after
                        # the torn write would glue two records together);
                        # the chunk is simply re-run.
                        truncate_at = line_start
                        torn_line = line
                        break
                    raise ExperimentError(
                        f"corrupt (non-tail) line {number + 1} in {self.chunks_path}"
                    ) from None
                index = int(record["chunk"])
                # First write wins: a duplicate line can only appear if two
                # runners raced on the same store, and the earlier results
                # are the ones any completed aggregate was built from.
                if index not in self._ranges:
                    self._ranges[index] = (int(record["start"]), int(record["stop"]))
                    self._row_counts[index] = len(record["rows"])
                    self._spans[index] = (line_start, offset)
        if truncate_at is not None:
            if not self.read_only:
                with open(self.chunks_path, "r+b") as handle:
                    handle.truncate(truncate_at)
            self.recovered_tail = TornTailRecovery(
                kind="torn-tail",
                byte_offset=truncate_at,
                dropped_bytes=size - truncate_at,
                chunk_index=_torn_chunk_index(torn_line),
            )
            if not self.read_only:
                logger.warning(
                    self.recovered_tail.describe(),
                    path=self.chunks_path,
                    chunk=self.recovered_tail.chunk_index,
                )
                obs.active().counter("store.torn_tail_recoveries")
        elif size and not ends_with_newline:
            # No torn tail; a final record missing only its newline (flush
            # raced the kill after the JSON but before "\n") still needs
            # one before the next append.  A read-only snapshot of a live
            # store may simply have caught the owner between its JSON write
            # and the trailing newline: index the record, repair nothing.
            if not self.read_only:
                with open(self.chunks_path, "ab") as handle:
                    handle.write(b"\n")
            self.recovered_tail = TornTailRecovery(
                kind="missing-newline", byte_offset=size, dropped_bytes=0
            )
            if not self.read_only:
                logger.warning(self.recovered_tail.describe(), path=self.chunks_path)
                obs.active().counter("store.torn_tail_recoveries")

    @property
    def completed_chunks(self) -> set[int]:
        """Indices of the chunks already evaluated and persisted."""
        return set(self._ranges)

    def row_count(self) -> int:
        """Number of persisted rows (from the index, no disk read)."""
        return sum(self._row_counts.values())

    def covered_platforms(self) -> int:
        """Number of platforms the persisted chunk ranges cover."""
        return sum(stop - start for start, stop in self._ranges.values())

    def chunk_rows(self, index: int) -> list[dict]:
        """Rows of one completed chunk (re-read from disk)."""
        return json.loads(self.raw_chunk_line(index).decode("utf-8"))["rows"]

    def raw_chunk_line(self, index: int) -> bytes:
        """The exact persisted bytes of one chunk's record line.

        The byte-level primitive behind :meth:`merge`: copying raw lines
        between stores (instead of re-serialising parsed records) is what
        makes a merged store byte-identical to a single-writer run.
        """
        try:
            start, stop = self._spans[index]
        except KeyError:
            raise ExperimentError(f"chunk {index} is not persisted") from None
        with open(self.chunks_path, "rb") as handle:
            handle.seek(start)
            return handle.read(stop - start)

    def iter_chunk_rows(self) -> Iterator[tuple[int, list[dict]]]:
        """Stream ``(index, rows)`` per completed chunk, in chunk order.

        Only one chunk's rows are alive at a time — the streaming primitive
        behind :meth:`aggregate` and :meth:`export_npz`.
        """
        for index in sorted(self._ranges):
            yield index, self.chunk_rows(index)

    def chunk_range(self, index: int) -> tuple[int, int]:
        """The ``[start, stop)`` platform range a completed chunk covers.

        The runner validates these against its chunk plan, so a campaign
        resumed with a different ``chunk_size`` fails loudly instead of
        silently mixing two shardings of the space.
        """
        return self._ranges[index]

    def chunk_epoch(self, index: int) -> int | None:
        """The lease epoch a chunk was appended under, if one was recorded.

        ``None`` means "no epoch metadata" — chunks written by the
        single-writer runner, the degradation path or a pre-fencing store;
        fence checks treat them as trusted.
        """
        return self._epochs.get(index)

    def record_epoch(self, index: int, epoch: int) -> None:
        """Record (or re-bless) the lease epoch of one chunk.

        Appended to the ``epochs.jsonl`` sidecar — never to the chunk
        record itself, which must stay byte-identical to a single-writer
        run.  The highest epoch recorded for a chunk wins, so a worker
        acknowledging already-durable bytes under a re-issued lease lifts
        them over the fence without rewriting them.
        """
        if self.read_only:
            raise ExperimentError(f"store {self.directory} is open read-only")
        line = json.dumps({"chunk": int(index), "epoch": int(epoch)}, sort_keys=True)
        with open(self.epochs_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._epochs[index] = max(epoch, self._epochs.get(index, epoch))

    def append_chunk(
        self,
        index: int,
        start: int,
        stop: int,
        rows: Sequence[Mapping],
        epoch: int | None = None,
    ) -> None:
        """Persist one finished chunk (atomic at line granularity).

        ``epoch`` (fabric workers only) records the lease epoch the chunk
        was evaluated under in the ``epochs.jsonl`` sidecar **before** the
        chunk bytes land, so a zombie worker that dies mid-protocol still
        leaves the fence evidence behind.
        """
        if self.read_only:
            raise ExperimentError(f"store {self.directory} is open read-only")
        if index in self._ranges:
            raise ExperimentError(f"chunk {index} is already persisted")
        if epoch is not None:
            self.record_epoch(index, epoch)
        payload = json.dumps(
            {"chunk": index, "start": int(start), "stop": int(stop), "rows": list(rows)},
            sort_keys=True,
        ).encode("utf-8") + b"\n"
        with open(self.chunks_path, "ab") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
            # Span from tell() *after* the write: O_APPEND seeks to EOF at
            # write time, so if another runner raced an append in between,
            # the position before our write would not be where our bytes
            # landed — end-minus-length always is.
            span_stop = handle.tell()
        self._ranges[index] = (int(start), int(stop))
        self._row_counts[index] = len(rows)
        self._spans[index] = (span_stop - len(payload), span_stop)
        telemetry = obs.active()
        if telemetry.enabled:
            telemetry.counter("store.chunks_appended")
            telemetry.counter("store.rows_appended", len(rows))

    def merge(
        self,
        *sources: "CampaignState | str | Path",
        fences: Mapping[int, int] | None = None,
        skip_fenced: bool = False,
    ) -> MergeReport:
        """Fold other stores of the *same spec* into this one.

        The multi-writer primitive of the campaign fabric: every worker
        writes an isolated per-worker store, and the coordinator merges
        them into the canonical one.  Semantics:

        * **spec-hash-checked** — a source holding a different spec's
          results is rejected loudly, never silently mixed;
        * **epoch-fenced** — ``fences`` maps chunk index to the minimum
          acceptable lease epoch: a source chunk recorded under a
          *superseded* epoch (a zombie worker that appended after its
          lease was re-issued) is rejected loudly — or, with
          ``skip_fenced=True`` (the fabric's merge, which knows the
          re-issued epoch's copy is the canonical one), skipped with a
          warning and reported in ``MergeReport.fenced``.  Chunks without
          epoch metadata are trusted (single-writer, degraded and
          pre-fencing stores);
        * **idempotent and duplicate-tolerant** — a chunk index present in
          several stores with byte-identical records (the normal outcome
          of a retried chunk: chunk results are deterministic in the spec)
          is accepted once; *divergent* duplicates are rejected loudly;
        * **overlap-checked** — two distinct chunk indices whose
          ``[start, stop)`` platform ranges overlap (chunk-size drift
          between workers) are rejected loudly;
        * **canonical byte layout** — when anything new is merged, the
          whole file is rewritten atomically (temp file + fsync +
          ``os.replace``) with chunks in index order, raw record lines
          copied verbatim, so the merged ``chunks.jsonl`` is byte-identical
          to the one an uninterrupted single-writer run would have
          produced.
        """
        own_hash = spec_hash(self.spec)
        fences = fences or {}
        accepted_lines: dict[int, bytes] = {}
        accepted_ranges = dict(self._ranges)
        report = MergeReport()

        def record_line(source: "CampaignState", index: int) -> bytes:
            # A read-only snapshot of a live store may have indexed a final
            # record caught before its trailing newline landed; the append
            # path always writes record + "\n", so restoring it here keeps
            # the merged layout byte-identical to a single-writer run.
            raw = source.raw_chunk_line(index)
            return raw if raw.endswith(b"\n") else raw + b"\n"

        for source in sources:
            if isinstance(source, (str, Path)):
                source = CampaignState(Path(source), self.spec)
            if spec_hash(source.spec) != own_hash:
                raise ExperimentError(
                    f"cannot merge {source.directory}: it holds results of spec "
                    f"{spec_hash(source.spec)} ({source.spec.name!r}), not "
                    f"{own_hash} ({self.spec.name!r})"
                )
            for index in sorted(source._ranges):
                start, stop = source._ranges[index]
                epoch = source.chunk_epoch(index)
                fence = fences.get(index)
                if epoch is not None and fence is not None and epoch < fence:
                    if not skip_fenced:
                        raise ExperimentError(
                            f"chunk {index} in {source.directory} is fenced: it was "
                            f"appended under superseded lease epoch {epoch} (the "
                            f"chunk was re-issued at epoch {fence}); a zombie "
                            f"worker's result cannot enter the canonical store"
                        )
                    logger.warning(
                        "skipping fenced chunk",
                        source=source.directory,
                        chunk=index,
                        epoch=epoch,
                        fence=fence,
                    )
                    report.fenced.append(index)
                    continue
                if index in accepted_ranges:
                    known = (
                        accepted_lines[index]
                        if index in accepted_lines
                        else self.raw_chunk_line(index)
                    )
                    if record_line(source, index) != known:
                        raise ExperimentError(
                            f"divergent duplicate chunk {index} in {source.directory}: "
                            f"its record differs from the one already merged — "
                            f"refusing to pick silently"
                        )
                    report.duplicates.append(index)
                    continue
                for other, (o_start, o_stop) in accepted_ranges.items():
                    if start < o_stop and stop > o_start:
                        raise ExperimentError(
                            f"chunk {index} [{start}, {stop}) of {source.directory} "
                            f"overlaps chunk {other} [{o_start}, {o_stop}); "
                            f"chunk-size drift between stores is not mergeable"
                        )
                accepted_lines[index] = record_line(source, index)
                accepted_ranges[index] = (start, stop)
                report.added.append(index)
        if accepted_lines:
            own_lines = {index: self.raw_chunk_line(index) for index in self._ranges}
            own_lines.update(accepted_lines)
            self._rewrite_sorted(own_lines)
            report.rewritten = True
        report.total_chunks = len(self._ranges)
        return report

    def _rewrite_sorted(self, lines: Mapping[int, bytes]) -> None:
        """Atomically replace ``chunks.jsonl`` with records in index order.

        The append path stays append-only; only :meth:`merge` compacts, and
        it does so crash-safely: a full temp file is fsynced first, then
        ``os.replace`` swaps it in (a crash leaves either the old file or
        the new one, never a mix), then the directory entry is fsynced.
        """
        fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".chunks-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for index in sorted(lines):
                    handle.write(lines[index])
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, self.chunks_path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        directory_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
        self._load()

    def rows(self) -> list[dict]:
        """Every persisted row, in chunk order (materialised; prefer
        :meth:`iter_chunk_rows` / :meth:`aggregate` for mega-campaigns)."""
        collected: list[dict] = []
        for _, chunk in self.iter_chunk_rows():
            collected.extend(chunk)
        return collected

    def aggregate(self, quantiles: Sequence[float] = (0.05, 0.5, 0.95)) -> dict:
        """Means/quantiles per (series, size), streamed chunk by chunk.

        Bit-identical to ``aggregate_rows(self.rows())`` — the streamed
        columns concatenate to the very arrays the row-list path builds —
        without ever materialising the rows in memory.
        """
        accumulator = _ColumnAccumulator()
        for _, chunk in self.iter_chunk_rows():
            accumulator.update(chunk)
        return accumulator.statistics(quantiles)

    def export_npz(self, path: str | Path, compress: bool = True) -> dict:
        """Columnar ``.npz`` export of the persisted rows, memory O(chunk).

        The archive holds ``platform`` and ``size`` index arrays, one
        float column per series (NaN where a row lacks the series), and
        the spec's canonical JSON under ``spec``.  The total row count is
        known from the index, so every column is **preallocated on disk**
        as a ``.npy`` memmap and filled chunk by chunk — the parent never
        holds more than one chunk's rows (plus the memmap pages being
        written), however large the campaign.  The finished ``.npy``
        members are then streamed into the ``.npz`` zip container, which
        ``np.load`` reads exactly as it reads a ``np.savez`` archive.
        Returns a small summary dict (rows, series, path); the reported
        path always carries the ``.npz`` suffix ``np.savez`` would
        silently append.
        """
        path = Path(path)
        if path.suffix != ".npz":
            # np.savez appends ".npz" itself; normalise up front so the
            # reported path names the file that actually exists.
            path = path.with_name(path.name + ".npz")
        total = self.row_count()
        if total == 0:
            # Nothing persisted: the tiny constant-size archive needs no
            # streaming machinery.
            writer = np.savez_compressed if compress else np.savez
            writer(
                path,
                platform=np.empty(0, dtype=np.int64),
                size=np.empty(0, dtype=np.int64),
                spec=np.array(self.spec.to_json(indent=None)),
            )
            return {"path": str(path), "rows": 0, "series": []}

        nan = float("nan")
        staging = Path(tempfile.mkdtemp(dir=path.parent, prefix=".npz-stage-"))
        try:
            member = _MemberAllocator(staging, total)
            platform_column = member.allocate("platform", np.int64)
            size_column = None
            columns: dict[str, np.memmap] = {}
            filled = 0
            for _, chunk in self.iter_chunk_rows():
                count = len(chunk)
                platform_column[filled : filled + count] = [
                    int(row["platform"]) for row in chunk
                ]
                # int64 for matrix-size grids, float64 for bus/probe grids —
                # chunks of one campaign always agree on the type.
                sizes = np.asarray([row["size"] for row in chunk])
                if size_column is None:
                    size_column = member.allocate(
                        "size", np.int64 if sizes.dtype.kind == "i" else np.float64
                    )
                size_column[filled : filled + count] = sizes
                for row in chunk:
                    for series in row["values"]:
                        if series not in columns:
                            if series in ("platform", "size", "spec"):
                                raise ExperimentError(
                                    f"series name {series!r} collides with an index column"
                                )
                            # Back-fill the rows streamed before this
                            # series appeared with NaN (on disk, not in
                            # parent memory).
                            column = member.allocate(series, np.float64)
                            column[:filled] = nan
                            columns[series] = column
                for series, column in columns.items():
                    column[filled : filled + count] = [
                        float(row["values"].get(series, nan)) for row in chunk
                    ]
                filled += count
            np.save(staging / "spec.npy", np.array(self.spec.to_json(indent=None)))
            member.finalise()
            compression = zipfile.ZIP_DEFLATED if compress else zipfile.ZIP_STORED
            with zipfile.ZipFile(path, "w", compression) as archive:
                for name in member.names() + ["spec"]:
                    archive.write(staging / f"{name}.npy", arcname=f"{name}.npy")
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return {"path": str(path), "rows": total, "series": sorted(columns)}


class _MemberAllocator:
    """Preallocated on-disk ``.npy`` columns for the streaming export.

    Every column is an ``open_memmap`` of the full (index-known) row
    count, created in a staging directory and filled chunk by chunk —
    the RAM footprint is the pages being written, not the columns.
    """

    def __init__(self, staging: Path, total: int) -> None:
        self.staging = staging
        self.total = total
        self._columns: dict[str, np.memmap] = {}

    def allocate(self, name: str, dtype) -> np.memmap:
        if os.sep in name or (os.altsep and os.altsep in name) or "\x00" in name:
            raise ExperimentError(
                f"series name {name!r} cannot be exported (path separator)"
            )
        column = np.lib.format.open_memmap(
            self.staging / f"{name}.npy", mode="w+", dtype=dtype, shape=(self.total,)
        )
        self._columns[name] = column
        return column

    def names(self) -> list[str]:
        return list(self._columns)

    def finalise(self) -> None:
        """Flush every memmap so the staged files are complete on disk."""
        for column in self._columns.values():
            column.flush()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write a small metadata file atomically (temp + fsync + replace).

    Concurrent writers of *identical* content (two workers bootstrapping
    one campaign) race harmlessly — ``os.replace`` leaves whichever full
    copy landed last, never an interleaving.
    """
    fd, temp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise


def _load_epochs(path: Path) -> dict[int, int]:
    """Chunk → highest recorded lease epoch from an ``epochs.jsonl`` sidecar.

    Tolerant by design: the sidecar is advisory fence evidence, so a torn
    or garbled line (a worker killed mid-write) is skipped with a warning
    rather than failing the open — a chunk without a readable epoch is
    simply treated as unfenced metadata-wise.
    """
    epochs: dict[int, int] = {}
    if not path.exists():
        return epochs
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                index, epoch = int(record["chunk"]), int(record["epoch"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                logger.warning("skipping unreadable epoch line", path=path, line=number + 1)
                continue
            epochs[index] = max(epoch, epochs.get(index, epoch))
    return epochs


def _torn_chunk_index(torn_line: str | None) -> int | None:
    """Best-effort chunk index of a truncated record line.

    The append path serialises with ``sort_keys=True``, so ``"chunk": N``
    is the first key and survives all but the shortest torn writes.
    """
    if not torn_line:
        return None
    match = re.search(r'"chunk"\s*:\s*(\d+)', torn_line)
    return int(match.group(1)) if match else None


class CampaignStore:
    """A directory of campaign states, one per spec hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def campaign(self, spec: ScenarioSpec) -> CampaignState:
        """Open (or create) the state directory of one spec."""
        return CampaignState(self.root / spec_hash(spec), spec)

    def exists(self, spec: ScenarioSpec) -> bool:
        """Whether the store already holds (some) results for ``spec``."""
        return (self.root / spec_hash(spec) / "spec.json").exists()

    def campaigns(self) -> list[tuple[str, ScenarioSpec]]:
        """Every (hash, spec) pair persisted under the root."""
        found: list[tuple[str, ScenarioSpec]] = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.iterdir()):
            spec_path = path / "spec.json"
            if spec_path.is_file():
                found.append(
                    (path.name, ScenarioSpec.from_json(spec_path.read_text(encoding="utf-8")))
                )
        return found


def aggregate_rows(
    rows: Iterable[Mapping], quantiles: Sequence[float] = (0.05, 0.5, 0.95)
) -> dict:
    """Aggregate per-scenario rows into per-(series, size) statistics.

    Returns ``{series: {size: {"count", "mean", "min", "max", "qXX"...}}}``
    with one ``qXX`` entry per requested quantile (linear interpolation).
    The in-memory counterpart of :meth:`CampaignState.aggregate` (which
    streams from disk and matches this bit for bit).
    """
    collected: dict[str, dict[int | float, list[float]]] = {}
    for row in rows:
        size = row["size"]
        for series, value in row["values"].items():
            collected.setdefault(series, {}).setdefault(size, []).append(float(value))

    aggregated: dict[str, dict[int, dict[str, float]]] = {}
    for series, per_size in collected.items():
        aggregated[series] = {}
        for size, values in sorted(per_size.items()):
            aggregated[series][size] = _cell_statistics(np.array(values), quantiles)
    return aggregated
