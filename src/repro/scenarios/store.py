"""Persistent, resumable result store for scenario campaigns.

A campaign's results live in one directory per spec, keyed by the spec's
content hash (:func:`repro.scenarios.spec.spec_hash`) so renamed specs
share results and different spaces never collide:

.. code-block:: text

    <root>/<hash12>/spec.json      # the spec, for humans and `show`
    <root>/<hash12>/chunks.jsonl   # one JSON line per *completed* chunk

``chunks.jsonl`` is strictly append-only: the runner evaluates one chunk
of platforms at a time and appends ``{"chunk": i, "rows": [...]}`` when —
and only when — the chunk is fully evaluated, flushing and fsyncing each
line.  An interrupted campaign (Ctrl-C, ``kill -9``, power loss) therefore
leaves a prefix of complete lines plus at most one truncated tail line;
reopening truncates the torn tail away (so the next append starts on a
fresh line) and resuming overwrites nothing else: the runner just skips
the chunk indices already present.  Chunk results are deterministic
functions of the spec, so a resumed campaign is bit-identical to an
uninterrupted one (pinned by the test-suite).

Rows are plain JSON objects ``{"platform": int, "size": int, "values":
{series: float}}``; Python floats round-trip JSON exactly, so persisted
results keep every bit.  :func:`aggregate_rows` turns them into
means/quantiles per (series, size) cell.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ExperimentError
from repro.scenarios.spec import ScenarioSpec, spec_hash

__all__ = ["CampaignState", "CampaignStore", "aggregate_rows"]


class CampaignState:
    """One spec's slice of the store: its directory, chunks and rows."""

    def __init__(self, directory: Path, spec: ScenarioSpec) -> None:
        self.directory = Path(directory)
        self.spec = spec
        self.spec_path = self.directory / "spec.json"
        self.chunks_path = self.directory / "chunks.jsonl"
        self._completed: dict[int, list[dict]] = {}
        self._ranges: dict[int, tuple[int, int]] = {}
        self._load()

    def _load(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.spec_path.exists():
            stored = ScenarioSpec.from_json(self.spec_path.read_text(encoding="utf-8"))
            if spec_hash(stored) != spec_hash(self.spec):
                raise ExperimentError(
                    f"store directory {self.directory} holds results of a different "
                    f"spec ({stored.name!r}); refusing to mix campaigns"
                )
        else:
            self.spec_path.write_text(self.spec.to_json() + "\n", encoding="utf-8")
        self._completed = {}
        if not self.chunks_path.exists():
            return
        raw = self.chunks_path.read_bytes()
        lines = raw.splitlines(keepends=True)
        valid_bytes = 0
        for number, line_bytes in enumerate(lines):
            line = line_bytes.decode("utf-8", errors="replace").strip()
            if line:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if number == len(lines) - 1:
                        # A truncated tail line is exactly what a kill
                        # mid-write leaves behind.  Truncate the file back
                        # to the last complete record so the next append
                        # starts on a fresh line (appending straight after
                        # the torn write would glue two records together);
                        # the chunk is simply re-run.
                        with open(self.chunks_path, "r+b") as handle:
                            handle.truncate(valid_bytes)
                        break
                    raise ExperimentError(
                        f"corrupt (non-tail) line {number + 1} in {self.chunks_path}"
                    ) from None
                index = int(record["chunk"])
                # First write wins: a duplicate line can only appear if two
                # runners raced on the same store, and the earlier results
                # are the ones any completed aggregate was built from.
                if index not in self._completed:
                    self._completed[index] = record["rows"]
                    self._ranges[index] = (int(record["start"]), int(record["stop"]))
            valid_bytes += len(line_bytes)
        else:
            # No torn tail; a final record missing only its newline (flush
            # raced the kill after the JSON but before "\n") still needs
            # one before the next append.
            if raw and not raw.endswith(b"\n"):
                with open(self.chunks_path, "ab") as handle:
                    handle.write(b"\n")

    @property
    def completed_chunks(self) -> set[int]:
        """Indices of the chunks already evaluated and persisted."""
        return set(self._completed)

    def chunk_rows(self, index: int) -> list[dict]:
        """Rows of one completed chunk."""
        return self._completed[index]

    def chunk_range(self, index: int) -> tuple[int, int]:
        """The ``[start, stop)`` platform range a completed chunk covers.

        The runner validates these against its chunk plan, so a campaign
        resumed with a different ``chunk_size`` fails loudly instead of
        silently mixing two shardings of the space.
        """
        return self._ranges[index]

    def append_chunk(self, index: int, start: int, stop: int, rows: Sequence[Mapping]) -> None:
        """Persist one finished chunk (atomic at line granularity)."""
        if index in self._completed:
            raise ExperimentError(f"chunk {index} is already persisted")
        line = json.dumps(
            {"chunk": index, "start": int(start), "stop": int(stop), "rows": list(rows)},
            sort_keys=True,
        )
        with open(self.chunks_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._completed[index] = list(rows)
        self._ranges[index] = (int(start), int(stop))

    def rows(self) -> list[dict]:
        """Every persisted row, in chunk order."""
        collected: list[dict] = []
        for index in sorted(self._completed):
            collected.extend(self._completed[index])
        return collected

    def aggregate(self, quantiles: Sequence[float] = (0.05, 0.5, 0.95)) -> dict:
        """Means/quantiles per (series, size) over the persisted rows."""
        return aggregate_rows(self.rows(), quantiles=quantiles)


class CampaignStore:
    """A directory of campaign states, one per spec hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def campaign(self, spec: ScenarioSpec) -> CampaignState:
        """Open (or create) the state directory of one spec."""
        return CampaignState(self.root / spec_hash(spec), spec)

    def exists(self, spec: ScenarioSpec) -> bool:
        """Whether the store already holds (some) results for ``spec``."""
        return (self.root / spec_hash(spec) / "spec.json").exists()

    def campaigns(self) -> list[tuple[str, ScenarioSpec]]:
        """Every (hash, spec) pair persisted under the root."""
        found: list[tuple[str, ScenarioSpec]] = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.iterdir()):
            spec_path = path / "spec.json"
            if spec_path.is_file():
                found.append(
                    (path.name, ScenarioSpec.from_json(spec_path.read_text(encoding="utf-8")))
                )
        return found


def aggregate_rows(
    rows: Iterable[Mapping], quantiles: Sequence[float] = (0.05, 0.5, 0.95)
) -> dict:
    """Aggregate per-scenario rows into per-(series, size) statistics.

    Returns ``{series: {size: {"count", "mean", "min", "max", "qXX"...}}}``
    with one ``qXX`` entry per requested quantile (linear interpolation).
    """
    collected: dict[str, dict[int, list[float]]] = {}
    for row in rows:
        size = int(row["size"])
        for series, value in row["values"].items():
            collected.setdefault(series, {}).setdefault(size, []).append(float(value))

    aggregated: dict[str, dict[int, dict[str, float]]] = {}
    for series, per_size in collected.items():
        aggregated[series] = {}
        for size, values in sorted(per_size.items()):
            array = np.array(values)
            cell = {
                "count": int(array.size),
                "mean": float(array.mean()),
                "min": float(array.min()),
                "max": float(array.max()),
            }
            for q in quantiles:
                cell[f"q{round(q * 100):02d}"] = float(np.quantile(array, q))
            aggregated[series][size] = cell
    return aggregated
