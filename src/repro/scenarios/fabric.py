"""Fault-tolerant multi-worker campaign fabric.

The streaming store (:mod:`repro.scenarios.store`) already defines an
idempotent work-unit protocol — spec content hash + ``[start, stop)``
chunk ranges + fsynced appends — but the single-writer runner owns every
campaign end to end: a worker crash, hang or torn write beyond the parent
process is unrecoverable.  This module turns the protocol into a
coordinator/worker **fabric**:

* the coordinator shards a campaign's chunk plan into **leases** — one
  JSON file per chunk range carrying the owner id, an epoch and a logical
  heartbeat deadline — and hands them to ``workers`` processes;
* every worker appends finished chunks to its own isolated per-worker
  :class:`~repro.scenarios.store.CampaignState` (``workers/<owner>/``
  under the campaign directory), so no two writers ever share a file;
* a :class:`FaultPolicy` wraps each chunk attempt: a crashed or failed
  attempt is retried with a deterministic backoff schedule and a bumped
  lease epoch; a worker that outlives its lease's logical deadline (a
  hang) is killed and its chunk re-leased; a chunk that exhausts its
  attempt budget degrades gracefully to an in-parent evaluation;
* when the plan is complete the per-worker stores are **merged** into the
  canonical one (:meth:`CampaignState.merge` — chunk-index-keyed,
  idempotent, duplicate-tolerant, spec-hash-checked), producing a
  ``chunks.jsonl`` byte-identical to an uninterrupted single-writer run;
* :func:`heal_campaign` recovers a campaign whose *coordinator* died:
  worker stores are merged (crash-after-append chunks surface here),
  abandoned leases are re-evaluated in the healing parent, and stale
  lease files are cleared.

Chunk results are deterministic functions of the spec, so every recovery
path converges to the same bytes — the :class:`FaultInjector` and the
test-suite's fault matrix (crash-before-fsync, crash-after-append, hangs,
poisoned chunks, abandoned leases) pin exactly that.

Workers are **processes or machines**: the lease files, the per-worker
stores and the merge need nothing but a shared directory.  The in-process
tier (this module's coordinator) keeps its logical tick clock; the
**multi-machine tier** (:mod:`repro.scenarios.detached`) layers wall-clock
leases on the same files — ``deadline``/``heartbeat_at`` epoch-seconds
fields with a configurable skew slack, heartbeat renewals via atomic
lease rewrites, **epoch fencing** (a re-issued lease bumps the chunk's
epoch and records a fence; a zombie worker's stale-epoch append can never
enter the canonical store), and an append-only ``coordinator.jsonl``
journal from which a restarted coordinator — or :func:`heal_campaign` —
reconstructs its decisions instead of inferring them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import multiprocessing
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

import repro.obs as obs
from repro.exceptions import ExperimentError
from repro.obs import get_logger
from repro.scenarios.runner import (
    DEFAULT_CHUNK_SIZE,
    evaluate_range,
    plan_chunks,
    validate_plan,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import CampaignState, CampaignStore, MergeReport

__all__ = [
    "DEFAULT_SKEW_SLACK",
    "FAULT_KINDS",
    "ChunkFault",
    "CoordinatorJournal",
    "FabricProgress",
    "FaultInjector",
    "FaultPolicy",
    "HealReport",
    "JournalState",
    "Lease",
    "heal_campaign",
    "merge_worker_stores",
    "read_fences",
    "read_lease",
    "read_leases",
    "record_fence",
    "run_fabric_campaign",
    "worker_store_paths",
]

logger = get_logger(__name__)

#: Injectable fault kinds.  ``crash-pre``/``crash-post``/``hang``/
#: ``poison`` fire inside a worker; ``abandon`` is coordinator-side (the
#: lease is written but its worker "vanishes" without ever running);
#: ``partition`` (stop heartbeating but keep computing) and ``zombie``
#: (wake up after being fenced and append anyway) are machine-tier faults
#: acted out fully by the detached work loop
#: (:mod:`repro.scenarios.detached`) — the in-process tier, whose expired
#: workers are killed outright, maps both to a hang.
FAULT_KINDS = ("crash-pre", "crash-post", "hang", "poison", "abandon", "partition", "zombie")

#: Default wall-clock slack added to a lease deadline before another
#: party may declare it expired: modest clock skew between machines must
#: never cause a false takeover.
DEFAULT_SKEW_SLACK = 2.0

#: How long an injected hang sleeps.  Far beyond any sane per-chunk
#: timeout; the coordinator kills the worker long before it wakes.
_HANG_SECONDS = 600.0

#: Worker exit codes for the injected crashes (any non-zero exit with no
#: persisted chunk is treated the same; these just aid debugging).
_EXIT_CRASH_PRE = 23
_EXIT_CRASH_POST = 24
_EXIT_FAILURE = 21

#: Owner id recorded on an ``abandon`` lease: a worker that never existed.
_LOST_OWNER = "lost"

#: Reserved per-worker store names used by the parent itself.
_DEGRADED_OWNER = "degraded"
_HEAL_OWNER = "heal"


# ---------------------------------------------------------------------------
# Fault policy: retry, backoff, timeout, graceful degradation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPolicy:
    """Retry/timeout/backoff policy wrapping every chunk attempt.

    ``max_attempts`` bounds worker-side tries per chunk; once exhausted
    the chunk **degrades gracefully** to an in-parent evaluation (the
    parent runs no injected faults and no process machinery — the slow
    but sure path).  ``backoff(attempt)`` is deterministic —
    ``base * factor**attempt`` capped at ``cap`` seconds, no jitter — so
    fault schedules replay identically.  ``timeout`` is the per-attempt
    wall-clock budget.  The in-process tier enforces it through the
    lease's logical heartbeat deadline: the coordinator advances one tick
    per ``poll_interval`` sleep, and a lease that lives past
    ``timeout / poll_interval`` ticks is expired (its worker killed, the
    chunk re-leased).  The detached (multi-machine) tier enforces it on
    the wall clock instead: a lease's ``deadline`` is ``timeout`` seconds
    past its last heartbeat, workers renew every
    :attr:`heartbeat_interval` seconds, and nobody may declare a lease
    expired until ``skew_slack`` seconds *past* its deadline — so modest
    clock skew between machines never causes a false takeover.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 1.0
    timeout: float = 60.0
    poll_interval: float = 0.02
    skew_slack: float = DEFAULT_SKEW_SLACK

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be at least 1 (got {self.max_attempts})"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_cap < 0:
            raise ExperimentError(
                "backoff must be non-negative with factor >= 1 "
                f"(got base={self.backoff_base}, factor={self.backoff_factor}, "
                f"cap={self.backoff_cap})"
            )
        if self.timeout <= 0 or self.poll_interval <= 0:
            raise ExperimentError(
                f"timeout and poll_interval must be positive (got "
                f"timeout={self.timeout}, poll_interval={self.poll_interval})"
            )
        if self.skew_slack < 0:
            raise ExperimentError(
                f"skew_slack must be non-negative (got {self.skew_slack})"
            )

    @property
    def heartbeat_interval(self) -> float:
        """Seconds between a detached worker's lease renewals.

        A quarter of the lease TTL: several renewals can be lost (a slow
        shared filesystem, a stalled worker) before the lease expires.
        """
        return max(0.05, self.timeout / 4.0)

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before re-trying after failed attempt ``attempt``."""
        return min(self.backoff_cap, self.backoff_base * self.backoff_factor**attempt)

    def backoff_schedule(self) -> tuple[float, ...]:
        """The full deterministic backoff sequence, one delay per retry."""
        return tuple(self.backoff(attempt) for attempt in range(self.max_attempts - 1))

    @property
    def lease_ttl_ticks(self) -> int:
        """Logical heartbeat budget of one lease, in coordinator ticks."""
        return max(1, math.ceil(self.timeout / self.poll_interval))

    def run(
        self,
        attempt_fn: Callable[[int], object],
        degrade: Callable[[], object] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Run ``attempt_fn(attempt)`` under this policy, in-process.

        The process-free core of the retry loop (and its isolation-test
        surface): up to ``max_attempts`` tries with the deterministic
        backoff sleeps in between, then the ``degrade`` fallback — or the
        last error re-raised when there is none.
        """
        error: BaseException | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                sleep(self.backoff(attempt - 1))
            try:
                return attempt_fn(attempt)
            except ExperimentError as exc:
                error = exc
        if degrade is not None:
            return degrade()
        raise error  # type: ignore[misc]


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkFault:
    """One injected fault: ``kind`` fired at ``(chunk, attempt)``.

    ``attempt=None`` fires on *every* attempt (the poisoned-chunk shape:
    only the parent's degradation path can complete it); an integer fires
    on that attempt only, so retries succeed.
    """

    kind: str
    chunk: int
    attempt: int | None = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; known kinds: {', '.join(FAULT_KINDS)}"
            )

    def fires(self, chunk: int, attempt: int) -> bool:
        return self.chunk == chunk and (self.attempt is None or self.attempt == attempt)


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic fault schedule for the fabric (tests and CLI).

    Built either from an explicit list of :class:`ChunkFault` or from a
    seed (``FaultInjector.seeded``): seeded mode assigns each chunk a
    fault pseudo-randomly but reproducibly — the draw is a pure function
    of ``(seed, chunk)`` via SHA-256, independent of chunk count, worker
    count and scheduling order, so the same seed always injects the same
    schedule.

    The CLI spec grammar (:meth:`from_spec`)::

        crash-pre@2            # torn write on chunk 2's first attempt
        crash-post@4:1         # crash after fsync, chunk 4, attempt 1
        hang@1                 # chunk 1's first attempt hangs
        poison@3:*             # chunk 3 fails on every worker attempt
        abandon@5              # chunk 5's lease is written, worker vanishes
        partition@1            # stop heartbeating on chunk 1, keep computing
        zombie@2               # sleep past expiry on chunk 2, append anyway
        skew:3.5               # this worker's clock runs 3.5 s fast (or
                               # slow, with skew:-3.5) — not a chunk fault
        random:7:0.4           # seeded: ~40% of chunks fault, seed 7

    comma-separated; kinds are listed in :data:`FAULT_KINDS`.
    ``str(injector)`` emits the canonical spec back (round-trips through
    :meth:`from_spec`).
    """

    faults: tuple[ChunkFault, ...] = ()
    seed: int | None = None
    rate: float = 0.0
    seeded_kinds: tuple[str, ...] = ("crash-pre", "crash-post", "hang", "poison")
    #: Seconds added to the injected worker's wall clock (``skew:X``):
    #: positive runs fast, negative slow.  Models cross-machine clock skew
    #: — the lease protocol's ``skew_slack`` must absorb it.
    clock_skew: float = 0.0

    @classmethod
    def seeded(
        cls, seed: int, rate: float, kinds: Sequence[str] | None = None
    ) -> "FaultInjector":
        if not 0.0 <= rate <= 1.0:
            raise ExperimentError(f"fault rate must be in [0, 1] (got {rate})")
        kinds = tuple(kinds) if kinds is not None else ("crash-pre", "crash-post", "hang", "poison")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ExperimentError(
                    f"unknown fault kind {kind!r}; known kinds: {', '.join(FAULT_KINDS)}"
                )
        return cls(seed=seed, rate=rate, seeded_kinds=kinds)

    @classmethod
    def from_spec(cls, text: str) -> "FaultInjector":
        faults = []
        seeded: FaultInjector | None = None
        clock_skew = 0.0
        for item in filter(None, (part.strip() for part in text.split(","))):
            if item.startswith("random:"):
                parts = item.split(":")
                if len(parts) not in (3, 4):
                    raise ExperimentError(
                        f"seeded fault spec must be random:SEED:RATE[:kind+kind...] "
                        f"(got {item!r})"
                    )
                kinds = tuple(parts[3].split("+")) if len(parts) == 4 else None
                try:
                    seeded = cls.seeded(int(parts[1]), float(parts[2]), kinds)
                except (ValueError, ExperimentError) as error:
                    # Always name the offending term: a rejected rate or kind
                    # surfaces from seeded() without the spec context.
                    raise ExperimentError(
                        f"invalid seeded fault spec {item!r}: {error}"
                    ) from None
                continue
            if item.startswith("skew:"):
                try:
                    clock_skew = float(item.partition(":")[2])
                except ValueError:
                    raise ExperimentError(
                        f"invalid clock-skew fault {item!r}: must be skew:SECONDS"
                    ) from None
                continue
            kind, separator, target = item.partition("@")
            if not separator:
                raise ExperimentError(
                    f"fault {item!r} must be kind@chunk or kind@chunk:attempt"
                )
            chunk_text, _, attempt_text = target.partition(":")
            try:
                chunk = int(chunk_text)
                attempt = (
                    None
                    if attempt_text == "*"
                    else int(attempt_text)
                    if attempt_text
                    else (None if kind == "poison" else 0)
                )
            except ValueError:
                raise ExperimentError(f"invalid fault target in {item!r}") from None
            faults.append(ChunkFault(kind=kind, chunk=chunk, attempt=attempt))
        return cls(
            faults=tuple(faults),
            seed=seeded.seed if seeded is not None else None,
            rate=seeded.rate if seeded is not None else 0.0,
            seeded_kinds=(
                seeded.seeded_kinds
                if seeded is not None
                else cls.__dataclass_fields__["seeded_kinds"].default
            ),
            clock_skew=clock_skew,
        )

    def __str__(self) -> str:
        """The canonical CLI spec of this schedule (round-trips)."""
        terms = []
        for fault in self.faults:
            if fault.attempt is None:
                suffix = "" if fault.kind == "poison" else ":*"
            elif fault.attempt == 0 and fault.kind != "poison":
                suffix = ""
            else:
                suffix = f":{fault.attempt}"
            terms.append(f"{fault.kind}@{fault.chunk}{suffix}")
        if self.seed is not None:
            term = f"random:{self.seed}:{self.rate!r}"
            default_kinds = type(self).__dataclass_fields__["seeded_kinds"].default
            if self.seeded_kinds != default_kinds:
                term += ":" + "+".join(self.seeded_kinds)
            terms.append(term)
        if self.clock_skew:
            terms.append(f"skew:{self.clock_skew!r}")
        return ",".join(terms)

    def _seeded_fault(self, chunk: int) -> str | None:
        if self.seed is None or self.rate <= 0.0:
            return None
        digest = hashlib.sha256(f"fabric-fault:{self.seed}:{chunk}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        if draw >= self.rate:
            return None
        pick = int.from_bytes(digest[8:16], "big") % len(self.seeded_kinds)
        return self.seeded_kinds[pick]

    def worker_fault(self, chunk: int, attempt: int) -> str | None:
        """The fault (if any) a worker must act out at ``(chunk, attempt)``."""
        for fault in self.faults:
            if fault.kind != "abandon" and fault.fires(chunk, attempt):
                return fault.kind
        kind = self._seeded_fault(chunk)
        if kind is not None and kind != "abandon":
            # Seeded worker faults fire on the first attempt only (poison
            # fires always): every seeded schedule must converge.
            if kind == "poison" or attempt == 0:
                return kind
        return None

    def coordinator_fault(self, chunk: int) -> str | None:
        """Coordinator-side fault for ``chunk`` (currently only abandon)."""
        for fault in self.faults:
            if fault.kind == "abandon" and fault.chunk == chunk:
                return "abandon"
        if self._seeded_fault(chunk) == "abandon":
            return "abandon"
        return None


# ---------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lease:
    """One chunk range leased to one worker.

    ``epoch`` increments every time the chunk is re-leased (retry after a
    crash, takeover after an expired deadline), so a stale worker's late
    write is recognisably outdated — the **fencing token** of the fabric.

    Two clocks coexist.  ``deadline_tick`` is a *logical* heartbeat
    deadline on the in-process coordinator's tick clock — one tick per
    poll sleep.  The detached (multi-machine) tier adds **wall-clock**
    fields: ``granted_at``/``heartbeat_at``/``deadline`` are epoch
    seconds, ``ttl`` is the seconds each heartbeat renewal extends the
    deadline by.  Wall-clock expiry is never declared before
    ``deadline + skew_slack`` (:meth:`expired`), so modest clock skew
    between machines cannot cause a false takeover.
    """

    chunk: int
    start: int
    stop: int
    owner: str
    epoch: int
    granted_tick: int = 0
    deadline_tick: int = 0
    granted_at: float | None = None
    heartbeat_at: float | None = None
    deadline: float | None = None
    ttl: float | None = None

    @property
    def wall_clocked(self) -> bool:
        """Whether this lease carries a wall-clock deadline."""
        return self.deadline is not None

    def expired(self, now: float, skew_slack: float = DEFAULT_SKEW_SLACK) -> bool:
        """Wall-clock expiry with skew slack.

        A lease without wall-clock fields (the in-process tier's logical
        leases, observed after its coordinator died) is treated as
        expired: its tick clock died with the coordinator.
        """
        if self.deadline is None:
            return True
        return now > self.deadline + skew_slack

    def renewed(self, now: float) -> "Lease":
        """This lease with its heartbeat refreshed and deadline extended."""
        ttl = self.ttl if self.ttl is not None else 0.0
        return dataclasses.replace(self, heartbeat_at=now, deadline=now + ttl)

    def reissued(self, owner: str, now: float, ttl: float) -> "Lease":
        """A takeover lease: same chunk, new owner, **bumped epoch**."""
        return dataclasses.replace(
            self,
            owner=owner,
            epoch=self.epoch + 1,
            granted_at=now,
            heartbeat_at=now,
            deadline=now + ttl,
            ttl=ttl,
        )

    def path(self, directory: Path) -> Path:
        return directory / f"chunk-{self.chunk:06d}.json"

    def payload(self) -> str:
        record = {
            "chunk": self.chunk,
            "start": self.start,
            "stop": self.stop,
            "owner": self.owner,
            "epoch": self.epoch,
            "granted_tick": self.granted_tick,
            "deadline_tick": self.deadline_tick,
        }
        if self.wall_clocked:
            record.update(
                granted_at=self.granted_at,
                heartbeat_at=self.heartbeat_at,
                deadline=self.deadline,
                ttl=self.ttl,
            )
        return json.dumps(record, sort_keys=True) + "\n"

    def write(self, directory: Path) -> None:
        """Atomically write (or rewrite) the lease file.

        Temp file + fsync + ``os.replace``: a reader never observes a
        half-written lease from *this* path — heartbeats rewrite the lease
        mid-chunk, so readers and writers genuinely race.  (A worker dying
        mid-write on a non-atomic network filesystem can still tear one;
        :func:`read_lease` treats such files as expired.)
        """
        path = self.path(directory)
        fd, temp_name = tempfile.mkstemp(dir=directory, prefix=f".{path.name}-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self.payload())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    @classmethod
    def read(cls, path: Path) -> "Lease":
        record = json.loads(path.read_text(encoding="utf-8"))
        deadline = record.get("deadline")
        return cls(
            chunk=int(record["chunk"]),
            start=int(record["start"]),
            stop=int(record["stop"]),
            owner=str(record["owner"]),
            epoch=int(record["epoch"]),
            granted_tick=int(record.get("granted_tick", 0)),
            deadline_tick=int(record.get("deadline_tick", 0)),
            granted_at=None if record.get("granted_at") is None else float(record["granted_at"]),
            heartbeat_at=(
                None if record.get("heartbeat_at") is None else float(record["heartbeat_at"])
            ),
            deadline=None if deadline is None else float(deadline),
            ttl=None if record.get("ttl") is None else float(record["ttl"]),
        )


def lease_directory(state: CampaignState) -> Path:
    return state.directory / "leases"


def worker_directory(state: CampaignState, owner: str) -> Path:
    return state.directory / "workers" / owner


def read_lease(path: Path) -> Lease | None:
    """One lease file, or ``None`` when it cannot be read.

    A torn or garbled lease file — a worker dying mid-write on a
    filesystem without atomic rename, a reader racing a non-atomic writer
    — must never crash the coordinator: it is logged and treated exactly
    like an expired lease (its chunk is claimable again; the fencing
    epoch on the *store* side still protects against its zombie writer).
    """
    try:
        return Lease.read(path)
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        logger.warning(
            "skipping unreadable lease file; treating it as expired", path=path, error=error
        )
        return None


def read_leases(state: CampaignState) -> list[Lease]:
    """Every readable lease file currently on disk, sorted by chunk index.

    Unreadable (torn) lease files are skipped with a warning — see
    :func:`read_lease`.
    """
    directory = lease_directory(state)
    if not directory.is_dir():
        return []
    leases = (read_lease(path) for path in sorted(directory.glob("chunk-*.json")))
    return sorted(
        (lease for lease in leases if lease is not None),
        key=lambda lease: lease.chunk,
    )


# ---------------------------------------------------------------------------
# Epoch fences
# ---------------------------------------------------------------------------


def fences_path(state: CampaignState) -> Path:
    return state.directory / "fences.jsonl"


def record_fence(state: CampaignState, chunk: int, epoch: int) -> None:
    """Record that ``chunk`` may only merge from lease epoch ``epoch`` up.

    Written whenever a lease is re-issued (a retry, an expiry takeover):
    every result the superseded epochs might still produce is fenced out
    of the canonical store.  Append-only with an fsynced line per fence —
    concurrent fencers on a shared directory interleave whole lines in
    the common case, and :func:`read_fences` tolerates a torn one (the
    divergent-duplicate check on merge remains the backstop).
    """
    line = json.dumps({"chunk": int(chunk), "epoch": int(epoch)}, sort_keys=True)
    with open(fences_path(state), "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_fences(state: CampaignState) -> dict[int, int]:
    """Chunk → minimum acceptable lease epoch (highest fence recorded)."""
    fences: dict[int, int] = {}
    path = fences_path(state)
    if not path.exists():
        return fences
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                chunk, epoch = int(record["chunk"]), int(record["epoch"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                logger.warning("skipping unreadable fence line", path=path, line=number + 1)
                continue
            fences[chunk] = max(epoch, fences.get(chunk, epoch))
    return fences


# ---------------------------------------------------------------------------
# Coordinator journal
# ---------------------------------------------------------------------------


@dataclass
class JournalState:
    """Campaign state reconstructed from a coordinator journal replay."""

    events: list[dict] = field(default_factory=list)
    retries: int = 0
    expired_leases: int = 0
    degraded_chunks: list[int] = field(default_factory=list)
    abandoned_chunks: list[int] = field(default_factory=list)
    fences: dict[int, int] = field(default_factory=dict)
    plan: dict | None = None
    completed: bool = False


class CoordinatorJournal:
    """Append-only decision journal of a campaign's coordinator.

    Every coordinator decision — the plan adopted, claims observed,
    expiries declared, requeues, degradations, merges — is an fsynced
    JSON line in ``coordinator.jsonl``.  A restarted coordinator (or
    :func:`heal_campaign`, or ``scenarios show``) **replays** the journal
    to reconstruct exactly what was decided instead of inferring it from
    leftovers; the journal never holds results, so losing it costs
    diagnostics, not data.
    """

    def __init__(self, state: CampaignState) -> None:
        self.path = state.directory / "coordinator.jsonl"

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, event: str, **fields) -> None:
        record = {"event": event, "at": time.time(), **fields}
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self) -> JournalState:
        """Reconstruct coordinator state from the journal (tolerantly).

        A torn final line — the coordinator died mid-append — is skipped
        with a warning, exactly like the stores' torn tails.
        """
        state = JournalState()
        if not self.path.exists():
            return state
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    event = record["event"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    logger.warning(
                        "skipping unreadable journal line", path=self.path, line=number + 1
                    )
                    continue
                state.events.append(record)
                if event == "plan":
                    state.plan = record
                    state.completed = False
                elif event == "requeue":
                    state.retries += 1
                    fence = int(record.get("fence", 0))
                    chunk = int(record["chunk"])
                    state.fences[chunk] = max(fence, state.fences.get(chunk, fence))
                elif event == "expire":
                    state.expired_leases += 1
                elif event == "degrade":
                    chunk = int(record["chunk"])
                    if chunk not in state.degraded_chunks:
                        state.degraded_chunks.append(chunk)
                elif event == "abandon":
                    chunk = int(record["chunk"])
                    if chunk not in state.abandoned_chunks:
                        state.abandoned_chunks.append(chunk)
                elif event == "fence":
                    fence = int(record["epoch"])
                    chunk = int(record["chunk"])
                    state.fences[chunk] = max(fence, state.fences.get(chunk, fence))
                elif event == "complete":
                    state.completed = True
        return state


# ---------------------------------------------------------------------------
# Worker process entry point
# ---------------------------------------------------------------------------


def _torn_append(state: CampaignState, chunk: int, start: int, stop: int, rows) -> None:
    """Simulate a crash mid-append: half the record's bytes, fsynced.

    This is exactly the torn tail the store's recovery path handles —
    written deliberately (and fsynced, so the test observes it
    deterministically) before the injected kill.
    """
    payload = json.dumps(
        {"chunk": chunk, "start": int(start), "stop": int(stop), "rows": list(rows)},
        sort_keys=True,
    ).encode("utf-8")
    with open(state.chunks_path, "ab") as handle:
        handle.write(payload[: max(1, len(payload) // 2)])
        handle.flush()
        os.fsync(handle.fileno())


def _worker_chunk_main(
    spec: ScenarioSpec,
    directory: str,
    chunk: int,
    start: int,
    stop: int,
    attempt: int,
    injector: FaultInjector | None,
    trace_ctx: dict | None = None,
) -> None:
    """Evaluate one leased chunk inside a worker process.

    Appends the finished chunk to the worker's own store and exits 0; any
    failure exits non-zero — the coordinator judges success solely by the
    chunk's presence in the worker store, which is what makes
    crash-after-append (persisted, then died) count as success.
    """
    try:
        obs.install_in_worker(trace_ctx)
        state = CampaignState(Path(directory), spec)
        if chunk in state.completed_chunks:
            # A previous attempt crashed after its append: the work is
            # already durable, the protocol is idempotent — re-bless the
            # bytes under the current epoch (they may have been fenced by
            # the requeue that led here) and ack.
            state.record_epoch(chunk, attempt)
            os._exit(0)
        fault = injector.worker_fault(chunk, attempt) if injector is not None else None
        if fault in ("hang", "partition", "zombie"):
            # In-process tier: an expired worker is killed outright, so a
            # partitioned or zombie worker cannot outlive its takeover —
            # both collapse to a hang here.  The detached work loop
            # (repro.scenarios.detached) acts them out fully.
            time.sleep(_HANG_SECONDS)
            os._exit(_EXIT_FAILURE)
        if fault == "poison":
            raise ExperimentError(f"poisoned chunk {chunk} (injected, attempt {attempt})")
        rows = evaluate_range(spec, start, stop)
        if fault == "crash-pre":
            _torn_append(state, chunk, start, stop, rows)
            os._exit(_EXIT_CRASH_PRE)
        state.append_chunk(chunk, start, stop, rows, epoch=attempt)
        if fault == "crash-post":
            os._exit(_EXIT_CRASH_POST)
        os._exit(0)
    except ExperimentError as error:
        logger.warning("worker failed on chunk", worker=directory, chunk=chunk, error=error)
        os._exit(_EXIT_FAILURE)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class FabricProgress:
    """Outcome of one :func:`run_fabric_campaign` call."""

    state: CampaignState
    chunk_size: int
    total_chunks: int
    completed_before: int
    completed_after: int
    retries: int = 0
    expired_leases: int = 0
    degraded_chunks: list[int] = field(default_factory=list)
    abandoned_chunks: list[int] = field(default_factory=list)
    merge: MergeReport | None = None

    @property
    def finished(self) -> bool:
        return self.completed_after == self.total_chunks

    def rows(self) -> list[dict]:
        return self.state.rows()

    def aggregate(self, quantiles: Sequence[float] = (0.05, 0.5, 0.95)) -> dict:
        return self.state.aggregate(quantiles=quantiles)


@dataclass
class _ActiveLease:
    process: multiprocessing.Process
    lease: Lease
    attempt: int


def worker_store_paths(state: CampaignState) -> Iterator[Path]:
    root = state.directory / "workers"
    if not root.is_dir():
        return
    for path in sorted(root.iterdir()):
        if (path / "spec.json").is_file():
            yield path


def merge_worker_stores(
    state: CampaignState, fences: Mapping[int, int] | None = None
) -> MergeReport:
    """Merge every per-worker store under a campaign into the canonical one.

    Idempotent: chunks already merged are recognised as byte-identical
    duplicates and skipped; worker stores with torn tails (a worker died
    mid-append) are recovered by the store's own open-time truncation
    before their surviving chunks merge; chunks a zombie worker appended
    under a **fenced** (superseded) lease epoch are skipped with a
    warning — the re-issued epoch's copy is the canonical one.  ``fences``
    defaults to the campaign's recorded fences (:func:`read_fences`).
    """
    if fences is None:
        fences = read_fences(state)
    telemetry = obs.active()
    sources = list(worker_store_paths(state))
    with telemetry.span("merge", workers=len(sources)) as span:
        report = state.merge(*sources, fences=fences, skip_fenced=True)
        span.set(added=len(report.added), fenced=len(report.fenced))
        if telemetry.enabled and report.added:
            telemetry.counter("fabric.merged_chunks", len(report.added))
        return report


def _cleanup_if_complete(state: CampaignState, total_chunks: int) -> None:
    """Drop fabric scaffolding once every chunk is canonical.

    Only a fully merged campaign is cleaned: a partial one keeps its
    worker stores, lease files and fences — they are the recovery
    evidence :func:`heal_campaign` works from.  The coordinator journal
    is kept either way: it is the campaign's flight record.
    """
    if len(state.completed_chunks) != total_chunks:
        return
    shutil.rmtree(state.directory / "workers", ignore_errors=True)
    shutil.rmtree(lease_directory(state), ignore_errors=True)
    fences_path(state).unlink(missing_ok=True)
    (state.directory / "fabric.json").unlink(missing_ok=True)


def run_fabric_campaign(
    spec: ScenarioSpec,
    store: CampaignStore | str | Path,
    workers: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    policy: FaultPolicy | None = None,
    faults: FaultInjector | str | None = None,
    max_chunks: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> FabricProgress:
    """Run (or continue) a campaign on the multi-worker fabric.

    Shards the chunk plan into leases across ``workers`` worker
    processes, each writing its own isolated store; retries, re-leases
    and degrades per ``policy``; merges the worker stores into the
    canonical one on completion.  The result store is byte-identical to a
    single-writer :func:`~repro.scenarios.runner.run_campaign` of the
    same spec — under every injected fault schedule (pinned by tests).

    ``faults`` (a :class:`FaultInjector` or its CLI spec string) is the
    chaos hook; production runs leave it ``None``.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be at least 1 (got {workers})")
    if isinstance(store, (str, Path)):
        store = CampaignStore(store)
    if isinstance(faults, str):
        faults = FaultInjector.from_spec(faults)
    policy = policy or FaultPolicy()
    state = store.campaign(spec)

    chunks = plan_chunks(spec.family.count, chunk_size)
    telemetry = obs.active()
    if telemetry.enabled and not telemetry.trace_id:
        # Adopted before the first merge span so every coordinator span —
        # including the leftovers merge below — carries the campaign trace.
        telemetry.adopt_trace(obs.new_trace_id())
    # Absorb leftovers of an earlier (possibly crashed) fabric run first:
    # whatever the workers persisted is durable progress.
    merge_worker_stores(state)
    completed = validate_plan(state, chunks)
    pending = [index for index in range(len(chunks)) if index not in completed]
    journal = CoordinatorJournal(state)
    before = len(completed)
    if max_chunks is not None:
        if max_chunks < 0:
            raise ExperimentError(f"max_chunks must be non-negative (got {max_chunks})")
        pending = pending[:max_chunks]

    result = FabricProgress(
        state=state,
        chunk_size=chunk_size,
        total_chunks=len(chunks),
        completed_before=before,
        completed_after=before,
    )
    if not pending:
        result.merge = MergeReport(total_chunks=len(state.completed_chunks))
        _cleanup_if_complete(state, len(chunks))
        return result

    plan_fields = dict(
        total_chunks=len(chunks),
        chunk_size=chunk_size,
        pending=len(pending),
        workers=workers,
        tier="process",
    )
    if telemetry.trace_id:
        plan_fields["trace"] = telemetry.trace_id
    journal.append("plan", **plan_fields)
    # The coordinator root span is every worker process's causal parent;
    # its trace context rides into each worker through the spawn args.
    root_span = telemetry.span(
        "coordinate", tier="process", total_chunks=len(chunks), pending=len(pending)
    )
    root_span.__enter__()
    worker_context = obs.trace_context(telemetry)
    leases_dir = lease_directory(state)
    leases_dir.mkdir(parents=True, exist_ok=True)
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    ttl = policy.lease_ttl_ticks
    #: (ready_tick, chunk, attempt) — chunks waiting for a slot (or for
    #: their backoff delay to elapse).
    queue: list[tuple[int, int, int]] = [(0, index, 0) for index in pending]
    active: dict[str, _ActiveLease] = {}
    free_owners = [f"w{slot}" for slot in range(workers)]
    done_count = 0
    tick = 0

    def requeue(chunk: int, attempt: int, reason: str) -> None:
        next_attempt = attempt + 1
        delay_ticks = math.ceil(policy.backoff(attempt) / policy.poll_interval)
        queue.append((tick + delay_ticks, chunk, next_attempt))
        queue.sort()
        result.retries += 1
        # The re-issued lease supersedes every earlier epoch of this
        # chunk: fence them out of the canonical store so a zombie
        # attempt's late append can never merge.
        record_fence(state, chunk, next_attempt)
        journal.append(
            "requeue", chunk=chunk, attempt=attempt, fence=next_attempt, reason=reason
        )
        logger.warning(
            "chunk attempt failed; retrying",
            chunk=chunk,
            attempt=attempt,
            reason=reason,
            next_attempt=next_attempt,
            backoff=policy.backoff(attempt),
        )
        telemetry = obs.active()
        telemetry.counter("fabric.retries")
        telemetry.counter("fabric.fences")

    def degrade(chunk: int) -> None:
        # Graceful degradation: the attempt budget is spent — evaluate in
        # the parent (no worker process, no injected faults) and persist
        # through the parent's own worker store so the final merge still
        # produces the canonical byte layout.
        start, stop = chunks[chunk]
        rows = evaluate_range(spec, start, stop)
        parent_store = CampaignState(worker_directory(state, _DEGRADED_OWNER), spec)
        if chunk not in parent_store.completed_chunks:
            parent_store.append_chunk(chunk, start, stop, rows)
        result.degraded_chunks.append(chunk)
        journal.append("degrade", chunk=chunk)
        obs.active().counter("fabric.degraded_chunks")
        (leases_dir / f"chunk-{chunk:06d}.json").unlink(missing_ok=True)

    try:
        while queue or active:
            tick += 1
            # Grant leases to free workers.
            while free_owners and queue and queue[0][0] <= tick:
                _, chunk, attempt = queue.pop(0)
                start, stop = chunks[chunk]
                if attempt == 0 and faults is not None and faults.coordinator_fault(chunk):
                    # The worker "takes" the lease and vanishes: the lease
                    # file stays behind for `scenarios heal`.
                    Lease(chunk, start, stop, _LOST_OWNER, 0, tick, tick + ttl).write(
                        leases_dir
                    )
                    result.abandoned_chunks.append(chunk)
                    journal.append("abandon", chunk=chunk)
                    logger.warning("chunk abandoned (injected lost worker)", chunk=chunk)
                    continue
                if attempt >= policy.max_attempts:
                    degrade(chunk)
                    done_count += 1
                    if progress is not None:
                        progress(before + done_count, len(chunks))
                    continue
                owner = free_owners.pop(0)
                lease = Lease(chunk, start, stop, owner, attempt, tick, tick + ttl)
                lease.write(leases_dir)
                process = context.Process(
                    target=_worker_chunk_main,
                    args=(
                        spec,
                        str(worker_directory(state, owner)),
                        chunk,
                        start,
                        stop,
                        attempt,
                        faults,
                        worker_context,
                    ),
                    daemon=True,
                )
                process.start()
                active[owner] = _ActiveLease(process, lease, attempt)
            # Reap finished / expired workers.
            for owner, slot in list(active.items()):
                lease = slot.lease
                if not slot.process.is_alive():
                    slot.process.join()
                    del active[owner]
                    free_owners.append(owner)
                    free_owners.sort()
                    worker_state = CampaignState(worker_directory(state, owner), spec)
                    if lease.chunk in worker_state.completed_chunks:
                        # Success — including crash-after-append: the
                        # chunk is durable even though the worker died.
                        lease.path(leases_dir).unlink(missing_ok=True)
                        done_count += 1
                        if progress is not None:
                            progress(before + done_count, len(chunks))
                    else:
                        reason = (
                            "clean failure"
                            if slot.process.exitcode == _EXIT_FAILURE
                            else f"worker crash (exit {slot.process.exitcode})"
                        )
                        requeue(lease.chunk, slot.attempt, reason)
                elif tick > lease.deadline_tick:
                    # Logical heartbeat deadline expired: the worker is
                    # hung.  Kill it and re-lease the chunk.
                    slot.process.terminate()
                    slot.process.join(timeout=5.0)
                    if slot.process.is_alive():
                        slot.process.kill()
                        slot.process.join()
                    del active[owner]
                    free_owners.append(owner)
                    free_owners.sort()
                    result.expired_leases += 1
                    obs.active().counter("fabric.expired_leases")
                    journal.append(
                        "expire", chunk=lease.chunk, owner=owner, epoch=lease.epoch
                    )
                    requeue(lease.chunk, slot.attempt, "lease expired (hang)")
            if active or (queue and queue[0][0] > tick):
                time.sleep(policy.poll_interval)
    finally:
        for slot in active.values():
            slot.process.terminate()
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():
                slot.process.kill()

    result.merge = merge_worker_stores(state)
    result.completed_after = len(state.completed_chunks)
    journal.append(
        "merge",
        added=len(result.merge.added),
        duplicates=len(result.merge.duplicates),
        fenced=len(result.merge.fenced),
        total=result.merge.total_chunks,
    )
    if result.finished:
        journal.append("complete", total_chunks=len(chunks))
    _cleanup_if_complete(state, len(chunks))
    root_span.__exit__(None, None, None)
    return result


# ---------------------------------------------------------------------------
# Healing
# ---------------------------------------------------------------------------


@dataclass
class HealReport:
    """Outcome of one :func:`heal_campaign` call."""

    state: CampaignState
    merge: MergeReport
    healed_chunks: list[int] = field(default_factory=list)
    cleared_leases: list[int] = field(default_factory=list)
    live_leases: list[int] = field(default_factory=list)
    missing_chunks: int = 0

    @property
    def complete(self) -> bool:
        return self.missing_chunks == 0

    def describe(self) -> str:
        live = (
            f", {len(self.live_leases)} live lease(s) left to their workers"
            if self.live_leases
            else ""
        )
        return (
            f"{self.merge.describe()}; healed {len(self.healed_chunks)} "
            f"abandoned chunk(s), cleared {len(self.cleared_leases)} stale "
            f"lease(s){live}, {self.missing_chunks} chunk(s) still missing"
        )


def heal_campaign(
    spec: ScenarioSpec,
    store: CampaignStore | str | Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    skew_slack: float = DEFAULT_SKEW_SLACK,
) -> HealReport:
    """Recover a campaign whose fabric coordinator died mid-run.

    Three passes, each durable on its own:

    1. **merge** every surviving per-worker store into the canonical one
       (crash-after-append chunks and torn worker tails surface here;
       chunks appended under a fenced, superseded lease epoch are skipped
       — the re-issued epoch's copy is the canonical one);
    2. **re-evaluate** every leased-but-missing chunk in the healing
       parent — the abandoned/expired leases name their exact
       ``[start, stop)`` ranges, so no chunk plan is needed to find them.
       A **live** wall-clock lease (its ``deadline + skew_slack`` has not
       passed — a detached worker is still computing it) is left alone
       and reported in ``live_leases``; logical-tick leases are always
       stale, their coordinator's tick clock died with it.  An unreadable
       (torn) lease file is treated as expired and re-evaluated from the
       chunk plan;
    3. **clear** lease files whose chunks are now canonical.

    Chunks that were never leased (the coordinator died before sharding
    that far) are reported as ``missing_chunks``; ``scenarios resume`` or
    a fresh fabric run completes them.
    """
    if isinstance(store, (str, Path)):
        store = CampaignStore(store)
    state = store.campaign(spec)
    merged = merge_worker_stores(state)
    report = HealReport(state=state, merge=merged)
    journal = CoordinatorJournal(state)
    now = time.time()

    plan = plan_chunks(spec.family.count, chunk_size)
    leases: list[Lease] = []
    torn_chunks: list[int] = []
    leases_dir = lease_directory(state)
    if leases_dir.is_dir():
        for path in sorted(leases_dir.glob("chunk-*.json")):
            lease = read_lease(path)
            if lease is not None:
                leases.append(lease)
                continue
            # The filename carries the chunk index; a torn lease is an
            # expired lease whose range we recover from the plan.
            try:
                torn_chunks.append(int(path.stem.partition("-")[2]))
            except ValueError:
                path.unlink(missing_ok=True)

    live = {
        lease.chunk
        for lease in leases
        if lease.chunk not in state.completed_chunks
        and not lease.expired(now, skew_slack)
    }
    report.live_leases = sorted(live)
    stale: list[tuple[int, int, int]] = [
        (lease.chunk, lease.start, lease.stop)
        for lease in leases
        if lease.chunk not in state.completed_chunks and lease.chunk not in live
    ]
    stale.extend(
        (chunk, *plan[chunk])
        for chunk in torn_chunks
        if chunk not in state.completed_chunks and chunk < len(plan)
    )
    if stale:
        heal_store = CampaignState(worker_directory(state, _HEAL_OWNER), spec)
        for chunk, start, stop in stale:
            if chunk not in heal_store.completed_chunks:
                rows = evaluate_range(spec, start, stop)
                heal_store.append_chunk(chunk, start, stop, rows)
            report.healed_chunks.append(chunk)
        healed_merge = state.merge(heal_store)
        report.merge.added.extend(healed_merge.added)
        report.merge.duplicates.extend(healed_merge.duplicates)
        report.merge.rewritten = report.merge.rewritten or healed_merge.rewritten
    report.merge.total_chunks = len(state.completed_chunks)

    for lease in leases:
        if lease.chunk in state.completed_chunks:
            lease.path(leases_dir).unlink(missing_ok=True)
            report.cleared_leases.append(lease.chunk)
    for chunk in torn_chunks:
        if chunk in state.completed_chunks:
            (leases_dir / f"chunk-{chunk:06d}.json").unlink(missing_ok=True)

    report.missing_chunks = max(
        0, len(plan) - len(state.completed_chunks) - len(report.live_leases)
    )
    journal.append(
        "heal",
        healed=report.healed_chunks,
        cleared=report.cleared_leases,
        live=report.live_leases,
        missing=report.missing_chunks,
    )
    if not report.live_leases:
        _cleanup_if_complete(state, len(plan))
    return report
