"""Multi-machine campaign fabric: detached workers over a shared directory.

The in-process fabric (:mod:`repro.scenarios.fabric`) spawns its workers
and enforces lease expiry on a logical tick clock it owns — which cannot
express cross-machine expiry.  This module is the **detached tier**: any
number of ``scenarios work`` processes, on any machines that see one
shared directory, cooperate through plain files only:

* the coordinator (:func:`run_detached_campaign`) publishes the campaign
  **advert** (``fabric.json``: chunk size, lease TTL, skew slack, attempt
  budget) and then *observes* — it spawns nothing;
* each worker (:func:`work_loop`) runs a long-lived
  claim → evaluate → append → release loop: claims are **atomic file
  creations** (``os.link`` of a private temp lease — exactly one claimant
  wins a race), appends go to the worker's own isolated store, heartbeats
  rewrite the lease atomically every ``ttl / 4`` seconds;
* expiry is **wall-clock with skew slack**: nobody declares a lease dead
  before ``deadline + skew_slack``, so modest clock skew between machines
  never causes a false takeover;
* every takeover bumps the chunk's lease **epoch** and records a fence
  (:func:`~repro.scenarios.fabric.record_fence`): a partitioned or zombie
  worker that appends under a superseded epoch is fenced out of the
  canonical store at merge time, and a worker that notices the takeover
  at heartbeat-renewal time abandons its chunk *before* append time;
* the coordinator journals every decision to ``coordinator.jsonl``
  (:class:`~repro.scenarios.fabric.CoordinatorJournal`), so a restarted
  coordinator — or ``scenarios heal`` — reconstructs campaign state
  instead of inferring it.

Worker stores that are *live* (their owner may be mid-append) are only
ever observed through **read-only snapshots**
(``CampaignState(read_only=True)``): an observing open must never
truncate a torn tail the owner is still writing behind.

Chunk results are deterministic functions of the spec, so every recovery
path — crash, hang, partition, zombie, clock skew, coordinator kill +
restart — converges to a ``chunks.jsonl`` byte-identical to an
uninterrupted single-writer run (pinned by the tests and the CI chaos
smoke).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import repro.obs as obs
from repro.exceptions import ExperimentError
from repro.obs import get_logger
from repro.scenarios.fabric import (
    DEFAULT_SKEW_SLACK,
    CoordinatorJournal,
    FaultInjector,
    FaultPolicy,
    Lease,
    _DEGRADED_OWNER,
    _EXIT_CRASH_POST,
    _EXIT_CRASH_PRE,
    _cleanup_if_complete,
    _torn_append,
    lease_directory,
    read_fences,
    read_lease,
    record_fence,
    worker_directory,
    worker_store_paths,
)
from repro.scenarios.runner import (
    DEFAULT_CHUNK_SIZE,
    evaluate_range,
    plan_chunks,
    validate_plan,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import CampaignState, CampaignStore, MergeReport

__all__ = [
    "DetachedProgress",
    "FabricAdvert",
    "WorkerReport",
    "default_owner",
    "merge_worker_snapshots",
    "run_detached_campaign",
    "work_loop",
]

logger = get_logger(__name__)

#: Default seconds between a worker's claim-scan rounds when nothing was
#: claimable; actual sleeps are jittered per owner (see
#: :func:`_claim_backoff`) to avoid thundering-herd claims.
DEFAULT_CLAIM_POLL = 0.25

#: Extra wall-clock margin (beyond ``skew_slack``) an injected zombie or
#: partition sleeps past its lease deadline, so the takeover it is meant
#: to collide with has definitely been possible.
_TAKEOVER_GRACE = 0.5


def default_owner() -> str:
    """A filesystem-safe owner id unique to this process: host + pid."""
    return _sanitize_owner(f"{socket.gethostname()}-{os.getpid()}")


def _sanitize_owner(owner: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]", "-", owner).strip(".-")
    if not cleaned:
        raise ExperimentError(f"owner id {owner!r} has no filesystem-safe characters")
    return cleaned


# ---------------------------------------------------------------------------
# The campaign advert: fabric.json
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricAdvert:
    """The coordinator's published campaign parameters (``fabric.json``).

    Workers must agree with the coordinator — and with each other — on
    the chunk plan and the lease protocol's constants; the advert is the
    single source of truth, written atomically once per campaign.
    """

    chunk_size: int
    total_chunks: int
    ttl: float
    skew_slack: float = DEFAULT_SKEW_SLACK
    max_attempts: int = 3
    #: Campaign trace id + the coordinator root span's cross-process ref
    #: (``owner:pid:span_id``) — how detached ``scenarios work`` claimants
    #: join the campaign's causal tree.  Optional and ignored by the
    #: protocol itself; old adverts without them stay readable.
    trace: str | None = None
    parent: str | None = None

    def write(self, directory: Path) -> None:
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True) + "\n"
        path = directory / "fabric.json"
        fd, temp_name = tempfile.mkstemp(dir=directory, prefix=".fabric.json-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    @classmethod
    def read(cls, directory: Path) -> "FabricAdvert | None":
        """The advert, or ``None`` when absent or (transiently) unreadable."""
        path = directory / "fabric.json"
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            return cls(
                chunk_size=int(record["chunk_size"]),
                total_chunks=int(record["total_chunks"]),
                ttl=float(record["ttl"]),
                skew_slack=float(record["skew_slack"]),
                max_attempts=int(record["max_attempts"]),
                trace=record.get("trace") or None,
                parent=record.get("parent") or None,
            )
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            logger.warning("unreadable fabric advert", path=path, error=error)
            return None


# ---------------------------------------------------------------------------
# Atomic claim / takeover / release over the shared lease directory
# ---------------------------------------------------------------------------


def _claim_lease(leases_dir: Path, lease: Lease) -> bool:
    """Atomically create a lease file; exactly one claimant wins.

    The payload is written (and fsynced) to a private temp file first,
    then ``os.link``\\ ed to the lease path — link fails with ``EEXIST``
    when any other party created the file in between, which is the lost
    race.  Works on any POSIX filesystem including NFS.
    """
    path = lease.path(leases_dir)
    fd, temp_name = tempfile.mkstemp(dir=leases_dir, prefix=f".{path.name}-claim-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(lease.payload())
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(temp_name, path)
        except FileExistsError:
            return False
        return True
    finally:
        if os.path.exists(temp_name):
            os.unlink(temp_name)


def _take_over_lease(leases_dir: Path, stale: Lease) -> bool:
    """Displace an expired lease; exactly one taker wins.

    ``os.rename`` of the lease file to a unique tombstone name: only one
    renamer succeeds (the others get ``ENOENT``), and the winner then owns
    the now-vacant lease path.  The tombstone is removed once the new
    lease is in place.
    """
    path = stale.path(leases_dir)
    tombstone = leases_dir / f".{path.name}.stale-{stale.epoch}-{stale.owner}"
    try:
        os.rename(path, tombstone)
    except FileNotFoundError:
        return False
    tombstone.unlink(missing_ok=True)
    return True


def _release_lease(leases_dir: Path, lease: Lease) -> bool:
    """Guarded release: unlink only if the lease is still ours.

    A worker that lost its lease to a takeover (partition, zombie) must
    never delete the *new* claimant's lease file — re-read and compare
    owner + epoch before unlinking.  The read-check-unlink window is not
    atomic; the fencing epoch on the store side is the backstop.
    """
    current = read_lease(lease.path(leases_dir))
    if current is None or current.owner != lease.owner or current.epoch != lease.epoch:
        return False
    lease.path(leases_dir).unlink(missing_ok=True)
    return True


def _lease_lost(leases_dir: Path, lease: Lease) -> bool:
    """Whether ``lease`` was displaced (taken over or cleared) on disk."""
    current = read_lease(lease.path(leases_dir))
    return current is None or current.owner != lease.owner or current.epoch != lease.epoch


def _claim_backoff(owner: str, round_number: int, poll: float) -> float:
    """Deterministic per-owner jitter in ``[0.5, 1.5) * poll`` seconds.

    Every worker sleeps a *different* (but reproducible) fraction of the
    poll interval between claim scans, so a fleet started simultaneously
    does not hammer the shared directory in lockstep.
    """
    digest = hashlib.sha256(f"claim-jitter:{owner}:{round_number}".encode()).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return poll * (0.5 + draw)


# ---------------------------------------------------------------------------
# Read-only observation of live worker stores
# ---------------------------------------------------------------------------


def _worker_snapshots(state: CampaignState) -> list[CampaignState]:
    """Read-only snapshots of every per-worker store under a campaign.

    Live stores are never opened writable by an observer: a repairing
    open would truncate a torn tail the owning worker is still appending
    behind.
    """
    return [
        CampaignState(path, state.spec, read_only=True)
        for path in worker_store_paths(state)
    ]


def merge_worker_snapshots(state: CampaignState) -> MergeReport:
    """Merge worker stores into the canonical one via read-only snapshots.

    The detached coordinator's merge: fences are honoured
    (``skip_fenced`` — a zombie's stale-epoch chunk is skipped, the
    re-issued epoch's byte-identical copy is canonical) and the sources
    stay untouched on disk.
    """
    fences = read_fences(state)
    telemetry = obs.active()
    snapshots = _worker_snapshots(state)
    with telemetry.span("merge", workers=len(snapshots)) as span:
        report = state.merge(*snapshots, fences=fences, skip_fenced=True)
        span.set(added=len(report.added), fenced=len(report.fenced))
    if telemetry.enabled and report.added:
        telemetry.counter("coordinator.merged_chunks", len(report.added))
    return report


def _observed_chunks(state: CampaignState, fences: dict[int, int]) -> set[int]:
    """Chunks durable *somewhere*: canonical, or unfenced in a worker store.

    A chunk a zombie appended under a superseded epoch does **not** count
    — its bytes will be fenced out at merge time, so the chunk still
    needs a legitimate evaluation.
    """
    done = set(state.completed_chunks)
    for snapshot in _worker_snapshots(state):
        for index in snapshot.completed_chunks:
            if index in done:
                continue
            epoch = snapshot.chunk_epoch(index)
            fence = fences.get(index)
            if epoch is not None and fence is not None and epoch < fence:
                continue
            done.add(index)
    return done


# ---------------------------------------------------------------------------
# The detached worker: claim → evaluate → append → release
# ---------------------------------------------------------------------------


@dataclass
class WorkerReport:
    """Outcome of one :func:`work_loop` run."""

    owner: str
    completed: list[int] = field(default_factory=list)
    abandoned: list[int] = field(default_factory=list)
    failed: list[int] = field(default_factory=list)
    drained: bool = False

    def describe(self) -> str:
        drained = " (drained on signal)" if self.drained else ""
        return (
            f"worker {self.owner}: {len(self.completed)} chunk(s) completed, "
            f"{len(self.abandoned)} abandoned to takeovers, "
            f"{len(self.failed)} failed{drained}"
        )


class _Heartbeat:
    """Background lease renewal for one in-flight chunk.

    Every beat atomically rewrites the lease with a fresh
    ``heartbeat_at``/``deadline`` — but first re-reads it: a lease that no
    longer names this owner/epoch was **taken over** (we were partitioned
    or too slow), and the worker must abandon the chunk before append
    time.  ``fenced`` latches that observation.
    """

    def __init__(
        self, leases_dir: Path, lease: Lease, interval: float, now: Callable[[], float]
    ) -> None:
        self.leases_dir = leases_dir
        self.lease = lease
        self.interval = interval
        self.now = now
        self.fenced = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if _lease_lost(self.leases_dir, self.lease):
                self.fenced.set()
                logger.warning(
                    "lost lease at renewal; abandoning before append",
                    owner=self.lease.owner, chunk=self.lease.chunk,
                    epoch=self.lease.epoch,
                )
                return
            self.lease = self.lease.renewed(self.now())
            try:
                self.lease.write(self.leases_dir)
                obs.active().counter("worker.heartbeats")
            except OSError as error:
                logger.warning(
                    "failed to renew lease",
                    owner=self.lease.owner, chunk=self.lease.chunk, error=error,
                )


def work_loop(
    campaign_dir: str | Path,
    owner: str | None = None,
    faults: FaultInjector | str | None = None,
    poll: float = DEFAULT_CLAIM_POLL,
    max_chunks: int | None = None,
    wait: float = 30.0,
    stop: threading.Event | None = None,
    install_signal_handlers: bool = False,
    spec: ScenarioSpec | None = None,
) -> WorkerReport:
    """Run a detached worker over a shared campaign directory.

    The long-lived loop behind ``scenarios work``: scan the shared lease
    directory, **claim** an unleased pending chunk (or **take over** an
    expired lease, bumping its epoch and recording a fence), evaluate it
    while a heartbeat thread renews the lease, **append** to this
    worker's own isolated store (recording the lease epoch), and
    **release** the lease guardedly.  Exits when the plan is complete,
    ``max_chunks`` claims have been worked, or ``stop`` is set — SIGTERM
    (with ``install_signal_handlers=True``) sets ``stop``, so an
    in-flight chunk is *drained*: finished and released, never torn.

    The campaign's spec and protocol constants come from the shared
    directory itself (``spec.json`` + ``fabric.json``), published by the
    coordinator; the worker waits up to ``wait`` seconds for them, so
    workers may be started first.

    ``faults`` acts out this worker's injected chaos, including the
    machine-tier kinds: ``partition`` computes without heartbeating and
    abandons if taken over; ``zombie`` sleeps past its own expiry and
    appends under its stale (fenced) epoch anyway; ``skew:SECONDS``
    offsets every clock read this worker makes.
    """
    campaign_dir = Path(campaign_dir)
    if isinstance(faults, str):
        faults = FaultInjector.from_spec(faults)
    owner = _sanitize_owner(owner) if owner else default_owner()
    stop = stop or threading.Event()
    report = WorkerReport(owner=owner)
    clock_skew = faults.clock_skew if faults is not None else 0.0

    def now() -> float:
        # The injected clock skew applies to *every* wall-clock read this
        # worker makes — granted/heartbeat/deadline stamps and expiry
        # checks alike — exactly like a machine with a drifted clock.
        return time.time() + clock_skew

    if install_signal_handlers:

        def _drain(signum, frame) -> None:
            logger.warning(
                "received signal; draining current lease", owner=owner, signal=signum
            )
            stop.set()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)

    spec, advert = _await_campaign(campaign_dir, wait, stop, spec)
    if spec is None or advert is None:
        report.drained = stop.is_set()
        return report
    if advert.trace:
        # Join the campaign trace the coordinator advertised: every span
        # this worker emits carries the trace id, and its top-level spans
        # name the coordinator's root span as their causal parent.
        obs.active().adopt_trace(advert.trace, advert.parent)
    plan = plan_chunks_from_advert(spec, advert)
    leases_dir = lease_directory_of(campaign_dir)
    leases_dir.mkdir(parents=True, exist_ok=True)
    worker_state = CampaignState(campaign_dir / "workers" / owner, spec)
    heartbeat_interval = max(0.05, advert.ttl / 4.0)

    claimed_budget = max_chunks if max_chunks is not None else None
    round_number = 0
    while not stop.is_set():
        if claimed_budget is not None and claimed_budget <= 0:
            break
        canonical = CampaignState(campaign_dir, spec, read_only=True)
        fences = read_fences(canonical)
        done = _observed_chunks(canonical, fences)
        if len(done) >= len(plan):
            break
        claimed = _claim_next(
            leases_dir, plan, done, fences, owner, advert, now, report
        )
        if claimed is None:
            round_number += 1
            stop.wait(_claim_backoff(owner, round_number, poll))
            continue
        if claimed_budget is not None:
            claimed_budget -= 1
        _work_one_chunk(
            leases_dir, worker_state, claimed, advert, faults, now,
            heartbeat_interval, report,
        )
    report.drained = stop.is_set()
    logger.info(report.describe())
    obs.active().flush()
    return report


def lease_directory_of(campaign_dir: Path) -> Path:
    return Path(campaign_dir) / "leases"


def plan_chunks_from_advert(spec: ScenarioSpec, advert: FabricAdvert) -> list[tuple[int, int]]:
    plan = plan_chunks(spec.family.count, advert.chunk_size)
    if len(plan) != advert.total_chunks:
        raise ExperimentError(
            f"fabric advert promises {advert.total_chunks} chunk(s) but the spec "
            f"plans {len(plan)}; the shared directory mixes campaign generations"
        )
    return plan


def _await_campaign(
    campaign_dir: Path,
    wait: float,
    stop: threading.Event,
    spec: ScenarioSpec | None,
) -> tuple[ScenarioSpec | None, FabricAdvert | None]:
    """Wait for the coordinator's ``spec.json`` + ``fabric.json`` to appear."""
    deadline = time.monotonic() + wait
    spec_path = campaign_dir / "spec.json"
    while True:
        if spec is None and spec_path.is_file():
            try:
                spec = ScenarioSpec.from_json(spec_path.read_text(encoding="utf-8"))
            except (OSError, ValueError, ExperimentError) as error:
                logger.warning("unreadable spec; retrying", path=spec_path, error=error)
        advert = FabricAdvert.read(campaign_dir)
        if spec is not None and advert is not None:
            return spec, advert
        if stop.is_set() or time.monotonic() >= deadline:
            logger.warning(
                "no campaign advert; is the coordinator "
                "(`scenarios run --detached-workers`) running?",
                directory=campaign_dir, waited=wait,
            )
            return None, None
        stop.wait(0.1)


def _claim_next(
    leases_dir: Path,
    plan: Sequence[tuple[int, int]],
    done: set[int],
    fences: dict[int, int],
    owner: str,
    advert: FabricAdvert,
    now: Callable[[], float],
    report: WorkerReport,
) -> Lease | None:
    """Claim one pending chunk: a vacant lease path, or an expired lease.

    The claim epoch starts at the chunk's current fence (takeovers bump
    past it), so a freshly claimed chunk always merges over any fenced
    leftovers.  Chunks whose next epoch would exhaust the advert's
    attempt budget are left for the coordinator's degradation path.
    """
    for chunk, (start, stop_platform) in enumerate(plan):
        if chunk in done:
            continue
        path = leases_dir / f"chunk-{chunk:06d}.json"
        current = read_lease(path) if path.exists() else None
        moment = now()
        if current is None:
            epoch = fences.get(chunk, 0)
            if epoch >= advert.max_attempts:
                continue
            lease = Lease(
                chunk=chunk, start=start, stop=stop_platform, owner=owner,
                epoch=epoch, granted_at=moment, heartbeat_at=moment,
                deadline=moment + advert.ttl, ttl=advert.ttl,
            )
            if _claim_lease(leases_dir, lease):
                obs.active().counter("worker.claims")
                return lease
            continue
        # A leftover lease of this very owner (a prior life crashed) is as
        # expired as anyone else's — the wall clock decides, not the name.
        if not current.expired(moment, advert.skew_slack):
            continue
        next_epoch = max(current.epoch, fences.get(chunk, 0)) + 1
        if next_epoch >= advert.max_attempts:
            continue
        if not _take_over_lease(leases_dir, current):
            continue
        record_fence_at(leases_dir.parent, chunk, next_epoch)
        lease = Lease(
            chunk=chunk, start=start, stop=stop_platform, owner=owner,
            epoch=next_epoch, granted_at=moment, heartbeat_at=moment,
            deadline=moment + advert.ttl, ttl=advert.ttl,
        )
        lease.write(leases_dir)
        telemetry = obs.active()
        telemetry.counter("worker.claims")
        telemetry.counter("worker.takeovers")
        logger.warning(
            "took over expired lease",
            owner=owner, chunk=chunk, holder=current.owner,
            epoch=current.epoch, fence=next_epoch,
        )
        return lease
    return None


def record_fence_at(campaign_dir: Path, chunk: int, epoch: int) -> None:
    """``record_fence`` addressed by directory (workers hold no state)."""
    line = json.dumps({"chunk": int(chunk), "epoch": int(epoch)}, sort_keys=True)
    with open(Path(campaign_dir) / "fences.jsonl", "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _work_one_chunk(
    leases_dir: Path,
    worker_state: CampaignState,
    lease: Lease,
    advert: FabricAdvert,
    faults: FaultInjector | None,
    now: Callable[[], float],
    heartbeat_interval: float,
    report: WorkerReport,
) -> None:
    """Evaluate one claimed chunk, acting out any injected fault."""
    chunk = lease.chunk
    telemetry = obs.active()
    fault = faults.worker_fault(chunk, lease.epoch) if faults is not None else None
    spec = worker_state.spec

    if chunk in worker_state.completed_chunks:
        # A prior life of this worker crashed after the append: the bytes
        # are durable — re-bless them under the current epoch (they may
        # have been fenced by the takeover that led here) and release.
        worker_state.record_epoch(chunk, lease.epoch)
        _release_lease(leases_dir, lease)
        report.completed.append(chunk)
        telemetry.counter("worker.completed")
        return

    if fault == "hang":
        # A hung worker stops making progress *and* stops heartbeating:
        # sleep past our own expiry, then abandon — someone else has (or
        # will have) taken the chunk over.
        _sleep_past_expiry(lease, advert, now)
        report.abandoned.append(chunk)
        telemetry.counter("worker.abandoned")
        return

    if fault == "poison":
        # A deterministic failure: surrender the lease *expired* (deadline
        # in the past) so the next scanner retries it under a bumped,
        # fenced epoch — until the attempt budget degrades it.
        logger.warning("poisoned chunk (injected)", owner=lease.owner, chunk=chunk)
        surrendered = dataclasses.replace(
            lease, heartbeat_at=now(), deadline=now() - advert.skew_slack - advert.ttl
        )
        surrendered.write(leases_dir)
        report.failed.append(chunk)
        telemetry.counter("worker.failed")
        return

    heartbeat: _Heartbeat | None = None
    if fault not in ("partition", "zombie"):
        heartbeat = _Heartbeat(leases_dir, lease, heartbeat_interval, now).start()
    try:
        with telemetry.span(
            "work", chunk=chunk, owner=lease.owner, epoch=lease.epoch
        ) as work_span:
            rows = evaluate_range(spec, lease.start, lease.stop)
            work_span.set(rows=len(rows))
        if fault in ("partition", "zombie"):
            # Partitioned/zombie workers never heartbeated: sleep until the
            # lease has definitely been expirable, so the takeover this
            # fault is meant to collide with has had its chance.
            _sleep_past_expiry(lease, advert, now)
        if heartbeat is not None:
            heartbeat.stop()
            if heartbeat.fenced.is_set():
                report.abandoned.append(chunk)
                telemetry.counter("worker.abandoned")
                return
        if fault == "partition" and _lease_lost(leases_dir, lease):
            # The renewal-time check a partitioned worker never ran: the
            # append-time fence.  Taken over → abandon, never append.
            logger.warning(
                "chunk was taken over during the partition; abandoning",
                owner=lease.owner, chunk=chunk,
            )
            report.abandoned.append(chunk)
            telemetry.counter("worker.abandoned")
            return
        # A zombie skips every check — that is the point: its stale-epoch
        # append must be fenced out at merge time, not trusted here.
        if fault == "crash-pre":
            _torn_append(worker_state, chunk, lease.start, lease.stop, rows)
            os._exit(_EXIT_CRASH_PRE)
        try:
            with telemetry.span("append", chunk=chunk, rows=len(rows)):
                worker_state.append_chunk(
                    chunk, lease.start, lease.stop, rows, epoch=lease.epoch
                )
        except OSError:
            if fault != "zombie":
                raise
            # The campaign completed while this zombie slept and the
            # coordinator tore the worker scaffolding down; the stale
            # append has nowhere to land, which is the same outcome the
            # merge fence would have forced.
            logger.warning(
                "chunk outlived the campaign; abandoning stale append",
                owner=lease.owner, chunk=chunk,
            )
            report.abandoned.append(chunk)
            telemetry.counter("worker.abandoned")
            return
        if fault == "crash-post":
            os._exit(_EXIT_CRASH_POST)
        _release_lease(leases_dir, lease)
        report.completed.append(chunk)
        telemetry.counter("worker.completed")
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        telemetry.flush()


def _sleep_past_expiry(lease: Lease, advert: FabricAdvert, now: Callable[[], float]) -> None:
    deadline = (lease.deadline or now()) + advert.skew_slack + _TAKEOVER_GRACE
    while now() < deadline:
        time.sleep(min(0.05, max(0.0, deadline - now())))


# ---------------------------------------------------------------------------
# The detached coordinator: publish, observe, expire, degrade, merge
# ---------------------------------------------------------------------------


@dataclass
class DetachedProgress:
    """Outcome of one :func:`run_detached_campaign` call."""

    state: CampaignState
    chunk_size: int
    total_chunks: int
    completed_before: int
    completed_after: int
    retries: int = 0
    expired_leases: int = 0
    degraded_chunks: list[int] = field(default_factory=list)
    resumed_from_journal: bool = False
    merge: MergeReport | None = None

    @property
    def finished(self) -> bool:
        return self.completed_after == self.total_chunks

    def rows(self) -> list[dict]:
        return self.state.rows()

    def aggregate(self, quantiles: Sequence[float] = (0.05, 0.5, 0.95)) -> dict:
        return self.state.aggregate(quantiles=quantiles)


def run_detached_campaign(
    spec: ScenarioSpec,
    store: CampaignStore | str | Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    policy: FaultPolicy | None = None,
    wait_timeout: float | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> DetachedProgress:
    """Coordinate a campaign worked by detached ``scenarios work`` processes.

    Publishes the campaign advert, then **observes** the shared directory
    until the plan is complete: worker stores are merged eagerly (through
    read-only snapshots — never repairing a live store), released leases
    of canonical chunks are cleared, **expired** leases are fenced and
    cleared (their chunk becomes claimable under a bumped epoch), and a
    chunk whose attempt budget is exhausted **degrades** to an in-parent
    evaluation.  Every decision is journaled to ``coordinator.jsonl``; a
    restarted coordinator replays the journal and resumes the same
    campaign — re-running it is always safe.

    ``wait_timeout`` bounds the observation loop (``None`` waits until
    complete); on expiry the campaign state is left intact for
    ``scenarios heal`` or a restarted coordinator, and the error names
    the store so the hint is copy-pasteable.
    """
    if isinstance(store, (str, Path)):
        store = CampaignStore(store)
    policy = policy or FaultPolicy()
    state = store.campaign(spec)
    journal = CoordinatorJournal(state)
    prior = journal.replay()
    chunks = plan_chunks(spec.family.count, chunk_size)

    telemetry = obs.active()
    if telemetry.enabled and not telemetry.trace_id:
        # Adopt the campaign trace before the first merge span so every
        # coordinator span carries it.  A restarted coordinator re-joins
        # the *same* trace: the prior incarnation published it in the
        # advert (and journaled it in the plan event), so all sidecars
        # still stitch into one causal tree across the restart.
        existing = FabricAdvert.read(state.directory)
        prior_trace = existing.trace if existing is not None else None
        if not prior_trace and prior.plan is not None:
            prior_trace = prior.plan.get("trace") or None
        telemetry.adopt_trace(prior_trace or obs.new_trace_id())

    merge_worker_snapshots(state)
    completed = validate_plan(state, chunks)
    before = len(completed)
    result = DetachedProgress(
        state=state,
        chunk_size=chunk_size,
        total_chunks=len(chunks),
        completed_before=before,
        completed_after=before,
        resumed_from_journal=bool(prior.events),
    )
    if prior.events:
        # A restarted coordinator: the journal is the record of what the
        # previous incarnation already decided — adopt its counters
        # instead of inferring them from leftovers.
        result.retries = prior.retries
        result.expired_leases = prior.expired_leases
        result.degraded_chunks = list(prior.degraded_chunks)
        logger.warning(
            "coordinator restarted: replayed journal",
            directory=state.directory, events=len(prior.events),
            retries=prior.retries, expiries=prior.expired_leases,
            degraded=len(prior.degraded_chunks),
        )
    if before == len(chunks):
        result.merge = MergeReport(total_chunks=before)
        _cleanup_if_complete(state, len(chunks))
        return result

    lease_directory(state).mkdir(parents=True, exist_ok=True)
    # The coordinator root span opens before the advert is written so the
    # advert can carry its ref — detached workers adopt it as the causal
    # parent of their claim spans.
    root_span = telemetry.span(
        "coordinate",
        tier="detached",
        total_chunks=len(chunks),
        pending=len(chunks) - before,
    )
    root_span.__enter__()
    advert = FabricAdvert(
        chunk_size=chunk_size,
        total_chunks=len(chunks),
        ttl=policy.timeout,
        skew_slack=policy.skew_slack,
        max_attempts=policy.max_attempts,
        trace=telemetry.trace_id,
        parent=telemetry.current_ref(),
    )
    advert.write(state.directory)
    plan_fields = dict(
        total_chunks=len(chunks),
        chunk_size=chunk_size,
        pending=len(chunks) - before,
        tier="detached",
        ttl=policy.timeout,
        skew_slack=policy.skew_slack,
    )
    if telemetry.trace_id:
        plan_fields["trace"] = telemetry.trace_id
    journal.append("plan", **plan_fields)

    leases_dir = lease_directory(state)
    deadline = None if wait_timeout is None else time.monotonic() + wait_timeout
    reported = before
    try:
        while True:
            merged = merge_worker_snapshots(state)
            if merged.added:
                journal.append("merge", added=len(merged.added), fenced=len(merged.fenced))
            done = state.completed_chunks
            if progress is not None and len(done) != reported:
                reported = len(done)
                progress(reported, len(chunks))
            if len(done) >= len(chunks):
                break
            now = time.time()
            fences = read_fences(state)
            for path in sorted(leases_dir.glob("chunk-*.json")):
                lease = read_lease(path)
                if lease is None:
                    # Torn lease file: treat as expired — clear it so the
                    # chunk is claimable again (satellite of read_lease).
                    path.unlink(missing_ok=True)
                    continue
                if lease.chunk in done:
                    path.unlink(missing_ok=True)
                    continue
                if not lease.expired(now, policy.skew_slack):
                    continue
                if not _take_over_lease(leases_dir, lease):
                    continue
                next_epoch = max(lease.epoch, fences.get(lease.chunk, 0)) + 1
                record_fence(state, lease.chunk, next_epoch)
                result.expired_leases += 1
                obs.active().counter("coordinator.expired_leases")
                journal.append(
                    "expire", chunk=lease.chunk, owner=lease.owner, epoch=lease.epoch
                )
                if next_epoch >= policy.max_attempts:
                    _degrade_chunk(state, chunks, lease.chunk, result, journal)
                else:
                    result.retries += 1
                    journal.append(
                        "requeue",
                        chunk=lease.chunk,
                        attempt=lease.epoch,
                        fence=next_epoch,
                        reason="lease expired",
                    )
            if deadline is not None and time.monotonic() >= deadline:
                raise ExperimentError(
                    f"detached campaign did not complete within {wait_timeout:.1f}s "
                    f"({len(done)}/{len(chunks)} chunks done); workers may still "
                    f"be running — resume with: scenarios heal --store "
                    f"{state.directory.parent} --space {spec.name}"
                )
            time.sleep(policy.poll_interval)
    finally:
        final = merge_worker_snapshots(state)
        result.merge = final
        result.completed_after = len(state.completed_chunks)
        journal.append(
            "merge",
            added=len(final.added),
            duplicates=len(final.duplicates),
            fenced=len(final.fenced),
            total=final.total_chunks,
        )
        if result.finished:
            journal.append("complete", total_chunks=len(chunks))
            _cleanup_if_complete(state, len(chunks))
        root_span.__exit__(None, None, None)
        obs.active().flush()
    return result


def _degrade_chunk(
    state: CampaignState,
    chunks: Sequence[tuple[int, int]],
    chunk: int,
    result: DetachedProgress,
    journal: CoordinatorJournal,
) -> None:
    """Attempt budget exhausted: evaluate in the coordinator itself.

    The degraded store carries no epoch metadata, so its chunks are
    trusted over any fence — the slow but sure path, same as the
    in-process tier.
    """
    start, stop = chunks[chunk]
    rows = evaluate_range(state.spec, start, stop)
    parent_store = CampaignState(worker_directory(state, _DEGRADED_OWNER), state.spec)
    if chunk not in parent_store.completed_chunks:
        parent_store.append_chunk(chunk, start, stop, rows)
    if chunk not in result.degraded_chunks:
        result.degraded_chunks.append(chunk)
    journal.append("degrade", chunk=chunk)
    obs.active().counter("coordinator.degraded_chunks")
    logger.warning("chunk degraded to coordinator evaluation", chunk=chunk)
