"""Declarative scenario-space subsystem.

The paper's evaluation covers a handful of hand-coded platform families
(Figures 10-14); the ROADMAP's north star is "as many scenarios as you can
imagine".  This package closes the gap with four layers on top of the
batched scenario kernel and the parallel sweep engine:

* :mod:`repro.scenarios.spec` — a declarative, JSON-round-trippable
  description of a scenario space (platform family distributions, sizes,
  heuristics, noise, seeds, port model) with grid/product combinators and
  a library of named spaces, including the paper's campaigns re-expressed
  as specs and their two-port (``one_port: false``) variants;
* :mod:`repro.workloads.sampling` (one layer below) — the vectorised
  sampler that materialises whole platform families directly as stacked
  ``(batch, q)`` cost tables feeding the batched kernels — bit-identical
  to the object path on the paper's factor sets (the historical
  :mod:`repro.scenarios.sampler` facade still re-exports it but is
  deprecated and warns on import);
* :mod:`repro.scenarios.store` — an append-only, resumable result store
  keyed by spec hash and chunk index, with streaming aggregation and a
  columnar ``.npz`` export;
* :mod:`repro.scenarios.runner` — a streaming campaign runner that shards
  arbitrarily large spaces into chunks, persists every finished chunk and
  resumes interrupted mega-campaigns where they left off; two-port spaces
  flow through the two-port kernel (:mod:`repro.core.batch_twoport`) and
  the merge-ordered analytic replay;
* :mod:`repro.scenarios.fabric` — the fault-tolerant multi-worker tier:
  chunk leases, per-worker stores, retry/backoff/degradation, epoch
  fencing and a crash-recoverable coordinator journal;
* :mod:`repro.scenarios.detached` — the multi-machine tier: detached
  ``scenarios work`` workers over one shared directory, wall-clock leases
  with heartbeats and skew slack, and an observing (never spawning)
  coordinator.

The CLI front end is ``repro-experiments scenarios
list/run/resume/show/export/work/heal/merge``.

The runner builds on :mod:`repro.experiments` (which itself consumes the
sampler), so its symbols are exposed lazily here to keep the import graph
acyclic — ``from repro.scenarios import run_campaign`` works either way.
"""

from repro.workloads.sampling import FactorTable, base_costs, cost_table, sample_factors
from repro.scenarios.spec import (
    MATRIX_WORKLOAD,
    NAMED_SPACES,
    Distribution,
    PlatformFamily,
    ScenarioSpec,
    Workload,
    available_spaces,
    named_space,
    product_specs,
    spec_hash,
)
from repro.scenarios.store import CampaignStore, aggregate_rows

__all__ = [
    "Distribution",
    "PlatformFamily",
    "ScenarioSpec",
    "Workload",
    "MATRIX_WORKLOAD",
    "NAMED_SPACES",
    "available_spaces",
    "named_space",
    "product_specs",
    "spec_hash",
    "FactorTable",
    "base_costs",
    "cost_table",
    "sample_factors",
    "CampaignStore",
    "aggregate_rows",
    "CampaignProgress",
    "aggregate_figure",
    "plan_chunks",
    "run_campaign",
    "FaultInjector",
    "FaultPolicy",
    "FabricProgress",
    "HealReport",
    "CoordinatorJournal",
    "Lease",
    "heal_campaign",
    "merge_worker_stores",
    "run_fabric_campaign",
    "DetachedProgress",
    "FabricAdvert",
    "WorkerReport",
    "run_detached_campaign",
    "work_loop",
]

#: Runner/fabric symbols resolved on first access (PEP 562): the runner
#: imports the experiment layer, which imports the sampler from this
#: package, and the fabric builds on the runner.
_RUNNER_EXPORTS = {"CampaignProgress", "run_campaign", "aggregate_figure", "plan_chunks"}
_FABRIC_EXPORTS = {
    "FaultInjector",
    "FaultPolicy",
    "FabricProgress",
    "HealReport",
    "CoordinatorJournal",
    "Lease",
    "heal_campaign",
    "merge_worker_stores",
    "run_fabric_campaign",
}
_DETACHED_EXPORTS = {
    "DetachedProgress",
    "FabricAdvert",
    "WorkerReport",
    "run_detached_campaign",
    "work_loop",
}


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.scenarios import runner

        return getattr(runner, name)
    if name in _FABRIC_EXPORTS:
        from repro.scenarios import fabric

        return getattr(fabric, name)
    if name in _DETACHED_EXPORTS:
        from repro.scenarios import detached

        return getattr(detached, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
