"""Discrete-event simulation substrate.

This package replaces the paper's MPI testbed: a small deterministic
discrete-event engine (:mod:`~repro.simulation.engine`), the master's
one-port/two-port network interface (:mod:`~repro.simulation.network`), the
master-worker cluster executing divisible-load schedules
(:mod:`~repro.simulation.cluster`), pluggable measurement noise
(:mod:`~repro.simulation.noise`), Gantt traces
(:mod:`~repro.simulation.trace`) and the high-level predicted-vs-measured
executor (:mod:`~repro.simulation.executor`).
"""

from __future__ import annotations

from repro.simulation.cluster import ClusterRun, ClusterSimulation, WorkerRecord
from repro.simulation.engine import Event, Process, Resource, Simulator, Store, Timeout
from repro.simulation.executor import ExecutionReport, execute_schedule, measure_heuristic
from repro.simulation.fast_cluster import run_fast_timeline
from repro.simulation.network import MasterPorts, transfer
from repro.simulation.noise import (
    AffineOverhead,
    ComposedNoise,
    GaussianJitter,
    NoJitter,
    NoiseModel,
    UniformJitter,
)
from repro.simulation.trace import Trace, TraceEvent, ascii_gantt

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "Store",
    "MasterPorts",
    "transfer",
    "ClusterSimulation",
    "ClusterRun",
    "WorkerRecord",
    "run_fast_timeline",
    "ExecutionReport",
    "execute_schedule",
    "measure_heuristic",
    "NoiseModel",
    "NoJitter",
    "UniformJitter",
    "GaussianJitter",
    "AffineOverhead",
    "ComposedNoise",
    "Trace",
    "TraceEvent",
    "ascii_gantt",
]
