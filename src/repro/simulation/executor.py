"""High-level execution of schedules on the simulated cluster.

This module is the bridge between the analytic side of the library (LP
schedules, closed forms) and the measurement side (the discrete-event
cluster).  It mirrors the workflow of the paper's experiments:

1. a heuristic produces a unit-deadline schedule;
2. the schedule is rescaled to the concrete total load (``M = 1000`` matrix
   products in the paper) and rounded to integer loads;
3. the resulting prescription is executed on the (possibly noisy) simulated
   cluster, yielding a *measured* makespan to compare against the
   *LP-predicted* makespan.

:func:`execute_schedule` performs step 3; :func:`measure_heuristic` performs
steps 2–3 from a heuristic result and reports both numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.heuristics import HeuristicResult
from repro.core.makespan import predicted_makespan
from repro.core.rounding import round_loads, round_values
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError, SimulationError
from repro.simulation.cluster import ClusterRun, ClusterSimulation
from repro.simulation.noise import NoiseModel, perturb_sequence

__all__ = [
    "ExecutionReport",
    "PreparedMeasurement",
    "execute_schedule",
    "measure_heuristic",
    "prepare_measurement",
    "prepare_measurement_arrays",
    "prepare_measurement_parts",
]


@dataclass(frozen=True)
class ExecutionReport:
    """Predicted vs. measured execution of one schedule.

    Attributes
    ----------
    heuristic:
        Name of the heuristic that produced the schedule ("" when unknown).
    predicted_makespan:
        Completion time predicted by the linear model (LP value).
    measured_makespan:
        Completion time measured on the simulated cluster.
    total_load:
        Load units actually dispatched (after rounding, if any).
    run:
        Full cluster run (per-worker records and Gantt trace).
    """

    heuristic: str
    predicted_makespan: float
    measured_makespan: float
    total_load: float
    run: ClusterRun

    @property
    def relative_gap(self) -> float:
        """``measured / predicted - 1`` (the paper's "real vs lp" gap)."""
        if self.predicted_makespan <= 0:
            raise SimulationError("predicted makespan must be positive")
        return self.measured_makespan / self.predicted_makespan - 1.0

    @property
    def participants(self) -> list[str]:
        """Workers that actually processed load in the run."""
        return [name for name, record in self.run.records.items() if record.load > 0]


def execute_schedule(
    schedule: Schedule,
    noise: NoiseModel | None = None,
    one_port: bool = True,
    heuristic: str = "",
) -> ExecutionReport:
    """Execute ``schedule`` as-is on the simulated cluster.

    The predicted makespan is the eager makespan of the schedule under the
    ideal linear model; the measured makespan comes from the discrete-event
    run (identical when ``noise`` is ``None``).
    """
    simulation = ClusterSimulation(schedule.platform, noise=noise, one_port=one_port)
    run = simulation.run(schedule)
    return ExecutionReport(
        heuristic=heuristic,
        predicted_makespan=schedule.makespan(),
        measured_makespan=run.makespan,
        total_load=run.total_load,
        run=run,
    )


@dataclass(frozen=True)
class PreparedMeasurement:
    """A measurement with everything but the noise draws precomputed.

    Campaign loops measure the *same* rounded schedule under many
    independent noise streams (one per random platform).  Rounding the
    loads, filtering the participants and laying out the operation
    durations is identical across those measurements, so
    :func:`prepare_measurement` does it once; :meth:`measure` then only
    draws the noise (one batched :func:`~repro.simulation.noise.
    perturb_sequence` call) and replays the one-port timeline with plain
    arithmetic.  The result is bit-identical to
    ``measure_heuristic(result, total, noise=...).measured_makespan`` —
    same draws in the same order, same floating-point operations — which
    the test-suite asserts.

    ``durations``/``kinds``/``workers`` describe the ``3q`` operations in
    the replay's draw order (see :mod:`repro.simulation.fast_cluster`):
    sends and computes interleaved, then the returns in ``sigma2`` order.
    ``sigma2_positions`` maps each return slot to its worker's position in
    the (participant-filtered) ``sigma1``.
    """

    durations: np.ndarray
    kinds: tuple[str, ...]
    workers: tuple[str, ...]
    participant_count: int
    sigma2_positions: tuple[int, ...]

    def measure(self, noise: NoiseModel | None) -> float:
        """Measured makespan of the prepared schedule under ``noise``."""
        if noise is None:
            return self.makespan(self.durations)
        return self.makespan(perturb_sequence(noise, self.durations, self.kinds, self.workers))

    def makespan(self, perturbed) -> float:
        """Replay the one-port timeline over already-perturbed durations."""
        q = self.participant_count
        values = perturbed.tolist() if isinstance(perturbed, np.ndarray) else list(perturbed)
        # Sends back-to-back; compute k ends at send_end[k] + its duration.
        send_end = [0.0] * q
        compute_end = [0.0] * q
        clock = values[0]
        send_end[0] = clock
        for k in range(1, q):
            clock += values[2 * k - 1]
            send_end[k] = clock
            compute_end[k - 1] = send_end[k - 1] + values[2 * k]
        compute_end[q - 1] = send_end[q - 1] + values[2 * q - 1]
        # Returns serialised on the port after the last send; the last
        # return's end is the makespan (ends are non-decreasing).
        port_free = clock
        for slot, position in enumerate(self.sigma2_positions):
            start = max(port_free, compute_end[position])
            port_free = start + values[2 * q + slot]
        return port_free


#: Cached per-participant-count kind layouts (the layout depends on ``q``
#: only): ``send, (send, compute) * (q-1), compute, return * q``.
_KIND_PATTERNS: dict[int, tuple[str, ...]] = {}


def _kind_pattern(q: int) -> tuple[str, ...]:
    pattern = _KIND_PATTERNS.get(q)
    if pattern is None:
        kinds = ["send"] + ["send", "compute"] * (q - 1) + ["compute"] + ["return"] * q
        pattern = _KIND_PATTERNS[q] = tuple(kinds)
    return pattern


#: Cached per-q gather indices into the interleaved duration layout:
#: send k at 0 / 2k-1, compute k at 2k+2 (compute q-1 at 2q-1).
_TIMELINE_INDICES: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def timeline_indices(q: int) -> tuple[np.ndarray, np.ndarray]:
    """The (send, compute) positions of the interleaved duration layout."""
    cached = _TIMELINE_INDICES.get(q)
    if cached is None:
        send = np.array([0] + [2 * k - 1 for k in range(1, q)])
        compute = np.array([2 * k + 2 for k in range(q - 1)] + [2 * q - 1])
        cached = _TIMELINE_INDICES[q] = (send, compute)
    return cached


def prepare_measurement(result: HeuristicResult, total_load: float) -> PreparedMeasurement:
    """Round and lay out one heuristic measurement for repeated noisy replay.

    Mirrors the ``round_to_integers`` path of :func:`measure_heuristic`:
    the unit-deadline loads are rounded to integers summing to
    ``int(round(total_load))``, workers rounded to zero are dropped, and
    the remaining operations are laid out in the replay's draw order.
    """
    schedule = result.schedule
    return prepare_measurement_parts(
        schedule.platform,
        schedule.sigma1,
        schedule.sigma2,
        [schedule.load(name) for name in schedule.sigma1],
        total_load,
    )


def prepare_measurement_parts(
    platform,
    schedule_sigma1,
    schedule_sigma2,
    values,
    total_load: float,
) -> PreparedMeasurement:
    """:func:`prepare_measurement` from raw schedule components.

    ``values`` are the unit-deadline loads in ``schedule_sigma1`` order.
    Hot paths call this directly with the kernel's load vector, skipping
    the :class:`~repro.core.schedule.Schedule` round trip; the result is
    identical.
    """
    return prepare_measurement_arrays(
        platform.cost_vectors(schedule_sigma1),
        schedule_sigma1,
        schedule_sigma2,
        values,
        total_load,
    )


def prepare_measurement_arrays(
    cost_vectors,
    schedule_sigma1,
    schedule_sigma2,
    values,
    total_load: float,
) -> PreparedMeasurement:
    """:func:`prepare_measurement` from raw cost arrays.

    ``cost_vectors`` is the ``(c, w, d)`` triple in ``schedule_sigma1``
    order (as produced by :meth:`StarPlatform.cost_vectors`); callers that
    already hold the campaign cost table avoid materialising platform
    objects entirely.
    """
    if total_load <= 0:
        raise SimulationError("total_load must be positive")
    total = int(round(total_load))
    if total <= 0:
        raise ScheduleError("total must be positive")
    counts = round_values(values, total)
    rounded = dict(zip(schedule_sigma1, counts))
    sigma1 = [name for name in schedule_sigma1 if rounded[name] > 0]
    sigma2 = [name for name in schedule_sigma2 if rounded[name] > 0]
    q = len(sigma1)
    if q == 0:
        raise ScheduleError("rounded schedule has no participating worker")

    # Lay the active operations out in plain Python floats (cheaper than
    # numpy at these worker counts; the arithmetic is identical).
    full_c, full_w, full_d = cost_vectors
    if isinstance(full_c, np.ndarray):
        full_c, full_w, full_d = full_c.tolist(), full_w.tolist(), full_d.tolist()
    active = [index for index, count in enumerate(counts) if count > 0]
    sends = [float(counts[i]) * full_c[i] for i in active]
    computes = [float(counts[i]) * full_w[i] for i in active]
    returns = [float(counts[i]) * full_d[i] for i in active]

    position = {name: index for index, name in enumerate(sigma1)}
    sigma2_positions = tuple(position[name] for name in sigma2)
    durations: list[float] = [sends[0]]
    workers: list[str] = [sigma1[0]]
    for k in range(1, q):
        durations.append(sends[k])
        workers.append(sigma1[k])
        durations.append(computes[k - 1])
        workers.append(sigma1[k - 1])
    durations.append(computes[q - 1])
    workers.append(sigma1[q - 1])
    for name, index in zip(sigma2, sigma2_positions):
        durations.append(returns[index])
        workers.append(name)

    return PreparedMeasurement(
        durations=np.array(durations),
        kinds=_kind_pattern(q),
        workers=tuple(workers),
        participant_count=q,
        sigma2_positions=sigma2_positions,
    )


def measure_heuristic(
    result: HeuristicResult,
    total_load: float,
    noise: NoiseModel | None = None,
    one_port: bool = True,
    round_to_integers: bool = True,
    collect_trace: bool = True,
) -> ExecutionReport:
    """Measure a heuristic's schedule for a concrete total load.

    Parameters
    ----------
    result:
        Output of one of the :mod:`repro.core.heuristics` functions (a
        unit-deadline schedule and its throughput).
    total_load:
        Number of load units to dispatch (the paper's ``M``).
    round_to_integers:
        Apply the paper's rounding policy before executing (default).  The
        *predicted* makespan always refers to the un-rounded LP schedule, so
        the reported gap includes the rounding imbalance, exactly like the
        paper's "real / lp" curves.
    collect_trace:
        Keep the Gantt trace of the run (default).  Campaign loops that
        only read the measured makespan pass ``False`` to skip it.
    """
    if total_load <= 0:
        raise SimulationError("total_load must be positive")
    prediction = predicted_makespan(result.schedule, total_load)
    schedule = result.schedule
    simulation = ClusterSimulation(
        schedule.platform, noise=noise, one_port=one_port, collect_trace=collect_trace
    )
    if round_to_integers:
        # round_loads rescales the unit-deadline loads proportionally to the
        # integer total itself, so the intermediate rescaled Schedule (and
        # the eager-makespan computation integer_load_schedule performs for
        # its deadline, which the simulation ignores) can be skipped.
        total = int(round(total_load))
        if total <= 0:
            # same guard integer_load_schedule applied on the old path
            raise ScheduleError("total must be positive")
        dispatch_loads = round_loads(schedule.loads, schedule.sigma1, total)
        run = simulation.run_assignment(
            {name: float(value) for name, value in dispatch_loads.items()},
            schedule.sigma1,
            schedule.sigma2,
        )
    else:
        run = simulation.run(schedule.scaled_to_total_load(total_load))
    return ExecutionReport(
        heuristic=result.name,
        predicted_makespan=prediction,
        measured_makespan=run.makespan,
        total_load=run.total_load,
        run=run,
    )
