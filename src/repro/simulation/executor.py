"""High-level execution of schedules on the simulated cluster.

This module is the bridge between the analytic side of the library (LP
schedules, closed forms) and the measurement side (the discrete-event
cluster).  It mirrors the workflow of the paper's experiments:

1. a heuristic produces a unit-deadline schedule;
2. the schedule is rescaled to the concrete total load (``M = 1000`` matrix
   products in the paper) and rounded to integer loads;
3. the resulting prescription is executed on the (possibly noisy) simulated
   cluster, yielding a *measured* makespan to compare against the
   *LP-predicted* makespan.

:func:`execute_schedule` performs step 3; :func:`measure_heuristic` performs
steps 2–3 from a heuristic result and reports both numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heuristics import HeuristicResult
from repro.core.makespan import predicted_makespan
from repro.core.rounding import round_loads
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError, SimulationError
from repro.simulation.cluster import ClusterRun, ClusterSimulation
from repro.simulation.noise import NoiseModel

__all__ = ["ExecutionReport", "execute_schedule", "measure_heuristic"]


@dataclass(frozen=True)
class ExecutionReport:
    """Predicted vs. measured execution of one schedule.

    Attributes
    ----------
    heuristic:
        Name of the heuristic that produced the schedule ("" when unknown).
    predicted_makespan:
        Completion time predicted by the linear model (LP value).
    measured_makespan:
        Completion time measured on the simulated cluster.
    total_load:
        Load units actually dispatched (after rounding, if any).
    run:
        Full cluster run (per-worker records and Gantt trace).
    """

    heuristic: str
    predicted_makespan: float
    measured_makespan: float
    total_load: float
    run: ClusterRun

    @property
    def relative_gap(self) -> float:
        """``measured / predicted - 1`` (the paper's "real vs lp" gap)."""
        if self.predicted_makespan <= 0:
            raise SimulationError("predicted makespan must be positive")
        return self.measured_makespan / self.predicted_makespan - 1.0

    @property
    def participants(self) -> list[str]:
        """Workers that actually processed load in the run."""
        return [name for name, record in self.run.records.items() if record.load > 0]


def execute_schedule(
    schedule: Schedule,
    noise: NoiseModel | None = None,
    one_port: bool = True,
    heuristic: str = "",
) -> ExecutionReport:
    """Execute ``schedule`` as-is on the simulated cluster.

    The predicted makespan is the eager makespan of the schedule under the
    ideal linear model; the measured makespan comes from the discrete-event
    run (identical when ``noise`` is ``None``).
    """
    simulation = ClusterSimulation(schedule.platform, noise=noise, one_port=one_port)
    run = simulation.run(schedule)
    return ExecutionReport(
        heuristic=heuristic,
        predicted_makespan=schedule.makespan(),
        measured_makespan=run.makespan,
        total_load=run.total_load,
        run=run,
    )


def measure_heuristic(
    result: HeuristicResult,
    total_load: float,
    noise: NoiseModel | None = None,
    one_port: bool = True,
    round_to_integers: bool = True,
    collect_trace: bool = True,
) -> ExecutionReport:
    """Measure a heuristic's schedule for a concrete total load.

    Parameters
    ----------
    result:
        Output of one of the :mod:`repro.core.heuristics` functions (a
        unit-deadline schedule and its throughput).
    total_load:
        Number of load units to dispatch (the paper's ``M``).
    round_to_integers:
        Apply the paper's rounding policy before executing (default).  The
        *predicted* makespan always refers to the un-rounded LP schedule, so
        the reported gap includes the rounding imbalance, exactly like the
        paper's "real / lp" curves.
    collect_trace:
        Keep the Gantt trace of the run (default).  Campaign loops that
        only read the measured makespan pass ``False`` to skip it.
    """
    if total_load <= 0:
        raise SimulationError("total_load must be positive")
    prediction = predicted_makespan(result.schedule, total_load)
    schedule = result.schedule
    simulation = ClusterSimulation(
        schedule.platform, noise=noise, one_port=one_port, collect_trace=collect_trace
    )
    if round_to_integers:
        # round_loads rescales the unit-deadline loads proportionally to the
        # integer total itself, so the intermediate rescaled Schedule (and
        # the eager-makespan computation integer_load_schedule performs for
        # its deadline, which the simulation ignores) can be skipped.
        total = int(round(total_load))
        if total <= 0:
            # same guard integer_load_schedule applied on the old path
            raise ScheduleError("total must be positive")
        dispatch_loads = round_loads(schedule.loads, schedule.sigma1, total)
        run = simulation.run_assignment(
            {name: float(value) for name, value in dispatch_loads.items()},
            schedule.sigma1,
            schedule.sigma2,
        )
    else:
        run = simulation.run(schedule.scaled_to_total_load(total_load))
    return ExecutionReport(
        heuristic=result.name,
        predicted_makespan=prediction,
        measured_makespan=run.makespan,
        total_load=run.total_load,
        run=run,
    )
