"""Noise models for the simulated cluster.

The paper compares the LP-predicted execution time against the time measured
on a real cluster; measured times deviate because of OS jitter, MPI protocol
overheads and cache effects (up to ~20% in Figure 12, growing when
communication dominates in Figure 13b).  The simulator reproduces that gap
with pluggable noise models applied to every individual operation
(transfer or computation):

* :class:`NoJitter` — ideal linear-cost execution (matches the LP exactly);
* :class:`UniformJitter` — multiplicative noise ``U[1, 1 + amplitude]``,
  i.e. operations only ever get slower, as contention and overheads do;
* :class:`GaussianJitter` — multiplicative noise ``max(floor, N(1+bias, sigma))``;
* :class:`AffineOverhead` — adds a constant per-operation latency, the
  deviation from the pure linear model probed by Figure 13b.

Models are deterministic given their seed, so experiment campaigns are
reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "OperationKind",
    "NoiseModel",
    "NoJitter",
    "UniformJitter",
    "GaussianJitter",
    "AffineOverhead",
    "ComposedNoise",
]


#: Operation kinds passed to noise models.
OperationKind = str
_KINDS = ("send", "compute", "return")


class NoiseModel(Protocol):
    """Structural type of a noise model."""

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        """Return the perturbed duration of one operation."""
        ...  # pragma: no cover - protocol


def _check(duration: float, kind: OperationKind) -> None:
    if duration < 0:
        raise SimulationError(f"negative operation duration: {duration}")
    if kind not in _KINDS:
        raise SimulationError(f"unknown operation kind {kind!r}")


@dataclass(frozen=True)
class NoJitter:
    """Ideal execution: durations are returned unchanged."""

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        return duration


class UniformJitter:
    """Multiplicative slowdown drawn uniformly from ``[1, 1 + amplitude]``.

    Separate amplitudes can be given for communication and computation, which
    is how the experiments model the fact that network transfers are noisier
    than CPU-bound matrix products.
    """

    #: Unit draws fetched from the generator per refill.  Batching amortises
    #: the per-call generator overhead; the stream is identical to drawing
    #: one ``uniform(0, amplitude)`` per operation (``uniform(0, a)`` is
    #: exactly ``random() * a`` for numpy's Generator).
    _BATCH = 64

    def __init__(
        self,
        amplitude: float = 0.1,
        comm_amplitude: float | None = None,
        seed: int = 0,
    ) -> None:
        if amplitude < 0 or (comm_amplitude is not None and comm_amplitude < 0):
            raise SimulationError("jitter amplitudes must be non-negative")
        self.amplitude = amplitude
        self.comm_amplitude = comm_amplitude if comm_amplitude is not None else amplitude
        self._rng = np.random.default_rng(seed)
        self._draws: list[float] = []

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        amplitude = self.amplitude if kind == "compute" else self.comm_amplitude
        draws = self._draws
        if not draws:
            # reversed so that pop() consumes the stream in draw order
            draws[:] = self._rng.random(self._BATCH)[::-1].tolist()
            self._draws = draws
        return duration * (1.0 + draws.pop() * amplitude)


class GaussianJitter:
    """Multiplicative Gaussian noise with a floor.

    The factor is ``max(floor, N(1 + bias, sigma))``; the floor prevents
    negative or implausibly short durations.
    """

    def __init__(self, sigma: float = 0.05, bias: float = 0.0, floor: float = 0.5, seed: int = 0) -> None:
        if sigma < 0:
            raise SimulationError("sigma must be non-negative")
        if floor <= 0:
            raise SimulationError("floor must be positive")
        self.sigma = sigma
        self.bias = bias
        self.floor = floor
        self._rng = np.random.default_rng(seed)

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        factor = max(self.floor, self._rng.normal(1.0 + self.bias, self.sigma))
        return duration * factor


@dataclass(frozen=True)
class AffineOverhead:
    """Constant per-operation overheads (message latency, task start-up).

    ``comm_latency`` is added to every transfer and ``compute_latency`` to
    every computation, independent of the amount of load.  This breaks the
    pure linear model in exactly the way the paper's Section 5.3.3 probes.
    """

    comm_latency: float = 0.0
    compute_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_latency < 0 or self.compute_latency < 0:
            raise SimulationError("latencies must be non-negative")

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        if kind == "compute":
            return duration + self.compute_latency
        return duration + self.comm_latency


class ComposedNoise:
    """Apply several noise models in sequence (e.g. jitter then latency)."""

    def __init__(self, *models: NoiseModel) -> None:
        self.models = tuple(models)

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        for model in self.models:
            duration = model.perturb(duration, kind, worker)
        return duration
