"""Noise models for the simulated cluster.

The paper compares the LP-predicted execution time against the time measured
on a real cluster; measured times deviate because of OS jitter, MPI protocol
overheads and cache effects (up to ~20% in Figure 12, growing when
communication dominates in Figure 13b).  The simulator reproduces that gap
with pluggable noise models applied to every individual operation
(transfer or computation):

* :class:`NoJitter` — ideal linear-cost execution (matches the LP exactly);
* :class:`UniformJitter` — multiplicative noise ``U[1, 1 + amplitude]``,
  i.e. operations only ever get slower, as contention and overheads do;
* :class:`GaussianJitter` — multiplicative noise ``max(floor, N(1+bias, sigma))``;
* :class:`AffineOverhead` — adds a constant per-operation latency, the
  deviation from the pure linear model probed by Figure 13b.

Models are deterministic given their seed, so experiment campaigns are
reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "OperationKind",
    "NoiseModel",
    "NoJitter",
    "UniformJitter",
    "GaussianJitter",
    "AffineOverhead",
    "ComposedNoise",
    "perturb_sequence",
]


#: Operation kinds passed to noise models.
OperationKind = str
_KINDS = frozenset(("send", "compute", "return"))


class NoiseModel(Protocol):
    """Structural type of a noise model.

    Implementations may additionally provide ``perturb_many(durations,
    kinds, workers)`` — a vectorised variant required to consume their
    random stream *exactly* like the equivalent sequence of
    :meth:`perturb` calls (see :func:`perturb_sequence`) — and a
    ``stateless`` flag telling composition whether draw order matters.
    """

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        """Return the perturbed duration of one operation."""
        ...  # pragma: no cover - protocol


def _check(duration: float, kind: OperationKind) -> None:
    if duration < 0:
        raise SimulationError(f"negative operation duration: {duration}")
    if kind not in _KINDS:
        raise SimulationError(f"unknown operation kind {kind!r}")


def _check_many(durations: np.ndarray, kinds: Sequence[OperationKind]) -> None:
    if len(durations) != len(kinds):
        raise SimulationError("durations and kinds must have the same length")
    if durations.size and durations.min() < 0:
        raise SimulationError(f"negative operation duration: {durations.min()}")
    if not _KINDS.issuperset(kinds):
        unknown = next(kind for kind in kinds if kind not in _KINDS)
        raise SimulationError(f"unknown operation kind {unknown!r}")


def perturb_sequence(
    noise: "NoiseModel",
    durations: Sequence[float] | np.ndarray,
    kinds: Sequence[OperationKind],
    workers: Sequence[str],
) -> np.ndarray:
    """Perturb a whole sequence of operations, preserving the draw stream.

    Uses the model's vectorised ``perturb_many`` when available; models
    without one (e.g. user-supplied) fall back to sequential
    :meth:`~NoiseModel.perturb` calls.  Either way the result — and the
    model's random state afterwards — is identical to perturbing the
    operations one by one in sequence order, which is what lets the
    analytic replays batch their noise draws without changing a single bit
    of the campaigns.
    """
    many = getattr(noise, "perturb_many", None)
    if many is not None:
        return many(durations, kinds, workers)
    return np.array(
        [
            noise.perturb(float(duration), kind, worker)
            for duration, kind, worker in zip(durations, kinds, workers)
        ]
    )


@dataclass(frozen=True)
class NoJitter:
    """Ideal execution: durations are returned unchanged."""

    #: Draw-order independent (no random state).
    stateless = True

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        return duration

    def perturb_many(
        self,
        durations: Sequence[float] | np.ndarray,
        kinds: Sequence[OperationKind],
        workers: Sequence[str],
    ) -> np.ndarray:
        durations = np.asarray(durations, dtype=float)
        _check_many(durations, kinds)
        return durations.copy()


class UniformJitter:
    """Multiplicative slowdown drawn uniformly from ``[1, 1 + amplitude]``.

    Separate amplitudes can be given for communication and computation, which
    is how the experiments model the fact that network transfers are noisier
    than CPU-bound matrix products.
    """

    #: Unit draws fetched from the generator per refill.  Batching amortises
    #: the per-call generator overhead; the stream is identical to drawing
    #: one ``uniform(0, amplitude)`` per operation (``uniform(0, a)`` is
    #: exactly ``random() * a`` for numpy's Generator).
    _BATCH = 64

    def __init__(
        self,
        amplitude: float = 0.1,
        comm_amplitude: float | None = None,
        seed: int = 0,
    ) -> None:
        if amplitude < 0 or (comm_amplitude is not None and comm_amplitude < 0):
            raise SimulationError("jitter amplitudes must be non-negative")
        self.amplitude = amplitude
        self.comm_amplitude = comm_amplitude if comm_amplitude is not None else amplitude
        # Same stream as np.random.default_rng(seed), constructed cheaper
        # (campaigns build one jitter per platform/size cell).
        self._rng = np.random.Generator(np.random.PCG64(seed))
        self._draws: list[float] = []

    #: Consumes a seeded random stream: draw order matters.
    stateless = False

    def _take(self, count: int) -> np.ndarray:
        """Consume ``count`` unit draws, exactly like ``count`` pops."""
        draws = self._draws
        taken: list[float] = []
        while count > 0:
            if not draws:
                draws[:] = self._rng.random(self._BATCH)[::-1].tolist()
            step = count if count < len(draws) else len(draws)
            taken.extend(draws[-step:][::-1])  # tail slice = pop order
            del draws[-step:]
            count -= step
        return np.array(taken)

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        amplitude = self.amplitude if kind == "compute" else self.comm_amplitude
        draws = self._draws
        if not draws:
            # reversed so that pop() consumes the stream in draw order
            draws[:] = self._rng.random(self._BATCH)[::-1].tolist()
            self._draws = draws
        return duration * (1.0 + draws.pop() * amplitude)

    def perturb_many(
        self,
        durations: Sequence[float] | np.ndarray,
        kinds: Sequence[OperationKind],
        workers: Sequence[str],
    ) -> np.ndarray:
        """Vectorised :meth:`perturb`: same stream, same bits, one call."""
        durations = np.asarray(durations, dtype=float)
        _check_many(durations, kinds)
        amplitude = self.amplitude
        comm_amplitude = self.comm_amplitude
        amplitudes = np.fromiter(
            (amplitude if kind == "compute" else comm_amplitude for kind in kinds),
            dtype=float,
            count=len(kinds),
        )
        return durations * (1.0 + self._take(len(durations)) * amplitudes)


class GaussianJitter:
    """Multiplicative Gaussian noise with a floor.

    The factor is ``max(floor, N(1 + bias, sigma))``; the floor prevents
    negative or implausibly short durations.
    """

    def __init__(self, sigma: float = 0.05, bias: float = 0.0, floor: float = 0.5, seed: int = 0) -> None:
        if sigma < 0:
            raise SimulationError("sigma must be non-negative")
        if floor <= 0:
            raise SimulationError("floor must be positive")
        self.sigma = sigma
        self.bias = bias
        self.floor = floor
        self._rng = np.random.default_rng(seed)

    #: Consumes a seeded random stream: draw order matters.
    stateless = False

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        factor = max(self.floor, self._rng.normal(1.0 + self.bias, self.sigma))
        return duration * factor

    def perturb_many(
        self,
        durations: Sequence[float] | np.ndarray,
        kinds: Sequence[OperationKind],
        workers: Sequence[str],
    ) -> np.ndarray:
        """Vectorised :meth:`perturb`.

        ``Generator.normal(size=n)`` consumes the underlying bit stream
        exactly like ``n`` scalar calls, so the factors are bit-identical
        to the sequential path (asserted by the test-suite).
        """
        durations = np.asarray(durations, dtype=float)
        _check_many(durations, kinds)
        factors = self._rng.normal(1.0 + self.bias, self.sigma, size=len(durations))
        return durations * np.maximum(self.floor, factors)


@dataclass(frozen=True)
class AffineOverhead:
    """Constant per-operation overheads (message latency, task start-up).

    ``comm_latency`` is added to every transfer and ``compute_latency`` to
    every computation, independent of the amount of load.  This breaks the
    pure linear model in exactly the way the paper's Section 5.3.3 probes.
    """

    comm_latency: float = 0.0
    compute_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_latency < 0 or self.compute_latency < 0:
            raise SimulationError("latencies must be non-negative")

    #: Draw-order independent (no random state).
    stateless = True

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        if kind == "compute":
            return duration + self.compute_latency
        return duration + self.comm_latency

    def perturb_many(
        self,
        durations: Sequence[float] | np.ndarray,
        kinds: Sequence[OperationKind],
        workers: Sequence[str],
    ) -> np.ndarray:
        durations = np.asarray(durations, dtype=float)
        _check_many(durations, kinds)
        latencies = np.where(
            [kind == "compute" for kind in kinds], self.compute_latency, self.comm_latency
        )
        return durations + latencies


class ComposedNoise:
    """Apply several noise models in sequence (e.g. jitter then latency)."""

    def __init__(self, *models: NoiseModel) -> None:
        self.models = tuple(models)

    @property
    def stateless(self) -> bool:
        """Draw-order independent iff every component is."""
        return all(getattr(model, "stateless", False) for model in self.models)

    def perturb(self, duration: float, kind: OperationKind, worker: str) -> float:
        _check(duration, kind)
        for model in self.models:
            duration = model.perturb(duration, kind, worker)
        return duration

    def perturb_many(
        self,
        durations: Sequence[float] | np.ndarray,
        kinds: Sequence[OperationKind],
        workers: Sequence[str],
    ) -> np.ndarray:
        """Vectorised chain application.

        Applying model 1 to *all* operations before model 2 reorders draws
        across models; that is observable only when two or more component
        models consume random state, in which case the chain falls back to
        the sequential per-operation path to keep the stream identical.
        """
        durations = np.asarray(durations, dtype=float)
        _check_many(durations, kinds)
        stateful = sum(
            1 for model in self.models if not getattr(model, "stateless", False)
        )
        if stateful > 1:
            return np.array(
                [
                    self.perturb(float(duration), kind, worker)
                    for duration, kind, worker in zip(durations, kinds, workers)
                ]
            )
        for model in self.models:
            durations = perturb_sequence(model, durations, kinds, workers)
        return durations
