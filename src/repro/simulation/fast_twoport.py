"""Fast merge-ordered replay of two-port cluster executions.

:mod:`repro.simulation.fast_cluster` replays the *one-port* master-worker
program with plain arithmetic because its timeline — and therefore its
noise-draw order — is static: every return starts after the last send.  The
*two-port* program is harder: the master collects results **while** later
initial messages are still being sent, so the order in which noise
perturbations are drawn depends on the realised (already perturbed) event
times — send/compute draws and return draws form two streams that must be
**merged by event time**, and the merge order feeds back into the times.

This module replays that merge exactly.  Instead of driving generator
processes through :class:`~repro.simulation.engine.Simulator`, it runs a
small explicit state machine over a heap of ``(time, counter)`` entries
that mirrors, one for one, every ``_schedule`` call the discrete-event
engine performs for this fixed process structure (master send loop, one
process per worker, master receive loop, delay-zero event fires included).
Because the counters are assigned in the same order and the times are
computed with the same floating-point operations, the replay pops events —
and draws noise — in *exactly* the engine's order, ties included, and the
resulting makespans, per-worker records and trace bars are bit-identical
to :meth:`ClusterSimulation.run_assignment` with ``engine="event"`` (the
test-suite asserts this under every noise model).

What it saves: generator resumption, :class:`Event` callback plumbing,
``Resource`` bookkeeping (the two ports are never contended — each is used
by a single sequential loop) and per-yield allocations — an order of
magnitude for campaign-sized runs.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Mapping, Sequence

from repro.core.platform import StarPlatform
from repro.exceptions import SimulationError
from repro.simulation.noise import NoiseModel
from repro.simulation.trace import Trace

__all__ = ["run_fast_twoport"]


# Action tags, dispatched in the replay loop.
_MASTER_BOOT = 0
_WORKER_BOOT = 1
_RECV_BOOT = 2
_MASTER_GRANT = 3
_MASTER_SEND_END = 4
_DATA_FIRE = 5
_COMPUTE_END = 6
_RESULT_FIRE = 7
_RECV_GRANT = 8
_RECV_END = 9
_NOOP = 10


def run_fast_twoport(
    platform: StarPlatform,
    loads: Mapping[str, float],
    sigma1: Sequence[str],
    sigma2: Sequence[str],
    noise: NoiseModel,
    collect_trace: bool = True,
):
    """Replay a two-port execution and return a ``ClusterRun``.

    ``sigma1``/``sigma2`` must already be restricted to workers with a
    strictly positive load (as :meth:`ClusterSimulation.run_assignment`
    guarantees before dispatching here).
    """
    from repro.simulation.cluster import ClusterRun, WorkerRecord

    trace = Trace()
    records: dict[str, WorkerRecord] = {}
    if not sigma1:
        return ClusterRun(makespan=0.0, records=records, trace=trace, one_port=False)

    q = len(sigma1)
    specs = {name: platform[name] for name in sigma1}
    floats = {name: float(loads[name]) for name in sigma1}
    for name in sigma1:
        records[name] = WorkerRecord(worker=name, load=floats[name])
    position = {name: index for index, name in enumerate(sigma1)}

    # The event heap, mirroring Simulator: (time, counter, tag, worker idx).
    counter = count()
    heap: list[tuple[float, int, int, int]] = []
    now = 0.0

    def schedule(delay: float, tag: int, index: int = -1) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        heapq.heappush(heap, (now + delay, next(counter), tag, index))

    # -- master send loop state -------------------------------------------- #
    send_index = 0  # next worker to transfer to
    pending_send = 0.0
    send_start: dict[str, float] = {}

    # -- receive loop state ------------------------------------------------ #
    recv_index = 0  # next sigma2 slot to collect
    pending_return = 0.0
    result_ready = [False] * q
    waiting_on = -1  # sigma1 index the receive loop is blocked on, -1 if none

    def resume_receive() -> None:
        """The receive loop resumes from ``yield result_ready[...]``."""
        nonlocal pending_return, waiting_on
        waiting_on = -1
        name = sigma2[recv_index]
        pending_return = noise.perturb(floats[name] * specs[name].d, "return", name)
        # receive_port.request() — never contended — grants immediately.
        schedule(0.0, _RECV_GRANT)

    def await_result() -> None:
        """The receive loop reaches ``yield result_ready[sigma2[i]]``."""
        nonlocal waiting_on
        index = position[sigma2[recv_index]]
        if result_ready[index]:
            # add_callback on a triggered event runs the callback at once.
            resume_receive()
        else:
            waiting_on = index

    # Process bootstraps, in ClusterSimulation creation order.
    schedule(0.0, _MASTER_BOOT)
    for index in range(q):
        schedule(0.0, _WORKER_BOOT, index)
    schedule(0.0, _RECV_BOOT)

    while heap:
        time, _, tag, index = heapq.heappop(heap)
        if time > now:
            now = time

        if tag == _MASTER_BOOT:
            name = sigma1[0]
            pending_send = noise.perturb(floats[name] * specs[name].c, "send", name)
            schedule(0.0, _MASTER_GRANT)  # send_port.request(), uncontended

        elif tag == _MASTER_GRANT:
            send_start[sigma1[send_index]] = now
            schedule(pending_send, _MASTER_SEND_END)

        elif tag == _MASTER_SEND_END:
            name = sigma1[send_index]
            record = records[name]
            record.send_start = send_start[name]
            record.send_end = now
            if collect_trace:
                load = floats[name]
                trace.record("master", "send", record.send_start, now, load=load, note=name)
                trace.record(name, "send", record.send_start, now, load=load)
            schedule(0.0, _DATA_FIRE, send_index)  # data_ready.succeed
            send_index += 1
            if send_index < q:
                next_name = sigma1[send_index]
                pending_send = noise.perturb(
                    floats[next_name] * specs[next_name].c, "send", next_name
                )
                schedule(0.0, _MASTER_GRANT)
            else:
                schedule(0.0, _NOOP)  # sends_done.succeed (no two-port waiter)

        elif tag == _DATA_FIRE:
            name = sigma1[index]
            records[name].compute_start = now
            duration = noise.perturb(floats[name] * specs[name].w, "compute", name)
            schedule(duration, _COMPUTE_END, index)

        elif tag == _COMPUTE_END:
            name = sigma1[index]
            record = records[name]
            record.compute_end = now
            if collect_trace:
                trace.record(name, "compute", record.compute_start, now, load=floats[name])
            schedule(0.0, _RESULT_FIRE, index)  # result_ready.succeed

        elif tag == _RESULT_FIRE:
            result_ready[index] = True
            if waiting_on == index:
                resume_receive()

        elif tag == _RECV_BOOT:
            await_result()

        elif tag == _RECV_GRANT:
            records[sigma2[recv_index]].return_start = now
            schedule(pending_return, _RECV_END)

        elif tag == _RECV_END:
            name = sigma2[recv_index]
            record = records[name]
            record.return_end = now
            if collect_trace:
                load = floats[name]
                trace.record("master", "return", record.return_start, now, load=load, note=name)
                trace.record(name, "return", record.return_start, now, load=load)
            recv_index += 1
            if recv_index < q:
                await_result()

    if recv_index < q:
        raise SimulationError("simulation finished before all results were collected")
    makespan = max((record.return_end or 0.0) for record in records.values())
    return ClusterRun(makespan=makespan, records=records, trace=trace, one_port=False)
