"""Execution traces and Gantt rendering.

The paper visualises one execution as a Gantt chart (Figure 9): one line for
the master and one per worker, with initial transfers, computation and return
transfers drawn as bars.  The simulator records the same information as a
:class:`Trace` — a flat list of :class:`TraceEvent` — which can be exported
to JSON or rendered as an ASCII Gantt chart for terminals and log files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import SimulationError

__all__ = ["TraceEvent", "Trace", "ascii_gantt"]


#: Event kinds recorded by the cluster simulator.
EVENT_KINDS = ("send", "compute", "return", "wait", "idle")

#: Single-character glyph per kind for the ASCII Gantt chart.
_GLYPHS = {"send": "#", "compute": "=", "return": "+", "wait": ".", "idle": "."}


@dataclass(frozen=True)
class TraceEvent:
    """One bar of the Gantt chart.

    ``resource`` is the line the bar belongs to (a worker name or
    ``"master"``); ``kind`` is one of :data:`EVENT_KINDS`; ``load`` is the
    amount of load the bar corresponds to (0 for waits).
    """

    resource: str
    kind: str
    start: float
    end: float
    load: float = 0.0
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise SimulationError(f"unknown trace event kind {self.kind!r}")
        if self.end < self.start - 1e-12:
            raise SimulationError(
                f"trace event for {self.resource!r} ends before it starts "
                f"({self.end} < {self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the bar."""
        return self.end - self.start

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view."""
        return {
            "resource": self.resource,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "load": self.load,
            "note": self.note,
        }


class Trace:
    """An append-only collection of :class:`TraceEvent`."""

    def __init__(self, events: Iterable[TraceEvent] = ()) -> None:
        self._events: list[TraceEvent] = list(events)

    def record(
        self,
        resource: str,
        kind: str,
        start: float,
        end: float,
        load: float = 0.0,
        note: str = "",
    ) -> TraceEvent:
        """Append an event and return it."""
        event = TraceEvent(resource=resource, kind=kind, start=start, end=end, load=load, note=note)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        """Copy of the recorded events."""
        return list(self._events)

    @property
    def resources(self) -> list[str]:
        """Resources in order of first appearance (master first if present)."""
        seen: dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.resource, None)
        names = list(seen)
        if "master" in names:
            names.remove("master")
            names.insert(0, "master")
        return names

    @property
    def makespan(self) -> float:
        """Latest event end time (0.0 for an empty trace)."""
        return max((event.end for event in self._events), default=0.0)

    def for_resource(self, resource: str) -> list[TraceEvent]:
        """Events of one resource, sorted by start time."""
        return sorted(
            (event for event in self._events if event.resource == resource),
            key=lambda event: (event.start, event.end),
        )

    def busy_time(self, resource: str, kinds: Iterable[str] = ("send", "compute", "return")) -> float:
        """Total time ``resource`` spends on the given kinds of events."""
        wanted = set(kinds)
        return sum(event.duration for event in self.for_resource(resource) if event.kind in wanted)

    def overlapping_pairs(self, resource: str, tol: float = 1e-9) -> list[tuple[TraceEvent, TraceEvent]]:
        """Return pairs of busy events of ``resource`` that overlap in time.

        Used by the tests to assert the one-port model: the master resource
        must never have two overlapping communication events.
        """
        events = [e for e in self.for_resource(resource) if e.kind in ("send", "return")]
        overlaps: list[tuple[TraceEvent, TraceEvent]] = []
        for i, first in enumerate(events):
            for second in events[i + 1 :]:
                if second.start < first.end - tol and first.start < second.end - tol:
                    overlaps.append((first, second))
        return overlaps

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise the trace to JSON."""
        return json.dumps([event.as_dict() for event in self._events], indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "Trace":
        """Rebuild a trace from :meth:`to_json` output."""
        raw = json.loads(payload)
        return cls(
            TraceEvent(
                resource=item["resource"],
                kind=item["kind"],
                start=item["start"],
                end=item["end"],
                load=item.get("load", 0.0),
                note=item.get("note", ""),
            )
            for item in raw
        )


def ascii_gantt(trace: Trace, width: int = 80, label_width: int = 12) -> str:
    """Render ``trace`` as an ASCII Gantt chart.

    Each resource becomes one line of ``width`` character cells covering
    ``[0, makespan]``; transfers are drawn with ``#`` (initial) and ``+``
    (return), computations with ``=``, waits with ``.``.  Later events
    overwrite earlier ones in case of rounding collisions, which matches the
    drawing order of the paper's own visualisation tool.
    """
    if width <= 0:
        raise SimulationError("gantt width must be positive")
    makespan = trace.makespan
    lines: list[str] = []
    header = " " * label_width + f"|0{' ' * (width - 2)}| t={makespan:.4g}"
    lines.append(header)
    if makespan <= 0:
        return "\n".join(lines)
    scale = width / makespan
    for resource in trace.resources:
        cells = [" "] * width
        for event in trace.for_resource(resource):
            glyph = _GLYPHS.get(event.kind, "?")
            first = min(width - 1, int(event.start * scale))
            last = min(width - 1, max(first, int(event.end * scale) - 1))
            for cell in range(first, last + 1):
                cells[cell] = glyph
        label = resource[:label_width].ljust(label_width)
        lines.append(label + "".join(cells))
    lines.append(
        " " * label_width + "legend: # initial transfer, = computation, + return transfer, . wait"
    )
    return "\n".join(lines)
