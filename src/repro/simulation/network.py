"""Network model: the master's communication ports.

Under the one-port model the master can be engaged in at most one
communication — send *or* receive — at any time.  Under the two-port model it
owns one outgoing and one incoming port that can be active simultaneously
(but each still serves one worker at a time).  Both are modelled with the
:class:`~repro.simulation.engine.Resource` primitive; :class:`MasterPorts`
hides the difference behind ``send_port`` / ``receive_port`` accessors so the
cluster code is identical for both models.
"""

from __future__ import annotations

from typing import Generator

from repro.exceptions import SimulationError
from repro.simulation.engine import Event, Resource, Simulator
from repro.simulation.trace import Trace

__all__ = ["MasterPorts", "transfer"]


class MasterPorts:
    """The master's network interface(s).

    Parameters
    ----------
    simulator:
        The owning event loop.
    one_port:
        ``True`` (default) shares a single port between sends and receives,
        enforcing the paper's one-port model; ``False`` gives independent
        send and receive ports (the two-port model of the companion report).
    """

    def __init__(self, simulator: Simulator, one_port: bool = True) -> None:
        self.simulator = simulator
        self.one_port = one_port
        if one_port:
            shared = Resource(simulator, capacity=1, name="master-port")
            self._send = shared
            self._receive = shared
        else:
            self._send = Resource(simulator, capacity=1, name="master-send-port")
            self._receive = Resource(simulator, capacity=1, name="master-recv-port")

    @property
    def send_port(self) -> Resource:
        """Resource guarding master → worker transfers."""
        return self._send

    @property
    def receive_port(self) -> Resource:
        """Resource guarding worker → master transfers."""
        return self._receive

    @property
    def busy(self) -> bool:
        """``True`` while any communication is in flight."""
        return self._send.in_use > 0 or self._receive.in_use > 0


def transfer(
    simulator: Simulator,
    port: Resource,
    duration: float,
    trace: Trace | None = None,
    resource_label: str = "master",
    kind: str = "send",
    worker: str = "",
    load: float = 0.0,
) -> Generator[Event, None, tuple[float, float]]:
    """Process generator performing one transfer through ``port``.

    Acquires the port, holds it for ``duration`` time units, releases it, and
    optionally records the busy interval both on the master line and on the
    worker line of ``trace``.  Returns ``(start, end)`` of the actual
    transfer (excluding the time spent waiting for the port).
    """
    if duration < 0:
        raise SimulationError(f"negative transfer duration: {duration}")
    yield port.request()
    start = simulator.now
    try:
        yield simulator.timeout(duration)
    finally:
        port.release()
    end = simulator.now
    if trace is not None:
        trace.record(resource_label, kind, start, end, load=load, note=worker)
        if worker:
            trace.record(worker, kind, start, end, load=load)
    return start, end
