"""Fast timeline replay of one-port cluster executions.

The discrete-event engine of :mod:`repro.simulation.engine` is the reference
executor, but the one-port master-worker program it runs has a completely
deterministic structure: initial messages go out back-to-back in ``sigma1``
order, every worker computes as soon as its share arrives, and the master
collects results in ``sigma2`` order once all sends are done.  That timeline
can be replayed with plain arithmetic — prefix sums for the sends, one
``max`` per return — in a single flat loop, two orders of magnitude cheaper
than driving generators through an event queue.

The subtle part is noise: campaign noise models draw from a single seeded RNG
stream, so the replay must call :meth:`NoiseModel.perturb` in *exactly* the
order the event engine would.  For the one-port program that order is:

1. the send perturbation of ``sigma1[0]`` (drawn by the master before its
   first transfer);
2. at the end of each transfer ``k``: the send perturbation of
   ``sigma1[k+1]`` (the master's loop body runs before the completed
   worker's process is scheduled), then the compute perturbation of
   ``sigma1[k]``;
3. after the last send: the return perturbations in ``sigma2`` order (the
   receive loop only starts once every initial message is out, and every
   compute perturbation has been drawn by then).

Because the whole timeline is static, all ``3q`` perturbations are drawn
through **one** batched :func:`~repro.simulation.noise.perturb_sequence`
call whose operation order is exactly the event order above — same draws,
far fewer noise-model dispatches.

:func:`run_fast_timeline` reproduces makespans and per-worker records
*bit-for-bit* (same floating-point operations in the same order); the
equivalence is asserted against the event engine by the test-suite.  Trace
events carry the same bars but may be ordered differently within equal
timestamps.

The two-port program interleaves return transfers with pending sends, so its
draw order depends on the realised times; its replay is the merge-ordered
state machine of :mod:`repro.simulation.fast_twoport`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.platform import StarPlatform
from repro.simulation.noise import NoiseModel, perturb_sequence
from repro.simulation.trace import Trace

__all__ = ["run_fast_timeline"]


def run_fast_timeline(
    platform: StarPlatform,
    loads: Mapping[str, float],
    sigma1: Sequence[str],
    sigma2: Sequence[str],
    noise: NoiseModel,
    collect_trace: bool = True,
):
    """Replay a one-port execution analytically and return a ``ClusterRun``.

    ``sigma1``/``sigma2`` must already be restricted to workers with a
    strictly positive load (as :meth:`ClusterSimulation.run_assignment`
    guarantees before dispatching here).  ``collect_trace=False`` skips the
    Gantt bars (records and makespan are unaffected) for callers that only
    measure completion times.
    """
    from repro.simulation.cluster import ClusterRun, WorkerRecord

    trace = Trace()
    records: dict[str, WorkerRecord] = {}
    if not sigma1:
        return ClusterRun(makespan=0.0, records=records, trace=trace, one_port=True)

    # All operation durations are known upfront (load times unit cost), so
    # the noise draws are batched through one perturb_sequence call — in
    # the event engine's exact order: send 0; then send k+1 before compute
    # k at each send end (the master's loop body runs before the woken
    # worker); compute q-1 after the last send; returns in sigma2 order.
    # The interleaved layout is [s0, s1, c0, s2, c1, ..., s_{q-1}, c_{q-2},
    # c_{q-1}, r(sigma2[0]), ...]: send k >= 1 sits at 2k-1, compute k at
    # 2k+2 (except compute q-1 at 2q-1), return slot i at 2q+i.
    q = len(sigma1)
    specs = {name: platform[name] for name in sigma1}
    floats = {name: float(loads[name]) for name in sigma1}
    first = sigma1[0]
    durations: list[float] = [floats[first] * specs[first].c]
    kinds: list[str] = ["send"]
    names: list[str] = [first]
    for k in range(1, q):
        name = sigma1[k]
        previous = sigma1[k - 1]
        durations.append(floats[name] * specs[name].c)
        kinds.append("send")
        names.append(name)
        durations.append(floats[previous] * specs[previous].w)
        kinds.append("compute")
        names.append(previous)
    last = sigma1[q - 1]
    durations.append(floats[last] * specs[last].w)
    kinds.append("compute")
    names.append(last)
    for name in sigma2:
        durations.append(floats[name] * specs[name].d)
        kinds.append("return")
        names.append(name)
    perturbed = perturb_sequence(noise, durations, kinds, names).tolist()

    # Phase 1+2 — sends back-to-back, computes starting at each send end.
    send_start: dict[str, float] = {first: 0.0}
    send_end: dict[str, float] = {}
    compute_end: dict[str, float] = {}
    clock = perturbed[0]
    send_end[first] = clock
    for k in range(1, q):
        name = sigma1[k]
        send_start[name] = clock
        clock += perturbed[2 * k - 1]
        send_end[name] = clock
        previous = sigma1[k - 1]
        compute_end[previous] = send_end[previous] + perturbed[2 * k]
    compute_end[last] = send_end[last] + perturbed[2 * q - 1]
    for name in sigma1:
        records[name] = WorkerRecord(worker=name, load=floats[name])
    sends_done = clock

    # Phase 3 — returns in sigma2 order, one-port: the receive loop starts
    # after the last send and serialises the return transfers.
    port_free = sends_done
    return_start: dict[str, float] = {}
    return_end: dict[str, float] = {}
    for slot, name in enumerate(sigma2):
        start = max(port_free, compute_end[name])
        return_start[name] = start
        port_free = start + perturbed[2 * q + slot]
        return_end[name] = port_free

    makespan = 0.0
    for name in sigma1:
        record = records[name]
        record.send_start = send_start[name]
        record.send_end = send_end[name]
        record.compute_start = send_end[name]
        record.compute_end = compute_end[name]
        record.return_start = return_start[name]
        record.return_end = return_end[name]
        makespan = max(makespan, return_end[name])

    if not collect_trace:
        return ClusterRun(makespan=makespan, records=records, trace=trace, one_port=True)

    # Trace bars identical to the event engine's (ordering within equal
    # timestamps may differ; consumers sort per resource anyway).
    for name in sigma1:
        load = float(loads[name])
        trace.record("master", "send", send_start[name], send_end[name], load=load, note=name)
        trace.record(name, "send", send_start[name], send_end[name], load=load)
    for name in sorted(sigma1, key=lambda n: compute_end[n]):
        trace.record(name, "compute", send_end[name], compute_end[name], load=float(loads[name]))
    for name in sigma2:
        load = float(loads[name])
        trace.record("master", "return", return_start[name], return_end[name], load=load, note=name)
        trace.record(name, "return", return_start[name], return_end[name], load=load)

    return ClusterRun(makespan=makespan, records=records, trace=trace, one_port=True)
