"""Fast timeline replay of one-port cluster executions.

The discrete-event engine of :mod:`repro.simulation.engine` is the reference
executor, but the one-port master-worker program it runs has a completely
deterministic structure: initial messages go out back-to-back in ``sigma1``
order, every worker computes as soon as its share arrives, and the master
collects results in ``sigma2`` order once all sends are done.  That timeline
can be replayed with plain arithmetic — prefix sums for the sends, one
``max`` per return — in a single flat loop, two orders of magnitude cheaper
than driving generators through an event queue.

The subtle part is noise: campaign noise models draw from a single seeded RNG
stream, so the replay must call :meth:`NoiseModel.perturb` in *exactly* the
order the event engine would.  For the one-port program that order is:

1. the send perturbation of ``sigma1[0]`` (drawn by the master before its
   first transfer);
2. at the end of each transfer ``k``: the send perturbation of
   ``sigma1[k+1]`` (the master's loop body runs before the completed
   worker's process is scheduled), then the compute perturbation of
   ``sigma1[k]``;
3. after the last send: the return perturbations in ``sigma2`` order (the
   receive loop only starts once every initial message is out, and every
   compute perturbation has been drawn by then).

:func:`run_fast_timeline` reproduces makespans and per-worker records
*bit-for-bit* (same floating-point operations in the same order); the
equivalence is asserted against the event engine by the test-suite.  Trace
events carry the same bars but may be ordered differently within equal
timestamps.

The two-port program interleaves return transfers with pending sends, so its
draw order depends on the realised times; it stays on the event engine.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.platform import StarPlatform
from repro.simulation.noise import NoiseModel
from repro.simulation.trace import Trace

__all__ = ["run_fast_timeline"]


def run_fast_timeline(
    platform: StarPlatform,
    loads: Mapping[str, float],
    sigma1: Sequence[str],
    sigma2: Sequence[str],
    noise: NoiseModel,
    collect_trace: bool = True,
):
    """Replay a one-port execution analytically and return a ``ClusterRun``.

    ``sigma1``/``sigma2`` must already be restricted to workers with a
    strictly positive load (as :meth:`ClusterSimulation.run_assignment`
    guarantees before dispatching here).  ``collect_trace=False`` skips the
    Gantt bars (records and makespan are unaffected) for callers that only
    measure completion times.
    """
    from repro.simulation.cluster import ClusterRun, WorkerRecord

    trace = Trace()
    records: dict[str, WorkerRecord] = {}
    if not sigma1:
        return ClusterRun(makespan=0.0, records=records, trace=trace, one_port=True)

    # Phase 1+2 — sends back-to-back, computes starting at each send end.
    # Perturbations are drawn in the event engine's order: send k+1 before
    # compute k (the master's loop body runs before the woken worker).
    specs = {name: platform[name] for name in sigma1}
    floats = {name: float(loads[name]) for name in sigma1}
    send_start: dict[str, float] = {}
    send_end: dict[str, float] = {}
    compute_end: dict[str, float] = {}
    clock = 0.0
    previous: str | None = None
    for name in sigma1:
        load = floats[name]
        duration = noise.perturb(load * specs[name].c, "send", name)
        if previous is not None:
            compute_end[previous] = send_end[previous] + noise.perturb(
                floats[previous] * specs[previous].w, "compute", previous
            )
        send_start[name] = clock
        clock += duration
        send_end[name] = clock
        records[name] = WorkerRecord(worker=name, load=load)
        previous = name
    assert previous is not None
    compute_end[previous] = send_end[previous] + noise.perturb(
        floats[previous] * specs[previous].w, "compute", previous
    )
    sends_done = clock

    # Phase 3 — returns in sigma2 order, one-port: the receive loop starts
    # after the last send and serialises the return transfers.
    port_free = sends_done
    return_start: dict[str, float] = {}
    return_end: dict[str, float] = {}
    for name in sigma2:
        duration = noise.perturb(floats[name] * specs[name].d, "return", name)
        start = max(port_free, compute_end[name])
        return_start[name] = start
        port_free = start + duration
        return_end[name] = port_free

    makespan = 0.0
    for name in sigma1:
        record = records[name]
        record.send_start = send_start[name]
        record.send_end = send_end[name]
        record.compute_start = send_end[name]
        record.compute_end = compute_end[name]
        record.return_start = return_start[name]
        record.return_end = return_end[name]
        makespan = max(makespan, return_end[name])

    if not collect_trace:
        return ClusterRun(makespan=makespan, records=records, trace=trace, one_port=True)

    # Trace bars identical to the event engine's (ordering within equal
    # timestamps may differ; consumers sort per resource anyway).
    for name in sigma1:
        load = float(loads[name])
        trace.record("master", "send", send_start[name], send_end[name], load=load, note=name)
        trace.record(name, "send", send_start[name], send_end[name], load=load)
    for name in sorted(sigma1, key=lambda n: compute_end[n]):
        trace.record(name, "compute", send_end[name], compute_end[name], load=float(loads[name]))
    for name in sigma2:
        load = float(loads[name])
        trace.record("master", "return", return_start[name], return_end[name], load=load, note=name)
        trace.record(name, "return", return_start[name], return_end[name], load=load)

    return ClusterRun(makespan=makespan, records=records, trace=trace, one_port=True)
