"""Discrete-event simulation engine.

The paper's evaluation runs MPI programs on a real cluster; this library
replaces the cluster with a small discrete-event simulator.  The engine in
this module is deliberately generic (it knows nothing about scheduling): it
provides the classic process-interaction primitives —

* :class:`Event` — a one-shot occurrence processes can wait for,
* :class:`Process` — a generator-based process driven by the event loop,
* :class:`Resource` — a counted resource with a FIFO wait queue (used to
  model the master's network port under the one-port model),
* :class:`Store` — an unbounded FIFO message store (used for mailboxes),
* :class:`Simulator` — the event loop itself —

in the style of SimPy, but self-contained (no external dependency) and small
enough to be audited in one sitting.  Determinism matters more than raw
speed here: events scheduled for the same instant fire in FIFO order of
scheduling, so simulated campaigns are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from repro.exceptions import SimulationError

__all__ = ["Event", "Timeout", "Process", "Resource", "Store", "Simulator"]


class Event:
    """A one-shot event processes can wait on.

    An event starts *pending*; calling :meth:`succeed` triggers it, stores an
    optional value and wakes up every waiting process.  Triggering an event
    twice is an error (it would silently reorder the simulation).
    """

    __slots__ = ("simulator", "callbacks", "_value", "_triggered", "_scheduled")

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been triggered."""
        return self._triggered

    @property
    def value(self) -> Any:
        """Value passed to :meth:`succeed` (``None`` until triggered)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event *now* and schedule its callbacks."""
        if self._triggered or self._scheduled:
            raise SimulationError("event triggered twice")
        self._value = value
        self._scheduled = True
        self.simulator._schedule(0.0, self._fire)
        return self

    def _fire(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback``; runs immediately if already triggered."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, simulator: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(simulator)
        self.delay = delay
        self._value = value
        self._scheduled = True
        simulator._schedule(delay, self._fire)


class Process(Event):
    """A generator-based simulation process.

    The wrapped generator yields :class:`Event` instances; the process
    suspends until each yielded event triggers, receiving the event's value
    through the generator protocol.  The process itself is an event that
    triggers (with the generator's return value) when the generator finishes,
    so processes can wait for each other.
    """

    __slots__ = ("generator", "name")

    def __init__(
        self,
        simulator: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(simulator)
        self.generator = generator
        self.name = name
        # Bootstrap on the next scheduling round so that the constructor
        # returns before the first step runs.
        simulator._schedule(0.0, lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            self._triggered = True
            self._value = stop.value
            callbacks, self.callbacks = self.callbacks, []
            for callback in callbacks:
                callback(self)
            return
        except Exception as error:  # surface process crashes with context
            raise SimulationError(f"process {self.name!r} raised: {error!r}") from error
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        target.add_callback(lambda event: self._step(event.value))


class Resource:
    """A counted resource with a FIFO wait queue.

    ``capacity=1`` models the master's network interface under the one-port
    model: at most one communication holds the resource at any time, and
    pending requests are served in the order they were issued.
    """

    __slots__ = ("simulator", "capacity", "_in_use", "_waiting", "name")

    def __init__(self, simulator: "Simulator", capacity: int = 1, name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: list[Event] = []

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that triggers when the resource is granted."""
        event = Event(self.simulator)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Release one unit of the resource, granting the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"resource {self.name!r} released more times than acquired")
        if self._waiting:
            event = self._waiting.pop(0)
            event.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO store of items (a mailbox).

    ``put`` never blocks; ``get`` returns an event that triggers as soon as
    an item is available (immediately when the store is non-empty).
    """

    __slots__ = ("simulator", "_items", "_getters", "name")

    def __init__(self, simulator: "Simulator", name: str = "store") -> None:
        self.simulator = simulator
        self.name = name
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking up the oldest waiting getter if any."""
        if self._getters:
            event = self._getters.pop(0)
            event.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (FIFO)."""
        event = Event(self.simulator)
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event


class Simulator:
    """The event loop: a time-ordered queue of callbacks.

    Ties on the timestamp are broken by scheduling order, which keeps runs
    deterministic regardless of hash seeds or dictionary ordering.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- primitives used by Event/Timeout/Process --------------------------- #
    def _schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    # -- public factory helpers --------------------------------------------- #
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "process") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, generator, name=name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        """Create a counted resource."""
        return Resource(self, capacity=capacity, name=name)

    def store(self, name: str = "store") -> Store:
        """Create a FIFO store."""
        return Store(self, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Return an event triggering once every event in ``events`` has."""
        events = list(events)
        gate = Event(self)
        remaining = len(events)
        if remaining == 0:
            gate.succeed([])
            return gate
        values: list[Any] = [None] * remaining

        def _done(index: int) -> Callable[[Event], None]:
            def _callback(event: Event) -> None:
                nonlocal remaining
                values[index] = event.value
                remaining -= 1
                if remaining == 0:
                    gate.succeed(values)

            return _callback

        for index, event in enumerate(events):
            event.add_callback(_done(index))
        return gate

    # -- execution ----------------------------------------------------------- #
    def step(self) -> None:
        """Execute the next scheduled callback."""
        if not self._queue:
            raise SimulationError("no scheduled events left")
        time, _, callback = heapq.heappop(self._queue)
        if time < self._now - 1e-12:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = max(self._now, time)
        callback()

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run the simulation until the queue empties (or ``until`` is reached).

        Returns the final simulation time.  ``max_events`` is a safety net
        against accidentally non-terminating process graphs.
        """
        executed = 0
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                return self._now
            self.step()
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
        return self._now
