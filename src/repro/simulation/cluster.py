"""Simulated master-worker cluster executing divisible-load schedules.

This is the stand-in for the paper's MPI testbed.  The master-worker program
of Section 5 is reproduced faithfully as three families of simulation
processes:

* the *master send loop* transmits each enrolled worker's share back-to-back
  in ``sigma1`` order, each transfer holding the master's port;
* each *worker* starts computing as soon as its share is fully received and
  announces its result when the computation finishes;
* the *master receive loop* starts once every initial message has been sent
  (exactly like the MPI master that posts its receives after its sends) and
  collects results in ``sigma2`` order, each return transfer holding the
  master's port again.

The one-port model is enforced structurally: both loops acquire the same
:class:`~repro.simulation.engine.Resource` of capacity one.  Setting
``one_port=False`` gives the two-port behaviour (independent ports) used by
the companion-report baselines.

Per-operation durations are the linear-model costs (``load * c_i`` etc.)
optionally perturbed by a :mod:`~repro.simulation.noise` model, which is how
the "real" measurements of the experiments are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Mapping, Sequence

from repro.core.platform import StarPlatform
from repro.core.schedule import Schedule
from repro.exceptions import SimulationError
from repro.simulation.engine import Event, Simulator
from repro.simulation.network import MasterPorts
from repro.simulation.noise import NoiseModel, NoJitter
from repro.simulation.trace import Trace

__all__ = ["WorkerRecord", "ClusterRun", "ClusterSimulation"]


@dataclass
class WorkerRecord:
    """Measured timeline of one worker in a simulated run.

    All fields are absolute times; ``None`` marks a phase that never happened
    (a worker with zero load neither receives nor computes nor returns).
    """

    worker: str
    load: float
    send_start: float | None = None
    send_end: float | None = None
    compute_start: float | None = None
    compute_end: float | None = None
    return_start: float | None = None
    return_end: float | None = None

    @property
    def idle(self) -> float:
        """Measured gap between computation end and return start."""
        if self.compute_end is None or self.return_start is None:
            return 0.0
        return self.return_start - self.compute_end

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view."""
        return {
            "worker": self.worker,
            "load": self.load,
            "send_start": self.send_start,
            "send_end": self.send_end,
            "compute_start": self.compute_start,
            "compute_end": self.compute_end,
            "return_start": self.return_start,
            "return_end": self.return_end,
            "idle": self.idle,
        }


@dataclass
class ClusterRun:
    """Outcome of one simulated execution."""

    makespan: float
    records: dict[str, WorkerRecord]
    trace: Trace
    one_port: bool

    @property
    def total_load(self) -> float:
        """Total load actually processed."""
        return sum(record.load for record in self.records.values())

    def master_communication_time(self) -> float:
        """Total time the master spends sending or receiving."""
        return self.trace.busy_time("master", kinds=("send", "return"))


class ClusterSimulation:
    """Discrete-event simulation of one schedule on one platform.

    Parameters
    ----------
    platform:
        Per-unit costs of every worker.
    noise:
        Noise model applied to every operation duration
        (default: :class:`~repro.simulation.noise.NoJitter`).
    one_port:
        Enforce the one-port model (default) or the two-port model.
    engine:
        ``"auto"`` (default) replays executions analytically — the one-port
        model through :func:`~repro.simulation.fast_cluster.
        run_fast_timeline` (static timeline, batched noise draws) and the
        two-port model through :func:`~repro.simulation.fast_twoport.
        run_fast_twoport` (merge-ordered noise-draw replay) — with the same
        event times and noise draws as the discrete-event engine,
        bit-identical and an order of magnitude faster.  ``"event"`` forces
        the discrete-event engine; ``"fast"`` forces the analytic replay.
    """

    def __init__(
        self,
        platform: StarPlatform,
        noise: NoiseModel | None = None,
        one_port: bool = True,
        engine: str = "auto",
        collect_trace: bool = True,
    ) -> None:
        if engine not in ("auto", "fast", "event"):
            raise SimulationError(f"unknown simulation engine {engine!r}")
        self.platform = platform
        self.noise = noise if noise is not None else NoJitter()
        self.one_port = one_port
        self.engine = engine
        # Campaigns only consume the makespan; skipping the Gantt trace
        # saves ~40 TraceEvent allocations per run (fast engine only — the
        # event engine threads the trace through its processes).
        self.collect_trace = collect_trace

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, schedule: Schedule) -> ClusterRun:
        """Execute ``schedule`` and return the measured run.

        Only the orders and the loads of ``schedule`` are used; its deadline
        is ignored (the simulation measures the actual completion time).
        """
        if schedule.platform is not self.platform and schedule.platform != self.platform:
            raise SimulationError("schedule and simulation target different platforms")
        return self.run_assignment(schedule.loads, schedule.sigma1, schedule.sigma2)

    def run_assignment(
        self,
        loads: Mapping[str, float],
        sigma1: Sequence[str],
        sigma2: Sequence[str],
    ) -> ClusterRun:
        """Execute an explicit (loads, sigma1, sigma2) prescription."""
        sigma1 = [name for name in sigma1 if loads.get(name, 0.0) > 0]
        sigma2 = [name for name in sigma2 if loads.get(name, 0.0) > 0]
        if sorted(sigma1) != sorted(sigma2):
            raise SimulationError("sigma1 and sigma2 must enrol the same workers")
        for name in sigma1:
            if name not in self.platform:
                raise SimulationError(f"unknown worker {name!r}")

        if self.engine in ("auto", "fast"):
            if self.one_port:
                from repro.simulation.fast_cluster import run_fast_timeline

                return run_fast_timeline(
                    self.platform, loads, sigma1, sigma2, self.noise,
                    collect_trace=self.collect_trace,
                )
            from repro.simulation.fast_twoport import run_fast_twoport

            return run_fast_twoport(
                self.platform, loads, sigma1, sigma2, self.noise,
                collect_trace=self.collect_trace,
            )

        simulator = Simulator()
        ports = MasterPorts(simulator, one_port=self.one_port)
        trace = Trace()
        records = {
            name: WorkerRecord(worker=name, load=float(loads[name])) for name in sigma1
        }

        data_ready: dict[str, Event] = {name: simulator.event() for name in sigma1}
        result_ready: dict[str, Event] = {name: simulator.event() for name in sigma1}
        sends_done = simulator.event()

        simulator.process(
            self._master_send_loop(simulator, ports, trace, records, data_ready, sends_done, sigma1, loads),
            name="master-send",
        )
        for name in sigma1:
            simulator.process(
                self._worker_loop(simulator, trace, records, data_ready[name], result_ready[name], name, loads[name]),
                name=f"worker-{name}",
            )
        receive_process = simulator.process(
            self._master_receive_loop(simulator, ports, trace, records, result_ready, sends_done, sigma2, loads),
            name="master-receive",
        )

        simulator.run()
        if sigma1 and not receive_process.triggered:
            raise SimulationError("simulation finished before all results were collected")
        makespan = max((record.return_end or 0.0) for record in records.values()) if records else 0.0
        return ClusterRun(makespan=makespan, records=records, trace=trace, one_port=self.one_port)

    # ------------------------------------------------------------------ #
    # simulation processes
    # ------------------------------------------------------------------ #
    def _master_send_loop(
        self,
        simulator: Simulator,
        ports: MasterPorts,
        trace: Trace,
        records: dict[str, WorkerRecord],
        data_ready: dict[str, Event],
        sends_done: Event,
        sigma1: Sequence[str],
        loads: Mapping[str, float],
    ) -> Generator[Event, None, None]:
        for name in sigma1:
            load = float(loads[name])
            duration = self.noise.perturb(load * self.platform[name].c, "send", name)
            yield ports.send_port.request()
            start = simulator.now
            yield simulator.timeout(duration)
            ports.send_port.release()
            end = simulator.now
            records[name].send_start = start
            records[name].send_end = end
            trace.record("master", "send", start, end, load=load, note=name)
            trace.record(name, "send", start, end, load=load)
            data_ready[name].succeed(end)
        sends_done.succeed(simulator.now)

    def _worker_loop(
        self,
        simulator: Simulator,
        trace: Trace,
        records: dict[str, WorkerRecord],
        data_ready: Event,
        result_ready: Event,
        name: str,
        load: float,
    ) -> Generator[Event, None, None]:
        yield data_ready
        start = simulator.now
        duration = self.noise.perturb(load * self.platform[name].w, "compute", name)
        yield simulator.timeout(duration)
        end = simulator.now
        records[name].compute_start = start
        records[name].compute_end = end
        trace.record(name, "compute", start, end, load=load)
        result_ready.succeed(end)

    def _master_receive_loop(
        self,
        simulator: Simulator,
        ports: MasterPorts,
        trace: Trace,
        records: dict[str, WorkerRecord],
        result_ready: dict[str, Event],
        sends_done: Event,
        sigma2: Sequence[str],
        loads: Mapping[str, float],
    ) -> Generator[Event, None, None]:
        # The one-port MPI master posts its receives only after all its sends;
        # under the two-port model the incoming port is independent and results
        # can be collected while later initial messages are still being sent.
        if self.one_port:
            yield sends_done
        for name in sigma2:
            load = float(loads[name])
            yield result_ready[name]
            duration = self.noise.perturb(load * self.platform[name].d, "return", name)
            yield ports.receive_port.request()
            start = simulator.now
            yield simulator.timeout(duration)
            ports.receive_port.release()
            end = simulator.now
            records[name].return_start = start
            records[name].return_end = end
            trace.record("master", "return", start, end, load=load, note=name)
            trace.record(name, "return", start, end, load=load)
