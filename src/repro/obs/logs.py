"""Structured key=value logging shared by every layer.

The repository previously grew three ad-hoc ``logging.getLogger(__name__)``
call sites (store, fabric, detached) with hand-rolled message formats.
This module replaces them with one façade:

* :func:`get_logger` returns a :class:`StructuredLogger` — a thin wrapper
  over the stdlib logger tree whose methods accept keyword *context*
  (``logger.warning("lease expired", owner=owner, epoch=3, chunk=7)``)
  rendered as a deterministic ``key=value`` suffix, so log lines are
  grep-able and machine-splittable without a new dependency;
* :func:`configure_logging` wires the CLI's ``--log-level`` flag: it sets
  the level on the shared ``repro`` logger and installs a single stderr
  handler (idempotent — repeated calls adjust the level, never stack
  handlers).  Library use never calls it; messages then propagate to the
  root logger exactly as before (pytest's ``caplog`` keeps working).
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

__all__ = ["LOG_LEVELS", "StructuredLogger", "configure_logging", "get_logger"]

#: CLI-facing level names accepted by ``--log-level``.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Root of the shared logger tree; every ``get_logger`` name hangs below it.
ROOT_LOGGER_NAME = "repro"

_handler: logging.Handler | None = None


def _format_value(value: Any) -> str:
    """One context value as it appears after ``key=``.

    Floats are compacted (6 significant digits — log lines, not data);
    strings with whitespace are quoted so the line stays splittable.
    """
    if isinstance(value, float):
        return format(value, ".6g")
    text = str(value)
    if any(ch.isspace() for ch in text) or text == "":
        return repr(text)
    return text


def format_context(context: dict[str, Any]) -> str:
    """Render keyword context as a ``key=value`` suffix (insertion order)."""
    return " ".join(f"{key}={_format_value(value)}" for key, value in context.items())


class StructuredLogger:
    """A stdlib logger with key=value structured context.

    Positional arguments keep the stdlib ``%``-interpolation contract
    (lazy: skipped entirely when the level is disabled); keyword
    arguments become the structured suffix.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def isEnabledFor(self, level: int) -> bool:  # noqa: N802 - stdlib name
        return self._logger.isEnabledFor(level)

    def log(self, level: int, message: str, *args: Any, **context: Any) -> None:
        if not self._logger.isEnabledFor(level):
            return
        if args:
            message = message % args
        if context:
            message = f"{message} {format_context(context)}"
        self._logger.log(level, message)

    def debug(self, message: str, *args: Any, **context: Any) -> None:
        self.log(logging.DEBUG, message, *args, **context)

    def info(self, message: str, *args: Any, **context: Any) -> None:
        self.log(logging.INFO, message, *args, **context)

    def warning(self, message: str, *args: Any, **context: Any) -> None:
        self.log(logging.WARNING, message, *args, **context)

    def error(self, message: str, *args: Any, **context: Any) -> None:
        self.log(logging.ERROR, message, *args, **context)


def get_logger(name: str) -> StructuredLogger:
    """The shared structured logger for ``name`` (rooted under ``repro``)."""
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure_logging(level: str | int = "warning", stream: TextIO | None = None) -> None:
    """Set the shared ``repro`` logger level and attach one stderr handler.

    Called by the CLI with the ``--log-level`` value; idempotent — a
    second call re-levels the existing handler instead of stacking a new
    one.  ``stream`` overrides stderr (tests).
    """
    if isinstance(level, str):
        numeric = getattr(logging, level.upper(), None)
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
    else:
        numeric = level

    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(numeric)

    global _handler
    if _handler is not None and stream is not None:
        root.removeHandler(_handler)
        _handler = None
    if _handler is None:
        _handler = logging.StreamHandler(stream or sys.stderr)
        _handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(_handler)
        # Propagation stays on: the root logger normally has no handlers
        # (so nothing double-prints), and pytest's caplog — which hooks
        # the root logger — keeps seeing every record.
